"""A batch-oriented Count Sketch backed by vectorized hashing.

Semantically identical to :class:`~repro.core.countsketch.CountSketch`
(same counter layout, same median estimator, same linearity), but the
update and estimate paths take whole key arrays and run as NumPy
operations — the backend to reach for when streams arrive as blocks
(log-shipping batches, columnar scans) rather than item by item.

The hash family differs (multiply-shift rows instead of the polynomial
family; see :mod:`repro.hashing.vectorized` for the independence caveat),
so a vectorized sketch is *not* mergeable with a scalar one; it is
mergeable with any vectorized sketch built from the same
``(depth, width, seed)``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.sketch_base import coerce_counter_array
from repro.hashing.encode import encode_key
from repro.hashing.vectorized import VectorizedRowHashes, encode_keys
from repro.observability.registry import MetricsRegistry, get_registry


class _VectorizedMetrics:
    """Metric handles captured once per sketch when collection is on.

    Batch paths count *items*, not calls, so throughput ratios against the
    scalar backends stay comparable; batches get their own counter.
    """

    __slots__ = ("update_batches", "update_items", "estimate_items")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.update_batches = registry.counter(
            "vectorized_countsketch_update_batches_total"
        )
        self.update_items = registry.counter(
            "vectorized_countsketch_update_items_total"
        )
        self.estimate_items = registry.counter(
            "vectorized_countsketch_estimate_items_total"
        )


class VectorizedCountSketch:
    """A Count Sketch with NumPy batch update/estimate paths.

    Args:
        depth: number of rows ``t``.
        width: counters per row ``b``.
        seed: hash derivation seed; equal ``(depth, width, seed)`` means
            shared hash functions and therefore mergeability.
    """

    def __init__(self, depth: int, width: int, seed: int = 0) -> None:
        self._hashes = VectorizedRowHashes(depth, width, seed)
        self._counters = np.zeros((depth, width), dtype=np.int64)
        self._total_weight = 0
        registry = get_registry()
        self._metrics = (
            _VectorizedMetrics(registry) if registry.enabled else None
        )

    # -- properties -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of rows ``t``."""
        return self._hashes.depth

    @property
    def width(self) -> int:
        """Counters per row ``b``."""
        return self._hashes.width

    @property
    def seed(self) -> int:
        """The hash derivation seed."""
        return self._hashes.seed

    @property
    def total_weight(self) -> int:
        """Net weight of all updates applied."""
        return self._total_weight

    @property
    def counters(self) -> np.ndarray:
        """Read-only view of the counter array."""
        view = self._counters.view()
        view.flags.writeable = False
        return view

    def counters_used(self) -> int:
        """Total counters ``t·b``."""
        return self.depth * self.width

    def items_stored(self) -> int:
        """A bare sketch stores no stream objects."""
        return 0

    # -- batch updates ----------------------------------------------------------

    def update_batch(
        self,
        items: Iterable[Hashable] | np.ndarray,
        weights: Sequence[int] | np.ndarray | None = None,
    ) -> None:
        """Apply weighted updates for a whole batch of items at once.

        Args:
            items: iterable of stream items (ints take the fast path) or a
                pre-encoded uint64 key array.
            weights: optional per-item weights (default 1 each); negative
                weights delete, preserving linearity.
        """
        if isinstance(items, np.ndarray) and items.dtype == np.uint64:
            keys = items
        else:
            keys = encode_keys(items)
        if keys.size == 0:
            return
        if weights is None:
            weights_arr = np.ones(keys.size, dtype=np.int64)
        else:
            weights_arr = np.asarray(weights, dtype=np.int64)
            if weights_arr.shape != keys.shape:
                raise ValueError("weights must match items in length")
        for row in range(self.depth):
            buckets = self._hashes.buckets(keys, row)
            signed = self._hashes.signs(keys, row) * weights_arr
            np.add.at(self._counters[row], buckets, signed)
        self._total_weight += int(weights_arr.sum())
        if self._metrics is not None:
            self._metrics.update_batches.inc()
            self._metrics.update_items.inc(int(keys.size))

    def update(self, item: Hashable, count: int = 1) -> None:
        """Single-item update (protocol compatibility; batches are faster)."""
        key = np.asarray([encode_key(item)], dtype=np.uint64)
        self.update_batch(key, np.asarray([count], dtype=np.int64))

    def update_counts(self, counts: Mapping[Hashable, int]) -> None:
        """Apply a pre-aggregated count table as one batch."""
        items = list(counts)
        self.update_batch(items, np.asarray(list(counts.values()),
                                            dtype=np.int64))

    def extend(self, stream: Iterable[Hashable]) -> None:
        """Sketch an entire stream (aggregated, then one batch update)."""
        self.update_counts(Counter(stream))

    # -- estimates ----------------------------------------------------------------

    def estimate_batch(
        self, items: Iterable[Hashable] | np.ndarray
    ) -> np.ndarray:
        """Median-of-rows estimates for a whole batch of items."""
        if isinstance(items, np.ndarray) and items.dtype == np.uint64:
            keys = items
        else:
            keys = encode_keys(items)
        if keys.size == 0:
            return np.zeros(0, dtype=np.float64)
        if self._metrics is not None:
            self._metrics.estimate_items.inc(int(keys.size))
        rows = np.empty((self.depth, keys.size), dtype=np.float64)
        for row in range(self.depth):
            buckets = self._hashes.buckets(keys, row)
            rows[row] = (
                self._counters[row, buckets] * self._hashes.signs(keys, row)
            )
        return np.median(rows, axis=0)

    def estimate(self, item: Hashable) -> float:
        """Single-item estimate (protocol compatibility)."""
        key = np.asarray([encode_key(item)], dtype=np.uint64)
        return float(self.estimate_batch(key)[0])

    def row_values_batch(
        self, items: Iterable[Hashable] | np.ndarray
    ) -> np.ndarray:
        """Per-row signed counter readouts as an ``(depth, n)`` int64 array.

        Column ``j`` holds ``counters[i][h_i(q_j)] · s_i(q_j)`` for each
        row ``i`` — the integers :meth:`estimate_batch` takes the
        column-median of (after a float64 cast).  By §3.2 linearity the
        readouts of sharded sketches sum, elementwise, to the readouts of
        their merge, which is what makes distributed scatter-gather
        estimates bit-equal to a single merged sketch.
        """
        if isinstance(items, np.ndarray) and items.dtype == np.uint64:
            keys = items
        else:
            keys = encode_keys(items)
        rows = np.empty((self.depth, keys.size), dtype=np.int64)
        for row in range(self.depth):
            buckets = self._hashes.buckets(keys, row)
            rows[row] = (
                self._counters[row, buckets] * self._hashes.signs(keys, row)
            )
        return rows

    def estimate_f2(self) -> float:
        """AMS-style second-moment estimate (median of row sums of squares)."""
        row_sums = (self._counters.astype(np.float64) ** 2).sum(axis=1)
        return float(np.median(row_sums))

    # -- linearity -------------------------------------------------------------------

    def compatible_with(self, other: VectorizedCountSketch) -> bool:
        """True iff sketch arithmetic with ``other`` is meaningful."""
        return isinstance(
            other, VectorizedCountSketch
        ) and self._hashes.same_functions(other._hashes)

    def _require_compatible(self, other: VectorizedCountSketch) -> None:
        if not isinstance(other, VectorizedCountSketch):
            raise TypeError(
                f"expected VectorizedCountSketch, got {type(other).__name__}"
            )
        if not self.compatible_with(other):
            raise ValueError(
                "sketches are not compatible: build both with the same "
                "(depth, width, seed)"
            )

    def _with_counters(self, counters: np.ndarray,
                       total: int) -> VectorizedCountSketch:
        clone = VectorizedCountSketch(self.depth, self.width, seed=self.seed)
        clone._counters = counters
        clone._total_weight = total
        return clone

    def copy(self) -> VectorizedCountSketch:
        """Return an independent copy."""
        return self._with_counters(self._counters.copy(), self._total_weight)

    def __add__(self, other: VectorizedCountSketch) -> VectorizedCountSketch:
        self._require_compatible(other)
        return self._with_counters(
            self._counters + other._counters,
            self._total_weight + other._total_weight,
        )

    def __sub__(self, other: VectorizedCountSketch) -> VectorizedCountSketch:
        self._require_compatible(other)
        return self._with_counters(
            self._counters - other._counters,
            self._total_weight - other._total_weight,
        )

    def merge(self, other: VectorizedCountSketch) -> None:
        """In-place ``+=`` of a compatible sketch."""
        self._require_compatible(other)
        self._counters += other._counters
        self._total_weight += other._total_weight

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorizedCountSketch):
            return NotImplemented
        return self.compatible_with(other) and bool(
            np.array_equal(self._counters, other._counters)
        )

    def __hash__(self) -> int:  # pragma: no cover - mutable, not hashable
        raise TypeError("VectorizedCountSketch is mutable and unhashable")

    # -- serialization -------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict; the counters travel as an ndarray.

        The hash functions are fully determined by ``seed``, so only the
        dimensions, seed, and counters need to travel; the round-trip is
        exact.  The ``counters`` value is an independent int64 array copy
        (``.tolist()`` it for JSON; durable snapshots should go through
        :mod:`repro.store`).
        """
        return {
            "depth": self.depth,
            "width": self.width,
            "seed": self.seed,
            "total_weight": self._total_weight,
            "counters": self._counters.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> VectorizedCountSketch:
        """Rebuild a sketch serialized by :meth:`state_dict`.

        Raises:
            ValueError: if the counter array is non-integral or its shape
                disagrees with ``depth``/``width``.
        """
        sketch = cls(state["depth"], state["width"], seed=state["seed"])
        sketch._counters = coerce_counter_array(
            state["counters"], state["depth"], state["width"]
        )
        sketch._total_weight = state["total_weight"]
        return sketch

    def __repr__(self) -> str:
        return (
            f"VectorizedCountSketch(depth={self.depth}, width={self.width}, "
            f"seed={self.seed}, total_weight={self._total_weight})"
        )
