"""Hierarchical (dyadic) Count Sketch: heavy hitters without a heap pass.

The §3.2 tracker needs to *see* each item to decide whether it belongs in
the heap, and the §4.2 max-change algorithm needs a second pass because
the sketch alone cannot enumerate which items are heavy.  The classic
remedy (Cormode–Muthukrishnan's dyadic trick, built here on Count Sketch
rows) is hierarchy: maintain one sketch per prefix level of an integer
domain ``[0, 2^domain_bits)``, where level ``s`` sketches the item's
``s``-bit-shifted prefix.  Any item's count is dominated by its prefix's
count at every level, so heavy items can be found by descending the
binary prefix tree, expanding only nodes whose estimate clears the
threshold — ``O(heavy · domain_bits)`` queries, no candidate tracking,
and full turnstile support (negative updates).

Because every level is a linear Count Sketch, two hierarchical sketches
with shared parameters subtract — which upgrades the paper's §4.2
max-change algorithm to **one pass per stream**:
:func:`heavy_change_items` queries the *difference* hierarchy for items
with ``|n̂₂ − n̂₁| ≥ threshold`` directly.  The price is ``domain_bits + 1``
sketches of space and update work, and the restriction to integer item
domains; experiment X1 (``benchmarks/bench_hierarchical.py``) measures
the trade against the two-pass algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.countsketch import CountSketch


class HierarchicalCountSketch:
    """A stack of Count Sketches over dyadic prefixes of an int domain.

    Args:
        domain_bits: items must lie in ``[0, 2**domain_bits)``.
        depth: rows per level sketch.
        width: counters per row per level sketch.
        seed: hash seed; level ``s`` derives its own functions from
            ``(seed, s)``, and two hierarchies with equal
            ``(domain_bits, depth, width, seed)`` are subtractable.
    """

    def __init__(
        self,
        domain_bits: int = 24,
        depth: int = 5,
        width: int = 512,
        seed: int = 0,
    ) -> None:
        if not 1 <= domain_bits <= 62:
            raise ValueError("domain_bits must be in [1, 62]")
        self._domain_bits = domain_bits
        self._depth = depth
        self._width = width
        self._seed = seed
        # Level s sketches item >> s, for s = 0 (leaves) .. domain_bits - 1
        # (two top-level halves); the implicit root is the whole stream.
        self._levels = [
            CountSketch(depth, width, seed=seed * 1_000_003 + s)
            for s in range(domain_bits)
        ]
        self._total_weight = 0

    @property
    def domain_bits(self) -> int:
        """Bit width of the item domain."""
        return self._domain_bits

    @property
    def domain_size(self) -> int:
        """Exclusive upper bound of the item domain."""
        return 1 << self._domain_bits

    @property
    def total_weight(self) -> int:
        """Net weight of all updates applied."""
        return self._total_weight

    def _check_item(self, item: int) -> None:
        if not isinstance(item, int) or isinstance(item, bool):
            raise TypeError(
                "hierarchical sketches require integer items; map your key "
                "space to ints first (e.g. via repro.hashing.encode)"
            )
        if not 0 <= item < self.domain_size:
            raise ValueError(
                f"item {item} outside the domain [0, 2**{self._domain_bits})"
            )

    def update(self, item: int, count: int = 1) -> None:
        """Apply a (possibly negative) weighted update at every level."""
        self._check_item(item)
        for shift, sketch in enumerate(self._levels):
            sketch.update(item >> shift, count)
        self._total_weight += count

    def extend(self, stream: Iterable[int]) -> None:
        """Update once per item of ``stream``."""
        from collections import Counter

        for item, count in Counter(stream).items():
            self.update(item, count)

    def estimate(self, item: int) -> float:
        """Leaf-level estimate of ``item``'s count."""
        self._check_item(item)
        return self._levels[0].estimate(item)

    def prefix_estimate(self, prefix: int, shift: int) -> float:
        """Estimated total count of all items whose top bits are ``prefix``.

        Args:
            prefix: the prefix value (the item right-shifted by ``shift``).
            shift: how many low bits the prefix drops; ``0`` is the leaf
                level.
        """
        if not 0 <= shift < self._domain_bits:
            raise ValueError("shift must be in [0, domain_bits)")
        return self._levels[shift].estimate(prefix)

    def heavy_hitters(
        self,
        threshold: float,
        absolute: bool = False,
        expand_levels: int = 8,
    ) -> list[tuple[int, float]]:
        """All items whose estimated count clears ``threshold``.

        Descends the dyadic tree, expanding a prefix only while its
        estimate clears the threshold — correctness relies on prefix
        counts dominating the counts of the items under them.  That holds
        exactly for nonnegative streams; for difference/turnstile data
        pass ``absolute=True`` to threshold ``|estimate|``.  Signed data
        brings a cancellation hazard: opposite-signed heavy changes under
        one coarse prefix can cancel and hide each other.  The standard
        mitigation (implemented here) is to expand the top
        ``expand_levels`` levels *unconditionally* — pruning only starts
        once the tree is ``2**expand_levels`` nodes wide, where heavy
        leaves rarely share a prefix; residual adversarial cancellation
        deeper down remains possible, an inherent limit of dyadic search
        over signed data.

        Query cost: ``O(2**expand_levels + hits · domain_bits)``
        estimates.

        Args:
            threshold: minimum estimated count.
            absolute: threshold ``|estimate|`` instead of the signed value
                (for difference sketches).
            expand_levels: tree levels expanded without pruning.

        Returns:
            (item, estimated count) pairs, sorted by magnitude descending.
        """
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if expand_levels < 1:
            raise ValueError("expand_levels must be at least 1")

        def clears(value: float) -> bool:
            return (abs(value) if absolute else value) >= threshold

        # Unconditional expansion of the coarse levels.
        free_shift = max(0, self._domain_bits - expand_levels)
        frontier = list(range(1 << (self._domain_bits - free_shift)))
        # Pruned descent below.
        for shift in range(free_shift, -1, -1):
            if shift == free_shift:
                frontier = [
                    prefix
                    for prefix in frontier
                    if clears(self._levels[shift].estimate(prefix))
                ]
            else:
                frontier = [
                    child
                    for prefix in frontier
                    for child in (2 * prefix, 2 * prefix + 1)
                    if clears(self._levels[shift].estimate(child))
                ]
            if not frontier:
                return []
        results = [(item, self._levels[0].estimate(item)) for item in frontier]
        results.sort(key=lambda pair: abs(pair[1]), reverse=True)
        return results

    # -- linearity -------------------------------------------------------------

    def compatible_with(self, other: HierarchicalCountSketch) -> bool:
        """True iff hierarchy arithmetic with ``other`` is meaningful."""
        return (
            isinstance(other, HierarchicalCountSketch)
            and self._domain_bits == other._domain_bits
            and self._depth == other._depth
            and self._width == other._width
            and self._seed == other._seed
        )

    def _require_compatible(self, other: HierarchicalCountSketch) -> None:
        if not isinstance(other, HierarchicalCountSketch):
            raise TypeError(
                f"expected HierarchicalCountSketch, got {type(other).__name__}"
            )
        if not self.compatible_with(other):
            raise ValueError(
                "hierarchies are not compatible: build both with the same "
                "(domain_bits, depth, width, seed)"
            )

    def __sub__(self, other: HierarchicalCountSketch) -> HierarchicalCountSketch:
        """The hierarchy of the difference of the two frequency vectors."""
        self._require_compatible(other)
        result = HierarchicalCountSketch(
            self._domain_bits, self._depth, self._width, self._seed
        )
        result._levels = [
            mine - theirs
            for mine, theirs in zip(self._levels, other._levels, strict=True)
        ]
        result._total_weight = self._total_weight - other._total_weight
        return result

    def __add__(self, other: HierarchicalCountSketch) -> HierarchicalCountSketch:
        """The hierarchy of the concatenated streams."""
        self._require_compatible(other)
        result = HierarchicalCountSketch(
            self._domain_bits, self._depth, self._width, self._seed
        )
        result._levels = [
            mine + theirs
            for mine, theirs in zip(self._levels, other._levels, strict=True)
        ]
        result._total_weight = self._total_weight + other._total_weight
        return result

    def counters_used(self) -> int:
        """Counters across all levels: ``domain_bits · t · b``."""
        return sum(level.counters_used() for level in self._levels)

    def items_stored(self) -> int:
        """No stream objects are stored."""
        return 0

    def __repr__(self) -> str:
        return (
            f"HierarchicalCountSketch(domain_bits={self._domain_bits}, "
            f"depth={self._depth}, width={self._width}, seed={self._seed})"
        )


def heavy_change_items(
    before: Iterable[int],
    after: Iterable[int],
    threshold: float,
    domain_bits: int = 20,
    depth: int = 5,
    width: int = 512,
    seed: int = 0,
) -> list[tuple[int, float]]:
    """One-pass-per-stream max-change: items with ``|Δ̂| ≥ threshold``.

    Sketches each stream into a hierarchical Count Sketch (one pass each),
    subtracts, and searches the difference hierarchy — no second pass, no
    candidate set, unlike the paper's §4.2 algorithm.  The trade-offs: a
    ``threshold`` must be chosen (this finds *all* heavy changes rather
    than the top ``k``), items must be integers in ``[0, 2**domain_bits)``,
    and space/update cost carry the ``domain_bits`` hierarchy factor.

    Returns:
        (item, estimated signed change) pairs, largest magnitude first.
    """
    sketch_before = HierarchicalCountSketch(domain_bits, depth, width, seed)
    sketch_after = HierarchicalCountSketch(domain_bits, depth, width, seed)
    sketch_before.extend(before)
    sketch_after.extend(after)
    difference = sketch_after - sketch_before
    return difference.heavy_hitters(threshold, absolute=True)
