"""The §4.2 two-pass max-change algorithm.

Given two streams ``S1`` and ``S2`` (e.g. last week's and this week's query
logs), find the items ``q`` maximizing ``|n_q(S2) − n_q(S1)|``.  The paper's
algorithm exploits sketch linearity:

* **Pass 1** — subtract every item of ``S1`` from a Count Sketch
  (``h_i[q] -= s_i[q]``) and add every item of ``S2``.  The sketch now
  summarizes the *difference vector*, so ``ESTIMATE`` returns
  ``n̂_q ≈ n_q(S2) − n_q(S1)``.
* **Pass 2** — replay both streams; maintain the set ``A`` of the ``l``
  items encountered with the largest ``|n̂_q|``, and keep exact occurrence
  counts in each stream for every member of ``A``.  Once evicted, an item is
  never re-admitted, so the exact counts of every final member are complete
  (its admission criterion ``|n̂_q|`` is fixed after pass 1, hence it was
  admitted at its *first* encounter and counted ever since).
* **Report** — the ``k`` members of ``A`` with the largest exact
  ``|n_q(S2) − n_q(S1)|``.

The analogue of Lemma 5 holds with ``n_q`` replaced by ``Δ_q = |n_q(S1) −
n_q(S2)|`` (experiment E7 measures recovery quality).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable

from repro.core.countsketch import CountSketch
from repro.core.heap import IndexedMinHeap
from repro.observability.registry import get_registry


def _require_reiterable(stream: Iterable[Hashable], name: str) -> None:
    """Reject one-shot iterators for a two-pass algorithm.

    A generator (or any iterator) is exhausted after pass 1, so pass 2
    silently sees an empty stream and the report is empty and wrong.
    ``iter(x) is x`` is the standard iterator test: sequences and other
    re-iterable containers return a fresh iterator each time.
    """
    if iter(stream) is stream:
        raise TypeError(
            f"{name} must be a re-iterable sequence, not a one-shot "
            "iterator/generator: the two-pass algorithm replays both "
            "streams. Materialize it (list(...)) or wrap the file in "
            "repro.streams.io.TextStreamReader."
        )


@dataclass(frozen=True)
class ChangeReport:
    """One item's result from the max-change algorithm."""

    item: Hashable
    #: Exact occurrences in the first stream (counted during pass 2).
    count_before: int
    #: Exact occurrences in the second stream (counted during pass 2).
    count_after: int
    #: The sketch's estimate of ``count_after - count_before`` after pass 1.
    estimated_change: float

    @property
    def change(self) -> int:
        """The exact signed change ``count_after − count_before``."""
        return self.count_after - self.count_before

    @property
    def abs_change(self) -> int:
        """The exact absolute change the algorithm ranks by."""
        return abs(self.change)


class MaxChangeFinder:
    """Two-pass finder of the items with the largest frequency change.

    Args:
        l: size of the exact-count candidate set ``A`` maintained in pass 2.
        sketch: optional explicit difference sketch.
        depth: rows of the internal sketch (when ``sketch`` is not given).
        width: counters per row of the internal sketch.
        seed: seed for the internal sketch.
    """

    def __init__(
        self,
        l: int,
        sketch: CountSketch | None = None,
        depth: int | None = None,
        width: int | None = None,
        seed: int = 0,
    ) -> None:
        if l < 1:
            raise ValueError("l must be at least 1")
        if sketch is None:
            if depth is None or width is None:
                raise ValueError(
                    "provide either a sketch or both depth and width"
                )
            sketch = CountSketch(depth, width, seed=seed)
        elif depth is not None or width is not None:
            raise ValueError("pass either a sketch or depth/width, not both")
        self._l = l
        self._sketch = sketch
        # Pass-2 state.
        self._candidates = IndexedMinHeap()  # keyed by |estimated change|
        self._evicted: set[Hashable] = set()
        self._before_counts: dict[Hashable, int] = {}
        self._after_counts: dict[Hashable, int] = {}
        self._estimates: dict[Hashable, float] = {}
        registry = get_registry()
        self._m_admissions = registry.counter("maxchange_admissions_total")
        self._m_evictions = registry.counter("maxchange_evictions_total")
        self._m_rejections = registry.counter("maxchange_rejections_total")

    @property
    def l(self) -> int:
        """Capacity of the exact-count candidate set."""
        return self._l

    @property
    def sketch(self) -> CountSketch:
        """The difference sketch built in pass 1."""
        return self._sketch

    # -- pass 1 ---------------------------------------------------------------

    def observe_before(self, item: Hashable, count: int = 1) -> None:
        """Pass 1 over ``S1``: ``h_i[q] -= s_i[q]`` (weighted)."""
        self._sketch.update(item, -count)

    def observe_after(self, item: Hashable, count: int = 1) -> None:
        """Pass 1 over ``S2``: ``h_i[q] += s_i[q]`` (weighted)."""
        self._sketch.update(item, count)

    def first_pass(
        self, before: Iterable[Hashable], after: Iterable[Hashable]
    ) -> None:
        """Run pass 1 over both streams."""
        for item in before:
            self.observe_before(item)
        for item in after:
            self.observe_after(item)

    # -- pass 2 ---------------------------------------------------------------

    def _admit(self, item: Hashable) -> bool:
        """Consider ``item`` for the candidate set; return membership."""
        if item in self._candidates:
            return True
        if item in self._evicted:
            return False
        # One sketch query per admission decision: the estimate is fixed
        # after pass 1, so its magnitude (the admission key) and the
        # signed value (recorded for the report) come from a single call.
        estimate = self._sketch.estimate(item)
        magnitude = abs(estimate)
        if len(self._candidates) < self._l:
            self._candidates.push(item, magnitude)
        else:
            __, smallest = self._candidates.min()
            if magnitude <= smallest:
                self._evicted.add(item)
                self._m_rejections.inc()
                return False
            loser, __ = self._candidates.pop_min()
            self._evicted.add(loser)
            self._before_counts.pop(loser, None)
            self._after_counts.pop(loser, None)
            self._estimates.pop(loser, None)
            self._candidates.push(item, magnitude)
            self._m_evictions.inc()
        self._before_counts.setdefault(item, 0)
        self._after_counts.setdefault(item, 0)
        self._estimates[item] = estimate
        self._m_admissions.inc()
        return True

    def second_pass_before(self, item: Hashable, count: int = 1) -> None:
        """Pass 2 step for one occurrence group of ``item`` in ``S1``."""
        if self._admit(item):
            self._before_counts[item] += count

    def second_pass_after(self, item: Hashable, count: int = 1) -> None:
        """Pass 2 step for one occurrence group of ``item`` in ``S2``."""
        if self._admit(item):
            self._after_counts[item] += count

    def second_pass(
        self, before: Iterable[Hashable], after: Iterable[Hashable]
    ) -> None:
        """Run pass 2 over both streams (``S1`` first, then ``S2``)."""
        for item in before:
            self.second_pass_before(item)
        for item in after:
            self.second_pass_after(item)

    # -- reporting --------------------------------------------------------------

    def report(self, k: int) -> list[ChangeReport]:
        """The ``k`` candidates with the largest exact absolute change."""
        if k < 0:
            raise ValueError("k must be nonnegative")
        reports = [
            ChangeReport(
                item=item,
                count_before=self._before_counts[item],
                count_after=self._after_counts[item],
                estimated_change=self._estimates[item],
            )
            for item, __ in self._candidates
        ]
        reports.sort(key=lambda r: r.abs_change, reverse=True)
        return reports[:k]

    def counters_used(self) -> int:
        """Sketch counters plus two exact counters per candidate."""
        return self._sketch.counters_used() + 2 * len(self._candidates)

    def items_stored(self) -> int:
        """Stored stream objects: the candidate set members."""
        return len(self._candidates)

    def __repr__(self) -> str:
        return (
            f"MaxChangeFinder(l={self._l}, sketch={self._sketch!r}, "
            f"candidates={len(self._candidates)})"
        )


def find_max_change(
    before: Iterable[Hashable],
    after: Iterable[Hashable],
    k: int,
    l: int | None = None,
    depth: int = 5,
    width: int = 512,
    seed: int = 0,
) -> list[ChangeReport]:
    """One-shot convenience wrapper around :class:`MaxChangeFinder`.

    Args:
        before: the first stream, as a re-iterable sequence.
        after: the second stream, as a re-iterable sequence.
        k: how many max-change items to report.
        l: candidate set size (defaults to ``4k``).
        depth: sketch rows.
        width: sketch width.
        seed: sketch seed.

    Raises:
        TypeError: if ``before`` or ``after`` is a one-shot iterator
            (e.g. a generator) — it would be exhausted after pass 1 and
            pass 2 would silently produce an empty, wrong report.
    """
    _require_reiterable(before, "before")
    _require_reiterable(after, "after")
    if l is None:
        l = 4 * k
    finder = MaxChangeFinder(l, depth=depth, width=width, seed=seed)
    finder.first_pass(before, after)
    finder.second_pass(before, after)
    return finder.report(k)
