"""Executable versions of the paper's parameter settings (§4).

The analysis fixes the sketch dimensions from three quantities:

* Eq. (5): ``γ = sqrt( Σ_{q' = k+1..m} n_{q'}² / b )`` — the error scale;
  Lemma 4 guarantees all estimates are within ``8γ`` of truth w.h.p.
* Lemma 5: ``b ≥ 8 · max(k, 32 · Σ_{q' > k} n_{q'}² / (ε · n_k)²)`` makes the
  tracker solve APPROXTOP(S, k, ε).
* Lemma 3: ``t = Θ(log(n/δ))`` drives the per-estimate failure probability
  below ``δ/n`` so a union bound covers every stream position.

These functions take the tail second moment ``Σ_{q'>k} n_{q'}²`` as an
input; :mod:`repro.analysis.ground_truth` computes it exactly for synthetic
workloads and :meth:`repro.core.countsketch.CountSketch.estimate_f2` can
approximate it online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def gamma(tail_second_moment: float, width: int) -> float:
    """Eq. (5): the error scale ``γ = sqrt(tail_second_moment / b)``.

    Args:
        tail_second_moment: ``Σ_{q' = k+1..m} n_{q'}²`` — the second moment
            of the stream excluding the ``k`` heaviest items.
        width: the sketch width ``b``.
    """
    if width < 1:
        raise ValueError("width must be positive")
    if tail_second_moment < 0:
        raise ValueError("tail second moment cannot be negative")
    return math.sqrt(tail_second_moment / width)


def error_bound(tail_second_moment: float, width: int) -> float:
    """Lemma 4's high-probability additive error bound: ``8γ``."""
    return 8.0 * gamma(tail_second_moment, width)


def width_for_approxtop(
    k: int, epsilon: float, nk: float, tail_second_moment: float
) -> int:
    """Lemma 5's width: ``b = ceil(8 · max(k, 32 · tail / (ε·n_k)²))``.

    Args:
        k: number of frequent items sought.
        epsilon: the APPROXTOP slack ``ε`` (items reported are guaranteed to
            have count ≥ (1−ε)·n_k).
        nk: the count ``n_k`` of the k-th most frequent item.
        tail_second_moment: ``Σ_{q' > k} n_{q'}²``.

    Returns:
        The smallest integer width satisfying Lemma 5's condition.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not 0 < epsilon <= 1:
        raise ValueError("epsilon must be in (0, 1]")
    if nk <= 0:
        raise ValueError("n_k must be positive")
    if tail_second_moment < 0:
        raise ValueError("tail second moment cannot be negative")
    variance_term = 32.0 * tail_second_moment / (epsilon * nk) ** 2
    return math.ceil(8.0 * max(float(k), variance_term))


def suggest_depth(n: int, delta: float = 0.01, constant: float = 1.0) -> int:
    """Lemma 3's depth: the smallest odd ``t ≥ constant · ln(n/δ)``.

    Odd depths make the median a single row value (an integer count), which
    both matches the paper's presentation and simplifies downstream
    reasoning.  The Θ-constant is exposed because the paper leaves it
    unspecified; 1.0 with natural log is comfortably sufficient in practice
    (experiment E3 measures the actual decay).

    Args:
        n: stream length (the union bound in Lemma 4 is over positions).
        delta: overall failure probability budget δ.
        constant: multiplier on ``ln(n/δ)``.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if constant <= 0:
        raise ValueError("constant must be positive")
    t = max(1, math.ceil(constant * math.log(n / delta)))
    if t % 2 == 0:
        t += 1
    return t


@dataclass(frozen=True)
class SketchParameters:
    """A (depth, width) pair with the provenance of how it was derived."""

    depth: int
    width: int

    def counters(self) -> int:
        """Total counters ``t·b`` — the space the paper accounts."""
        return self.depth * self.width

    @classmethod
    def for_approxtop(
        cls,
        k: int,
        epsilon: float,
        nk: float,
        tail_second_moment: float,
        n: int,
        delta: float = 0.01,
        depth_constant: float = 1.0,
    ) -> SketchParameters:
        """Dimension a sketch per Theorem 1 for APPROXTOP(S, k, ε).

        Combines Lemma 5's width with Lemma 3's depth; the resulting space
        ``t·b`` is exactly the Theorem 1 bound
        ``O((k + tail/( ε·n_k)²) · log(n/δ))``.
        """
        return cls(
            depth=suggest_depth(n, delta, depth_constant),
            width=width_for_approxtop(k, epsilon, nk, tail_second_moment),
        )
