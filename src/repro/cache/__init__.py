"""``repro.cache`` — sketch-guided cache admission (W-TinyLFU).

The Count Sketch's mergeable, scalable counters (§3.2 linearity) make it
a natural *admission filter* for a bounded cache: estimate how often a
key recurs, and only let it displace a resident key whose estimate is
lower.  This package builds that vertical slice:

* :class:`~repro.cache.doorkeeper.Doorkeeper` — one-shot membership
  filter absorbing singleton keys before they touch the sketch.
* :class:`~repro.cache.frequency.FrequencySketch` — CountSketch +
  doorkeeper with periodic ``scale(0.5)`` aging and ``.rcs``
  persistence of the admission sketch.
* :class:`~repro.cache.policy.TinyLFUCache` — window LRU + segmented
  LRU main area with frequency-gated admission; :class:`LRUCache` and
  :class:`LFUCache` ride along as baselines behind the same interface.
* :mod:`~repro.cache.simulate` — seeded Zipfian and shifting-hot-set
  traces plus the replay harness that races policies on equal terms.

See ``docs/cache.md`` for the design discussion and tuning table, and
``benchmarks/bench_cache.py`` for the hit-ratio gate.
"""

from repro.cache.doorkeeper import Doorkeeper
from repro.cache.frequency import FrequencySketch
from repro.cache.policy import (
    CachePolicy,
    LFUCache,
    LRUCache,
    TinyLFUCache,
)
from repro.cache.simulate import (
    POLICIES,
    TRACES,
    SimulationResult,
    make_policy,
    make_trace,
    shifting_hotset_trace,
    simulate,
    zipf_trace,
)

__all__ = [
    "POLICIES",
    "TRACES",
    "CachePolicy",
    "Doorkeeper",
    "FrequencySketch",
    "LFUCache",
    "LRUCache",
    "SimulationResult",
    "TinyLFUCache",
    "make_policy",
    "make_trace",
    "shifting_hotset_trace",
    "simulate",
    "zipf_trace",
]
