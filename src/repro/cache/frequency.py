"""The TinyLFU frequency oracle: CountSketch + doorkeeper + aging.

:class:`FrequencySketch` turns the paper's signed Count Sketch into the
decision engine of cache admission.  Every cache access calls
:meth:`FrequencySketch.touch`; the admission policy asks
:meth:`FrequencySketch.estimate` to compare a candidate against the
eviction victim.  Three mechanisms keep the estimate meaningful on an
endless stream:

* **Doorkeeper** (:class:`~repro.cache.doorkeeper.Doorkeeper`) — each
  key's first occurrence per epoch only sets filter bits; singletons
  never reach the sketch.  The estimate adds the bit back, so a
  doorkeeper hit still counts as one occurrence.
* **Aging by halving** — after ``sample_size`` recorded accesses the
  sketch is replaced by ``sketch.scale(0.5)`` (§3.2 linearity makes this
  an exact floor-halving of every counter — the Hokusai decay step), the
  doorkeeper is cleared in the same operation, and the sample counter
  halves.  Recent traffic therefore outweighs history with an
  exponential half-life of one sample window.
* **Clamping** — the signed sketch can return negative medians for
  near-zero keys; frequencies clamp at 0.

Persistence: :meth:`save` writes the admission sketch through
:mod:`repro.store` (the CRC-checked ``.rcs`` format) with the sampling
state in the snapshot's meta block; :meth:`load` restores the counters
bit-for-bit.  The doorkeeper is deliberately *not* persisted — it is
one-epoch state that every reset clears — so a restored oracle starts
its epoch with an empty filter.
"""

from __future__ import annotations

from collections.abc import Hashable
from pathlib import Path
from typing import Any

from repro.cache.doorkeeper import Doorkeeper
from repro.core.countsketch import CountSketch
from repro.hashing.encode import encode_key
from repro.observability.registry import MetricsRegistry, get_registry
from repro.store import load_with_meta, save

#: Default sketch rows; 4 keeps the touch path cheap while the even-depth
#: midpoint median still rejects single-row collision outliers.
DEFAULT_DEPTH = 4

#: Default accesses recorded between aging resets, per unit of width.
DEFAULT_SAMPLE_FACTOR = 10


def _next_pow2(value: int) -> int:
    """The smallest power of two ``>= value`` (and ``>= 1``)."""
    return 1 << max(0, (int(value) - 1).bit_length())


class _FrequencyMetrics:
    """Metric handles captured once per oracle when collection is on."""

    __slots__ = ("touches", "absorbed", "resets")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.touches = registry.counter("cache_frequency_touches_total")
        self.absorbed = registry.counter(
            "cache_doorkeeper_absorbed_total"
        )
        self.resets = registry.counter("cache_frequency_resets_total")


class FrequencySketch:
    """A time-decayed frequency oracle over an unbounded key stream.

    Args:
        sample_size: accesses recorded between aging resets (TinyLFU's
            ``W``).  Rule of thumb: ~10x the capacity of the cache the
            oracle fronts.
        depth: sketch rows (default 4).
        width: counters per row; defaults to the smallest power of two
            covering ``sample_size`` (so per-row collision mass stays
            below one count on average).
        seed: shared seed for the sketch hash family and the doorkeeper.
        doorkeeper_bits: bit-array size (default ``2 * sample_size``,
            minimum 64) — sized for the distinct keys of one epoch.
        doorkeeper_probes: probe bits per key (default 2).
        sketch: pre-built sketch to adopt (used by :meth:`load`);
            overrides ``depth``/``width``.
    """

    __slots__ = ("_sketch", "_doorkeeper", "_sample_size", "_samples",
                 "_resets", "_metrics")

    def __init__(
        self,
        sample_size: int,
        *,
        depth: int = DEFAULT_DEPTH,
        width: int | None = None,
        seed: int = 0,
        doorkeeper_bits: int | None = None,
        doorkeeper_probes: int = 2,
        sketch: CountSketch | None = None,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample_size must be at least 1")
        if width is None:
            width = _next_pow2(max(64, sample_size))
        if doorkeeper_bits is None:
            doorkeeper_bits = max(64, 2 * sample_size)
        if sketch is None:
            sketch = CountSketch(depth, width, seed=seed)
        self._sketch = sketch
        self._doorkeeper = Doorkeeper(
            doorkeeper_bits, probes=doorkeeper_probes, seed=seed
        )
        self._sample_size = int(sample_size)
        self._samples = 0
        self._resets = 0
        registry = get_registry()
        self._metrics = (
            _FrequencyMetrics(registry) if registry.enabled else None
        )

    # -- properties ---------------------------------------------------------

    @property
    def sketch(self) -> CountSketch:
        """The live admission sketch (mutate only via the checked API)."""
        return self._sketch

    @property
    def doorkeeper(self) -> Doorkeeper:
        """The epoch's doorkeeper filter."""
        return self._doorkeeper

    @property
    def sample_size(self) -> int:
        """Accesses recorded between aging resets (the watermark)."""
        return self._sample_size

    @property
    def samples(self) -> int:
        """Accesses recorded since the last reset (decayed at resets)."""
        return self._samples

    @property
    def resets(self) -> int:
        """Aging resets performed so far."""
        return self._resets

    # -- recording ----------------------------------------------------------

    def touch(self, item: Hashable) -> None:
        """Record one access to ``item``.

        The first occurrence per epoch is absorbed by the doorkeeper;
        repeat occurrences update the sketch.  Hitting the sample
        watermark triggers the aging reset.
        """
        key = encode_key(item)
        metrics = self._metrics
        if self._doorkeeper.add_key(key):
            if metrics is not None:
                metrics.absorbed.inc()
        else:
            self._sketch.update(key)
        self._samples += 1
        if metrics is not None:
            metrics.touches.inc()
        if self._samples >= self._sample_size:
            self._reset()

    def _reset(self) -> None:
        """The TinyLFU aging step: halve the sketch, clear the doorkeeper.

        ``scale(0.5)`` floor-divides every counter (§3.2 linearity keeps
        the result an exact sketch of the halved frequency vector); the
        doorkeeper must be cleared in the same step because its ones are
        epoch state the halved counters no longer account for.
        """
        self._sketch = self._sketch.scale(0.5)
        self._doorkeeper.clear()
        self._samples //= 2
        self._resets += 1
        if self._metrics is not None:
            self._metrics.resets.inc()

    # -- queries ------------------------------------------------------------

    def estimate(self, item: Hashable) -> int:
        """The decayed frequency of ``item``, clamped at zero.

        The sketch's signed median plus one for a set doorkeeper bit.
        Used by the admission policy as ``estimate(candidate) >
        estimate(victim)``.
        """
        key = encode_key(item)
        value = self._sketch.estimate(key)
        frequency = int(value) if value > 0 else 0
        if self._doorkeeper.contains_key(key):
            frequency += 1
        return frequency

    # -- persistence --------------------------------------------------------

    def save(self, path: str | Path) -> int:
        """Snapshot the admission sketch to ``path`` (``.rcs``).

        The sampling state travels in the snapshot meta block; the
        counters round-trip bit-for-bit.  Returns bytes written.
        """
        return save(
            self._sketch,
            path,
            meta={
                "cache_sample_size": self._sample_size,
                "cache_samples": self._samples,
                "cache_resets": self._resets,
                "cache_doorkeeper_bits": self._doorkeeper.num_bits,
                "cache_doorkeeper_probes": self._doorkeeper.probes,
                "cache_doorkeeper_seed": self._doorkeeper.seed,
            },
        )

    @classmethod
    def load(cls, path: str | Path) -> FrequencySketch:
        """Restore an oracle saved by :meth:`save`.

        The sketch counters are restored bit-for-bit; the doorkeeper
        starts empty (it is one-epoch state, cleared by every reset).

        Raises:
            repro.store.StoreError: on a missing/corrupt snapshot.
            TypeError: when the snapshot holds a non-CountSketch summary.
            ValueError: when the snapshot lacks the cache meta block.
        """
        sketch, meta = load_with_meta(path)
        if not isinstance(sketch, CountSketch):
            raise TypeError(
                f"{path} holds a {type(sketch).__name__}, not the "
                "CountSketch admission snapshot FrequencySketch.load needs"
            )
        return cls._from_snapshot(sketch, meta, path)

    @classmethod
    def _from_snapshot(
        cls, sketch: CountSketch, meta: dict[str, Any], path: str | Path
    ) -> FrequencySketch:
        def _int_field(name: str) -> int:
            value = meta.get(name)
            if not isinstance(value, int) or value < 0:
                raise ValueError(
                    f"{path} does not record a valid {name!r}; it was "
                    "not written by FrequencySketch.save"
                )
            return value

        oracle = cls(
            _int_field("cache_sample_size"),
            doorkeeper_bits=_int_field("cache_doorkeeper_bits"),
            doorkeeper_probes=max(
                1, _int_field("cache_doorkeeper_probes")
            ),
            seed=_int_field("cache_doorkeeper_seed"),
            sketch=sketch,
        )
        oracle._samples = _int_field("cache_samples")
        oracle._resets = _int_field("cache_resets")
        return oracle

    def __repr__(self) -> str:
        return (
            f"FrequencySketch(sample_size={self._sample_size}, "
            f"samples={self._samples}, resets={self._resets}, "
            f"sketch={self._sketch!r})"
        )
