"""Trace-driven cache simulation: one harness, every policy.

The harness replays a seeded synthetic trace (a numpy array of integer
keys) against any :class:`~repro.cache.policy.CachePolicy` and reports
hit counts, so LRU, LFU, and TinyLFU are compared on *identical* request
sequences.  Two trace families cover the interesting regimes:

* :func:`zipf_trace` — i.i.d. Zipf(z) draws over ``m`` keys, the §4.1
  workload model.  Frequency-aware policies shine here; the question is
  only by how much.
* :func:`shifting_hotset_trace` — the same marginal distribution, but
  the identity of the hot keys is re-permuted every phase.  This is the
  adversarial case for frequency policies without aging (LFU fossilises
  the first phase's hot set) and the motivating case for TinyLFU's
  ``scale(0.5)`` resets.

Everything is seeded (RS001): the same ``(kind, n, m, z, seed)`` tuple
reproduces the same trace array bit-for-bit, and every policy is
deterministic given its construction arguments, so simulation results —
including every admission decision — are exactly reproducible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.cache.policy import (
    CachePolicy,
    LFUCache,
    LRUCache,
    TinyLFUCache,
)
from repro.streams.alias import AliasSampler
from repro.streams.zipf import zipf_weights

#: Default number of hot-set rotations in :func:`shifting_hotset_trace`.
DEFAULT_PHASES = 5


def zipf_trace(
    n: int, m: int, z: float, seed: int = 0
) -> np.ndarray:
    """An i.i.d. Zipf(z) trace of ``n`` requests over keys ``1..m``.

    Returns an int64 array; key 1 is the hottest.  Deterministic given
    ``(n, m, z, seed)``.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    sampler = AliasSampler(zipf_weights(m, z), seed=seed)
    trace = sampler.sample_many(n) + 1
    return trace.astype(np.int64, copy=False)


def shifting_hotset_trace(
    n: int,
    m: int,
    z: float,
    seed: int = 0,
    phases: int = DEFAULT_PHASES,
) -> np.ndarray:
    """A Zipf(z) trace whose hot set rotates every ``n // phases`` requests.

    Each phase applies an independent seeded permutation to the rank →
    key mapping, so the *marginal* popularity law is unchanged but the
    identity of the popular keys moves.  Recency policies adapt within
    one cache-fill; frequency policies only adapt as fast as their
    history decays — which is the regime TinyLFU's aging targets.
    """
    if phases < 1:
        raise ValueError("phases must be at least 1")
    ranks = zipf_trace(n, m, z, seed=seed) - 1  # 0-based ranks
    rng = np.random.default_rng(seed + 0x5EED)
    trace = np.empty(n, dtype=np.int64)
    bounds = np.linspace(0, n, phases + 1).astype(np.int64)
    for phase in range(phases):
        start, stop = int(bounds[phase]), int(bounds[phase + 1])
        permutation = rng.permutation(m).astype(np.int64)
        trace[start:stop] = permutation[ranks[start:stop]] + 1
    return trace


#: Trace factories by CLI name; each takes ``(n, m, z, seed)``.
TRACES: Mapping[str, Callable[[int, int, float, int], np.ndarray]] = {
    "zipf": zipf_trace,
    "shifting": shifting_hotset_trace,
}


def make_trace(
    kind: str, n: int, m: int, z: float, seed: int = 0
) -> np.ndarray:
    """Build the named trace (see :data:`TRACES` for the catalogue)."""
    try:
        factory = TRACES[kind]
    except KeyError:
        known = ", ".join(sorted(TRACES))
        raise ValueError(
            f"unknown trace kind {kind!r}; expected one of: {known}"
        ) from None
    return factory(n, m, z, seed)


#: Policy factories by CLI name; each takes ``(capacity, seed)``.
POLICIES: Mapping[str, Callable[[int, int], CachePolicy]] = {
    "lru": lambda capacity, seed: LRUCache(capacity),
    "lfu": lambda capacity, seed: LFUCache(capacity),
    "tinylfu": lambda capacity, seed: TinyLFUCache(capacity, seed=seed),
}


def make_policy(name: str, capacity: int, seed: int = 0) -> CachePolicy:
    """Build the named policy (see :data:`POLICIES` for the catalogue)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICIES))
        raise ValueError(
            f"unknown cache policy {name!r}; expected one of: {known}"
        ) from None
    return factory(capacity, seed)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of replaying one trace against one policy."""

    #: Policy name (``lru`` / ``lfu`` / ``tinylfu``).
    policy: str
    #: Cache capacity the policy ran with.
    capacity: int
    #: Requests replayed.
    requests: int
    #: Requests that found their key resident.
    hits: int

    @property
    def misses(self) -> int:
        """Requests that missed (and triggered admission)."""
        return self.requests - self.hits

    @property
    def hit_ratio(self) -> float:
        """Hits per request (0.0 on an empty trace)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def as_dict(self) -> dict[str, object]:
        """A JSON-ready summary of this run."""
        return {
            "policy": self.policy,
            "capacity": self.capacity,
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }


def simulate(
    policy: CachePolicy, trace: Iterable[int] | np.ndarray
) -> SimulationResult:
    """Replay ``trace`` against ``policy`` and count hits.

    The trace is replayed in order through
    :meth:`~repro.cache.policy.CachePolicy.request`; numpy arrays are
    converted to Python ints once up front so the per-request path never
    touches numpy scalars.
    """
    if isinstance(trace, np.ndarray):
        keys: list[int] = trace.tolist()
    else:
        keys = [int(key) for key in trace]
    request = policy.request
    hits = 0
    for key in keys:
        if request(key):
            hits += 1
    return SimulationResult(
        policy=type(policy).name,
        capacity=policy.capacity,
        requests=len(keys),
        hits=hits,
    )
