"""One-shot approximate membership: the TinyLFU *doorkeeper*.

Most keys in a skewed trace are singletons — seen once, never again.  If
every one of them entered the admission sketch, the long tail would both
inflate the sketch's collision noise and waste the sample budget between
aging resets.  The doorkeeper is a small Bloom-style bit array that
absorbs each key's *first* occurrence: only keys seen again while their
bits are set reach the :class:`~repro.cache.frequency.FrequencySketch`,
whose estimate then adds the doorkeeper bit back (``sketch + 1``).

The filter is deterministic: probe positions are derived from the
canonical :func:`~repro.hashing.encode.encode_key` image with seeded
SplitMix64 mixing, so two doorkeepers built with the same
``(bits, probes, seed)`` agree bit-for-bit on any key sequence.  It is
one-epoch state — :meth:`clear` is called by every TinyLFU aging reset
(the ``scale(0.5)`` halving), because the halved sketch no longer
accounts for the ones the doorkeeper absorbed.
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.hashing.encode import encode_key

_MASK_64 = (1 << 64) - 1

#: SplitMix64 finalizer multipliers (Stafford's Mix13 variant).
_MIX_A = 0xFF51AFD7ED558CCD
_MIX_B = 0xC4CEB9FE1A85EC53

#: Weyl-sequence increment used to derive independent per-probe salts.
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(value: int) -> int:
    """SplitMix64 finalizer: scramble ``value`` into ``[0, 2**64)``."""
    value &= _MASK_64
    value ^= value >> 33
    value = (value * _MIX_A) & _MASK_64
    value ^= value >> 33
    value = (value * _MIX_B) & _MASK_64
    value ^= value >> 33
    return value


class Doorkeeper:
    """A seeded Bloom-style filter absorbing first-occurrence keys.

    Args:
        bits: size of the bit array; at least 8.  Size it near the
            sample watermark of the frequency sketch it fronts (see
            ``docs/cache.md`` for the tuning table).
        probes: bits set/tested per key (default 2 — the classic
            doorkeeper operating point: cheap, and false positives only
            *pre-credit* one occurrence).
        seed: probe-salt seed; equal seeds give bit-identical filters.
    """

    __slots__ = ("_num_bits", "_probes", "_seed", "_salts", "_door_bits",
                 "_ones")

    def __init__(self, bits: int, probes: int = 2, seed: int = 0) -> None:
        if bits < 8:
            raise ValueError("doorkeeper needs at least 8 bits")
        if probes < 1:
            raise ValueError("probes must be at least 1")
        self._num_bits = int(bits)
        self._probes = int(probes)
        self._seed = int(seed)
        base = _mix((self._seed << 1) | 1)
        self._salts = tuple(
            _mix(base + index * _GOLDEN) for index in range(self._probes)
        )
        self._door_bits = np.zeros((self._num_bits + 7) // 8,
                                   dtype=np.uint8)
        self._ones = 0

    # -- properties ---------------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Size of the bit array."""
        return self._num_bits

    @property
    def probes(self) -> int:
        """Number of bits set/tested per key."""
        return self._probes

    @property
    def seed(self) -> int:
        """Seed the probe salts were derived from."""
        return self._seed

    @property
    def ones(self) -> int:
        """Number of set bits (the filter's fill level)."""
        return self._ones

    def fill_ratio(self) -> float:
        """Fraction of bits set; false-positive rate ~ ``ratio**probes``."""
        return self._ones / self._num_bits

    # -- membership ---------------------------------------------------------

    def _positions(self, key: int) -> list[int]:
        return [
            _mix(key ^ salt) % self._num_bits for salt in self._salts
        ]

    def contains(self, item: Hashable) -> bool:
        """True when every probe bit for ``item`` is set.

        False positives occur at roughly ``fill_ratio() ** probes``;
        false negatives never (until :meth:`clear`).
        """
        return self.contains_key(encode_key(item))

    def contains_key(self, key: int) -> bool:
        """:meth:`contains` for a pre-encoded 64-bit key image."""
        bits = self._door_bits
        for position in self._positions(key):
            if not bits[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def add(self, item: Hashable) -> bool:
        """Set ``item``'s bits; True when it was *newly* added.

        A True return means this occurrence is absorbed by the
        doorkeeper (the caller should not update the sketch); False
        means the key was already known here.
        """
        return self.add_key(encode_key(item))

    def add_key(self, key: int) -> bool:
        """:meth:`add` for a pre-encoded 64-bit key image."""
        bits = self._door_bits
        added = False
        for position in self._positions(key):
            index = position >> 3
            mask = 1 << (position & 7)
            if not bits[index] & mask:
                bits[index] |= mask
                self._ones += 1
                added = True
        return added

    def clear(self) -> None:
        """Reset every bit — one aging epoch ends.

        Must accompany every ``scale(0.5)`` halving of the sketch this
        filter fronts: the ones here are the epoch's absorbed first
        occurrences, which the halved counters no longer represent.
        """
        self._door_bits[:] = 0
        self._ones = 0

    def __repr__(self) -> str:
        return (
            f"Doorkeeper(bits={self._num_bits}, probes={self._probes}, "
            f"seed={self._seed}, ones={self._ones})"
        )
