"""Bounded cache policies: LRU and LFU baselines, and W-TinyLFU.

Every policy implements the same two-method surface —
:meth:`CachePolicy.request` (one access: returns hit/miss and updates
the cache) and :meth:`CachePolicy.contains` — so the simulation harness
in :mod:`repro.cache.simulate` can race them on identical traces.

* :class:`LRUCache` — recency only; the classic bounded map.
* :class:`LFUCache` — frequency only, with O(1) operations via the
  frequency-bucket structure (a dict of per-frequency recency lists);
  counts never age, so it fossilises old hot sets.
* :class:`TinyLFUCache` — the tentpole.  A small recency *window* in
  front of a segmented-LRU *main* area, with a
  :class:`~repro.cache.frequency.FrequencySketch` (CountSketch +
  doorkeeper, aged by ``scale(0.5)`` halvings) arbitrating admission:
  a key evicted from the window enters main only when its estimated
  frequency beats the would-be victim's.

Metric handles (``cache_hits_total`` etc.) are captured once in each
policy's ``__init__`` and are ``None`` under the default
:class:`~repro.observability.registry.NullRegistry`, keeping the
per-request path allocation-free when observability is off.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Hashable

from repro.cache.frequency import FrequencySketch
from repro.observability.registry import MetricsRegistry, get_registry

#: Fraction of total capacity given to the TinyLFU recency window.
WINDOW_FRACTION = 0.01

#: Fraction of the main area reserved for the protected segment.
PROTECTED_FRACTION = 0.8

#: Default admission-sketch sample size, per unit of cache capacity.
SAMPLE_FACTOR = 10


class _CacheMetrics:
    """Per-policy metric handles, captured once at construction."""

    __slots__ = ("hits", "misses", "evictions", "admissions",
                 "rejections")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.hits = registry.counter("cache_hits_total")
        self.misses = registry.counter("cache_misses_total")
        self.evictions = registry.counter("cache_evictions_total")
        self.admissions = registry.counter("cache_admissions_total")
        self.rejections = registry.counter(
            "cache_admission_rejections_total"
        )


class CachePolicy(ABC):
    """The contract every bounded cache policy implements.

    A policy is a set of resident keys plus a replacement rule; the
    harness only ever calls :meth:`request` and reads the telemetry.
    """

    #: Short machine name used by the CLI/benchmark policy registry.
    name = "abstract"

    __slots__ = ("_capacity", "_metrics")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self._capacity = int(capacity)
        registry = get_registry()
        self._metrics = (
            _CacheMetrics(registry) if registry.enabled else None
        )

    @property
    def capacity(self) -> int:
        """Maximum number of resident keys."""
        return self._capacity

    @abstractmethod
    def __len__(self) -> int:
        """Number of resident keys."""

    @abstractmethod
    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is resident (no side effects)."""

    @abstractmethod
    def request(self, key: Hashable) -> bool:
        """Handle one access: return True on hit, admit on miss."""

    def __contains__(self, key: Hashable) -> bool:
        return self.contains(key)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self._capacity}, "
            f"resident={len(self)})"
        )


class LRUCache(CachePolicy):
    """Evict the least-recently-used key; every miss is admitted."""

    name = "lru"

    __slots__ = ("_lru_order",)

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._lru_order: OrderedDict[Hashable, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lru_order)

    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is resident (no side effects)."""
        return key in self._lru_order

    def request(self, key: Hashable) -> bool:
        """Handle one access: hit moves to MRU, miss evicts the LRU."""
        order = self._lru_order
        metrics = self._metrics
        if key in order:
            order.move_to_end(key)
            if metrics is not None:
                metrics.hits.inc()
            return True
        if len(order) >= self._capacity:
            order.popitem(last=False)
            if metrics is not None:
                metrics.evictions.inc()
        order[key] = None
        if metrics is not None:
            metrics.misses.inc()
        return False


class LFUCache(CachePolicy):
    """Evict the least-frequently-used key (LRU among ties), in O(1).

    The frequency-bucket structure keeps, for each access count, a
    recency-ordered set of the resident keys at that count, plus the
    minimum occupied count — so hit, miss, and eviction are all O(1).
    Counts never decay, which is exactly the pathology TinyLFU's aging
    fixes; it rides along as the frequency-only baseline.
    """

    name = "lfu"

    __slots__ = ("_key_freq", "_freq_buckets", "_min_freq")

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._key_freq: dict[Hashable, int] = {}
        self._freq_buckets: dict[int, OrderedDict[Hashable, None]] = {}
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._key_freq)

    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is resident (no side effects)."""
        return key in self._key_freq

    def request(self, key: Hashable) -> bool:
        """Handle one access: hit bumps the count, miss evicts min-count."""
        metrics = self._metrics
        freq = self._key_freq.get(key)
        if freq is not None:
            bucket = self._freq_buckets[freq]
            del bucket[key]
            if not bucket:
                del self._freq_buckets[freq]
                if self._min_freq == freq:
                    self._min_freq = freq + 1
            self._key_freq[key] = freq + 1
            self._freq_buckets.setdefault(freq + 1, OrderedDict())[key] = None
            if metrics is not None:
                metrics.hits.inc()
            return True
        if len(self._key_freq) >= self._capacity:
            victims = self._freq_buckets[self._min_freq]
            victim, _ = victims.popitem(last=False)
            if not victims:
                del self._freq_buckets[self._min_freq]
            del self._key_freq[victim]
            if metrics is not None:
                metrics.evictions.inc()
        self._key_freq[key] = 1
        self._freq_buckets.setdefault(1, OrderedDict())[key] = None
        self._min_freq = 1
        if metrics is not None:
            metrics.misses.inc()
        return False


class TinyLFUCache(CachePolicy):
    """W-TinyLFU: windowed admission-filtered segmented LRU.

    Layout (capacities fixed at construction):

    * **window** — ~1% of capacity, plain LRU.  Every miss lands here,
      so brand-new keys get a brief recency audition.
    * **main** — the rest, a segmented LRU: a *probation* segment for
      keys admitted once and a *protected* segment (~80% of main) for
      keys re-referenced while in probation.

    A key evicted from the window becomes a *candidate*: it enters
    probation only if the frequency oracle scores it strictly above the
    main area's next victim; otherwise the candidate is dropped and the
    victim stays.  The oracle sees every request via
    :meth:`~repro.cache.frequency.FrequencySketch.touch`, so frequency
    accrues whether or not a key is resident.

    Args:
        capacity: total resident keys across window and main; >= 2 so
            both areas are non-empty.
        sample_size: oracle aging watermark; defaults to
            ``SAMPLE_FACTOR * capacity``.
        seed: seed for the oracle's hash family and doorkeeper.
        frequency: pre-built oracle to adopt (e.g. restored via
            :meth:`~repro.cache.frequency.FrequencySketch.load`);
            overrides ``sample_size``/``seed``.
    """

    name = "tinylfu"

    __slots__ = ("_window_lru", "_probation", "_protected",
                 "_window_capacity", "_main_capacity",
                 "_protected_capacity", "_frequency")

    def __init__(
        self,
        capacity: int,
        *,
        sample_size: int | None = None,
        seed: int = 0,
        frequency: FrequencySketch | None = None,
    ) -> None:
        if capacity < 2:
            raise ValueError(
                "TinyLFU needs capacity >= 2 (a window and a main area)"
            )
        super().__init__(capacity)
        self._window_capacity = max(1, round(WINDOW_FRACTION * capacity))
        self._main_capacity = capacity - self._window_capacity
        self._protected_capacity = max(
            1, int(PROTECTED_FRACTION * self._main_capacity)
        )
        if frequency is None:
            if sample_size is None:
                sample_size = SAMPLE_FACTOR * capacity
            frequency = FrequencySketch(sample_size, seed=seed)
        self._frequency = frequency
        self._window_lru: OrderedDict[Hashable, None] = OrderedDict()
        self._probation: OrderedDict[Hashable, None] = OrderedDict()
        self._protected: OrderedDict[Hashable, None] = OrderedDict()

    # -- introspection -------------------------------------------------------

    @property
    def window_capacity(self) -> int:
        """Capacity of the recency window (~1% of the total)."""
        return self._window_capacity

    @property
    def main_capacity(self) -> int:
        """Capacity of the main (probation + protected) area."""
        return self._main_capacity

    @property
    def protected_capacity(self) -> int:
        """Capacity of the protected segment (~80% of main)."""
        return self._protected_capacity

    @property
    def frequency(self) -> FrequencySketch:
        """The admission oracle (shared CountSketch + doorkeeper)."""
        return self._frequency

    def segment_sizes(self) -> dict[str, int]:
        """Resident keys per segment: window, probation, protected."""
        return {
            "window": len(self._window_lru),
            "probation": len(self._probation),
            "protected": len(self._protected),
        }

    def __len__(self) -> int:
        return (len(self._window_lru) + len(self._probation)
                + len(self._protected))

    def contains(self, key: Hashable) -> bool:
        """True when ``key`` is resident in any segment."""
        return (key in self._window_lru or key in self._probation
                or key in self._protected)

    # -- the request path ----------------------------------------------------

    def request(self, key: Hashable) -> bool:
        """Handle one access: touch the oracle, then hit or admit."""
        self._frequency.touch(key)
        metrics = self._metrics
        if key in self._window_lru:
            self._window_lru.move_to_end(key)
            if metrics is not None:
                metrics.hits.inc()
            return True
        if key in self._protected:
            self._protected.move_to_end(key)
            if metrics is not None:
                metrics.hits.inc()
            return True
        if key in self._probation:
            self._promote(key)
            if metrics is not None:
                metrics.hits.inc()
            return True
        self._admit_to_window(key)
        if metrics is not None:
            metrics.misses.inc()
        return False

    def _promote(self, key: Hashable) -> None:
        """Move a re-referenced probation key into protected (SLRU).

        When protected is full, its own LRU key is demoted back to the
        MRU end of probation — demotion, not eviction, so a one-time
        burst cannot flush long-lived residents out of the cache.
        """
        del self._probation[key]
        if len(self._protected) >= self._protected_capacity:
            demoted, _ = self._protected.popitem(last=False)
            self._probation[demoted] = None
        self._protected[key] = None

    def _admit_to_window(self, key: Hashable) -> None:
        """Insert a missed key at the window MRU; overflow faces admission."""
        self._window_lru[key] = None
        if len(self._window_lru) <= self._window_capacity:
            return
        candidate, _ = self._window_lru.popitem(last=False)
        self._maybe_admit(candidate)

    def _maybe_admit(self, candidate: Hashable) -> None:
        """TinyLFU admission: candidate vs. the main area's next victim.

        With spare main capacity the candidate enters probation
        unconditionally.  Otherwise it must *strictly* beat the victim's
        estimated frequency — ties keep the incumbent, which both damps
        thrash and blunts hash-flood attacks that forge one-off keys.
        """
        metrics = self._metrics
        if len(self._probation) + len(self._protected) < self._main_capacity:
            self._probation[candidate] = None
            if metrics is not None:
                metrics.admissions.inc()
            return
        victims = self._probation if self._probation else self._protected
        victim = next(iter(victims))
        estimate = self._frequency.estimate
        if estimate(candidate) > estimate(victim):
            del victims[victim]
            self._probation[candidate] = None
            if metrics is not None:
                metrics.admissions.inc()
                metrics.evictions.inc()
        elif metrics is not None:
            metrics.rejections.inc()

    def __repr__(self) -> str:
        sizes = self.segment_sizes()
        return (
            f"TinyLFUCache(capacity={self._capacity}, "
            f"window={sizes['window']}/{self._window_capacity}, "
            f"probation={sizes['probation']}, "
            f"protected={sizes['protected']}/{self._protected_capacity})"
        )
