"""Checkpoint/resume: killed ingestion resumes bit-for-bit.

The serial path (:class:`CheckpointManager`) and the sharded path
(:class:`ShardCheckpointStore` behind ``parallel_sketch`` /
``parallel_topk``) share one acceptance bar: a run that is interrupted
and resumed must end in exactly the state an uninterrupted run reaches —
same counters, same top-k, same estimates.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.parallel.engine import parallel_sketch, parallel_topk
from repro.store import (
    CheckpointManager,
    CheckpointMismatchError,
    ShardCheckpointStore,
    StoreError,
    apply_update_batch,
    load_with_meta,
    save,
)


def make_stream(n=400, seed=11):
    rng = random.Random(seed)
    return [f"item-{rng.randint(0, 40)}" for __ in range(n)]


class TestManagerValidation:
    def test_requires_a_trigger(self, tmp_path):
        with pytest.raises(ValueError, match="every_items"):
            CheckpointManager(CountSketch(3, 16), tmp_path / "c.rcs")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"every_items": 0},
            {"every_seconds": 0},
            {"every_seconds": -1.0},
            {"every_items": 5, "items_consumed": -1},
        ],
    )
    def test_rejects_bad_values(self, tmp_path, kwargs):
        with pytest.raises(ValueError):
            CheckpointManager(CountSketch(3, 16), tmp_path / "c.rcs", **kwargs)


class TestManagerTriggers:
    def test_every_items_cadence(self, tmp_path):
        path = tmp_path / "c.rcs"
        manager = CheckpointManager(
            CountSketch(3, 16), path, every_items=10
        )
        for item in make_stream(35):
            manager.update(item)
        # 35 updates with a checkpoint each 10 items: at 10, 20, 30.
        assert manager.checkpoints_written == 3
        assert manager.items_consumed == 35
        __, meta = load_with_meta(path)
        assert meta["items_consumed"] == 30

    def test_extend_always_flushes_at_the_end(self, tmp_path):
        path = tmp_path / "c.rcs"
        manager = CheckpointManager(
            CountSketch(3, 16), path, every_items=1000
        )
        manager.extend(make_stream(35))
        assert manager.checkpoints_written == 1
        __, meta = load_with_meta(path)
        assert meta["items_consumed"] == 35

    def test_every_seconds_cadence(self, tmp_path):
        # A vanishingly small period: every record boundary is "due".
        manager = CheckpointManager(
            CountSketch(3, 16), tmp_path / "c.rcs", every_seconds=1e-9
        )
        for item in make_stream(5):
            manager.update(item)
        assert manager.checkpoints_written == 5

    def test_flush_reports_bytes_written(self, tmp_path):
        path = tmp_path / "c.rcs"
        manager = CheckpointManager(
            CountSketch(3, 16), path, every_items=10
        )
        written = manager.flush()
        assert written == path.stat().st_size


class TestApplyUpdateBatch:
    """The service's batch path equals an item-at-a-time feed exactly."""

    RECORDS = [(f"item-{i % 9}", 1 + (i % 4)) for i in range(120)]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CountSketch(3, 32, seed=7),
            lambda: VectorizedCountSketch(3, 32, seed=7),
            lambda: TopKTracker(4, depth=3, width=32, seed=7),
            lambda: JumpingWindowSketch(32, buckets=4, depth=3, width=32,
                                        seed=7),
        ],
        ids=["sketch", "vectorized", "topk", "window"],
    )
    def test_matches_scalar_updates(self, factory):
        batched, scalar = factory(), factory()
        items = [item for item, __ in self.RECORDS]
        counts = [count for __, count in self.RECORDS]
        apply_update_batch(batched, items, counts)
        for item, count in self.RECORDS:
            scalar.update(item, count)
        for item in dict.fromkeys(items):
            assert batched.estimate(item) == scalar.estimate(item)

    def test_empty_batch_is_a_no_op(self):
        sketch = VectorizedCountSketch(3, 32, seed=7)
        apply_update_batch(sketch, [], [])
        assert sketch.estimate("x") == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            apply_update_batch(CountSketch(3, 32), ["a", "b"], [1])
        with pytest.raises(ValueError, match="same length"):
            apply_update_batch(VectorizedCountSketch(3, 32), ["a"], [1, 2])


class TestManagerUpdateBatch:
    def test_counts_records_and_checkpoints_on_batch_boundaries(
        self, tmp_path
    ):
        path = tmp_path / "c.rcs"
        manager = CheckpointManager(
            CountSketch(3, 16), path, every_items=10
        )
        stream = make_stream(22)
        for start in range(0, len(stream), 4):
            chunk = stream[start:start + 4]
            manager.update_batch(chunk, [1] * len(chunk))
        assert manager.items_consumed == 22
        # The due-check runs at batch ends only, so snapshots land on
        # batch (= record) boundaries: at 12 and 22, never mid-batch.
        assert manager.checkpoints_written == 2
        __, meta = load_with_meta(path)
        assert meta["items_consumed"] == 22

    def test_batch_and_scalar_feeds_write_identical_snapshots(
        self, tmp_path
    ):
        stream = make_stream(60)
        scalar_path = tmp_path / "scalar.rcs"
        batch_path = tmp_path / "batch.rcs"
        scalar = CheckpointManager(
            CountSketch(3, 16, seed=2), scalar_path, every_items=1000
        )
        batched = CheckpointManager(
            CountSketch(3, 16, seed=2), batch_path, every_items=1000
        )
        for item in stream:
            scalar.update(item)
        batched.update_batch(stream, [1] * len(stream))
        scalar.flush()
        batched.flush()
        assert scalar_path.read_bytes() == batch_path.read_bytes()

    def test_rejects_mismatched_lengths_and_ignores_empty(self, tmp_path):
        manager = CheckpointManager(
            CountSketch(3, 16), tmp_path / "c.rcs", every_items=5
        )
        with pytest.raises(ValueError, match="same length"):
            manager.update_batch(["a"], [1, 2])
        manager.update_batch([], [])
        assert manager.items_consumed == 0
        assert manager.checkpoints_written == 0


class TestKilledAndResumed:
    def test_serial_resume_is_bit_for_bit(self, tmp_path):
        stream = make_stream(400)
        kill_at = 237
        path = tmp_path / "topk.rcs"

        # Uninterrupted reference.
        reference = TopKTracker(8, depth=3, width=64, seed=9)
        for item in stream:
            reference.update(item)

        # Interrupted run: the process "dies" mid-stream; only the last
        # on-boundary checkpoint survives.
        manager = CheckpointManager(
            TopKTracker(8, depth=3, width=64, seed=9),
            path,
            every_items=50,
        )
        for item in stream[:kill_at]:
            manager.update(item)

        resumed = CheckpointManager.resume(path, every_items=50)
        assert resumed.items_consumed == 200  # last multiple of 50
        for item in itertools.islice(stream, resumed.items_consumed, None):
            resumed.update(item)
        resumed.flush()

        tracker = resumed.summary
        assert isinstance(tracker, TopKTracker)
        assert tracker.top() == reference.top()
        assert tracker.sketch == reference.sketch
        __, meta = load_with_meta(path)
        assert meta["items_consumed"] == len(stream)

    def test_resume_refuses_plain_snapshot(self, tmp_path):
        path = tmp_path / "plain.rcs"
        save(CountSketch(3, 16), path)  # no items_consumed meta
        with pytest.raises(StoreError, match="not a checkpoint"):
            CheckpointManager.resume(path, every_items=10)


class TestShardStore:
    def test_manifest_pins_parameters(self, tmp_path):
        store = ShardCheckpointStore(tmp_path / "ckpt")
        params = {"depth": 3, "width": 64, "seed": 0, "chunk_size": 100}
        store.ensure_manifest(params)
        store.ensure_manifest(params)  # same params: fine
        with pytest.raises(CheckpointMismatchError, match="width"):
            store.ensure_manifest({**params, "width": 128})

    def test_shard_round_trip_with_candidates(self, tmp_path):
        store = ShardCheckpointStore(tmp_path / "ckpt")
        sketch = CountSketch(3, 16, seed=2)
        sketch.extend(["a", "b", "a"])
        candidates = ["a", ("t", 1), b"\x00raw"]
        store.save_shard(4, sketch, items=3, candidates=candidates)
        assert store.covered_indices() == [4]
        [(index, restored, meta)] = list(store.load_shards())
        assert index == 4
        assert restored == sketch
        assert meta["items"] == 3
        assert meta["candidates"] == candidates

    def test_renamed_shard_file_detected(self, tmp_path):
        store = ShardCheckpointStore(tmp_path / "ckpt")
        store.save_shard(0, CountSketch(3, 16), items=0)
        store.shard_path(0).rename(store.shard_path(1))
        with pytest.raises(StoreError, match="chunk_index"):
            list(store.load_shards())

    def test_clear_removes_everything(self, tmp_path):
        store = ShardCheckpointStore(tmp_path / "ckpt")
        store.ensure_manifest({"depth": 3})
        store.save_shard(0, CountSketch(3, 16), items=0)
        store.clear()
        assert store.covered_indices() == []
        assert store.read_manifest() is None


class TestParallelResume:
    def test_sketch_resume_matches_uninterrupted(self, tmp_path):
        stream = make_stream(1000)
        reference, __ = parallel_sketch(
            stream, 3, 64, seed=7, chunk_size=100
        )

        ckpt = tmp_path / "ckpt"
        # First attempt dies after 5 chunks' worth of input.
        parallel_sketch(
            stream[:500], 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        assert len(ShardCheckpointStore(ckpt).covered_indices()) == 5

        resumed, summary = parallel_sketch(
            stream, 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        assert resumed == reference
        assert summary.restored_shards == 5
        assert summary.restored_items == 500

    def test_topk_resume_matches_uninterrupted(self, tmp_path):
        stream = make_stream(1000, seed=3)
        reference, __ = parallel_topk(
            stream, 5, 3, 64, seed=7, chunk_size=100
        )

        ckpt = tmp_path / "ckpt"
        parallel_topk(
            stream[:400], 5, 3, 64, seed=7, chunk_size=100,
            checkpoint_dir=ckpt,
        )
        resumed, summary = parallel_topk(
            stream, 5, 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        assert resumed == reference
        assert summary.restored_shards == 4

    def test_completed_run_rerun_is_idempotent(self, tmp_path):
        stream = make_stream(600, seed=5)
        ckpt = tmp_path / "ckpt"
        first, __ = parallel_sketch(
            stream, 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        again, summary = parallel_sketch(
            stream, 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        assert again == first
        assert summary.restored_shards == 6
        assert summary.total_items == 600

    def test_multiprocess_workers_checkpoint_too(self, tmp_path):
        stream = make_stream(800, seed=8)
        reference, __ = parallel_sketch(stream, 3, 64, seed=7, chunk_size=100)
        ckpt = tmp_path / "ckpt"
        resumed, summary = parallel_sketch(
            stream, 3, 64, seed=7, n_workers=2, chunk_size=100,
            checkpoint_dir=ckpt,
        )
        assert resumed == reference
        assert len(ShardCheckpointStore(ckpt).covered_indices()) == 8

    def test_mismatched_parameters_refused(self, tmp_path):
        stream = make_stream(300)
        ckpt = tmp_path / "ckpt"
        parallel_sketch(
            stream, 3, 64, seed=7, chunk_size=100, checkpoint_dir=ckpt
        )
        with pytest.raises(CheckpointMismatchError, match="seed"):
            parallel_sketch(
                stream, 3, 64, seed=8, chunk_size=100, checkpoint_dir=ckpt
            )
