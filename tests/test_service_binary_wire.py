"""End-to-end binary ingest wire: negotiation, exactness, splitting.

The binary frame is a bulk fast path, not a second source of truth:
everything here asserts *bit-equality* against an offline summary fed
the same acknowledged prefix, mirroring the JSON-wire exactness tests.
Negotiation and fallback (feature flag, forced modes, weight overflow)
and transparent frame splitting are covered over both transports.
"""

from __future__ import annotations

import asyncio
import random

import numpy as np
import pytest

import repro.service.client as client_module
import repro.service.protocol as protocol_module
from repro.service.client import (
    AsyncServiceClient,
    InProcessTransport,
    ServiceError,
)
from repro.service.protocol import WireProtocolError
from repro.service.server import SketchServer
from repro.service.tables import TableSpec

KINDS = ["sketch", "vectorized", "topk", "window"]


def spec_for(kind: str, name: str = "t") -> TableSpec:
    return TableSpec(
        name, kind=kind, depth=4, width=128, seed=3, k=8, window=64,
        buckets=4,
    )


def run(coro):
    return asyncio.run(coro)


class FeatureStrippingTransport(InProcessTransport):
    """A server that predates the binary wire: no features in ping."""

    async def request_bytes(self, frame):
        response = await super().request_bytes(frame)
        response.pop("features", None)
        return response


class TestNegotiation:
    def test_ping_advertises_binary_ingest(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            assert "binary-ingest-v1" in (await client.ping())["features"]
            await server.stop()

        run(go())

    @pytest.mark.parametrize("wire", ["auto", "binary", "json"])
    def test_every_wire_mode_reaches_the_same_counters(self, wire):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire=wire)
            offline = spec.build()
            records = [(f"item-{i % 7}", i + 1) for i in range(50)]
            await client.ingest(spec.name, records, wait=True)
            for item, count in records:
                offline.update(item, count)
            probes = [f"item-{i}" for i in range(8)]
            live = await client.estimate(spec.name, probes)
            assert live == [float(offline.estimate(p)) for p in probes]
            await server.stop()

        run(go())

    def test_forced_binary_refused_by_legacy_server(self):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient(
                FeatureStrippingTransport(server), wire="binary")
            with pytest.raises(ServiceError) as excinfo:
                await client.ingest(spec.name, [("a", 1)])
            assert excinfo.value.code == "bad_request"
            assert "binary-ingest-v1" in excinfo.value.message
            await server.stop()

        run(go())

    def test_auto_falls_back_to_json_on_legacy_server(self):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient(
                FeatureStrippingTransport(server), wire="auto")
            offline = spec.build()
            await client.ingest(spec.name, [("a", 3), ("b", 2)], wait=True)
            offline.update("a", 3)
            offline.update("b", 2)
            live = await client.estimate(spec.name, ["a", "b"])
            assert live == [float(offline.estimate(p)) for p in ("a", "b")]
            await server.stop()

        run(go())


class TestBinaryMidStreamExactness:
    """Acknowledged binary writes are readable, bit-equal to offline."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_interleaved_queries_match_offline(self, kind):
        async def go():
            spec = spec_for(kind)
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="binary")
            offline = spec.build()
            rng = random.Random(42)
            stream = [rng.randrange(40) for __ in range(600)]
            probes = list(range(40)) + [999_999]
            for start in range(0, len(stream), 50):
                chunk = stream[start:start + 50]
                await client.ingest_items(spec.name, chunk, wait=True)
                for item in chunk:
                    offline.update(item, 1)
                live = await client.estimate(spec.name, probes)
                assert live == [float(offline.estimate(p)) for p in probes]
                if kind == "topk":
                    assert await client.topk(spec.name) == [
                        (item, float(count))
                        for item, count in offline.top()
                    ]
            stats = await client.stats(spec.name)
            assert stats["table"]["records_applied"] == len(stream)
            await server.stop()

        run(go())

    def test_mid_stream_exactness_over_tcp(self):
        """The tentpole acceptance: TCP binary ingest, probe at the
        half-way barrier, answers bit-equal to the offline prefix."""

        async def go():
            spec = spec_for("vectorized", "flows")
            server = SketchServer([spec])
            host, port = await server.start()
            client = await AsyncServiceClient.connect(
                host, port, wire="binary")
            rng = random.Random(7)
            stream = [rng.randrange(200) for __ in range(4000)]
            half = len(stream) // 2
            probes = list(range(0, 200, 7)) + [10**9]

            offline = spec.build()
            first = stream[:half]
            batches = [first[i:i + 256] for i in range(0, half, 256)]
            assert await client.ingest_many(
                spec.name, [[(x, 1) for x in b] for b in batches]) == half
            for item in stream[:half]:
                offline.update(item, 1)
            live = await client.estimate(spec.name, probes)
            assert live == [float(offline.estimate(p)) for p in probes]

            rest = stream[half:]
            batches = [rest[i:i + 256] for i in range(0, len(rest), 256)]
            await client.ingest_many(
                spec.name, [[(x, 1) for x in b] for b in batches])
            for item in rest:
                offline.update(item, 1)
            live = await client.estimate(spec.name, probes)
            assert live == [float(offline.estimate(p)) for p in probes]

            await client.close()
            await server.stop()

        run(go())

    def test_packed_keys_roundtrip_into_topk(self):
        async def go():
            spec = spec_for("topk")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="binary")
            keys = [("flow", 8080), "\udcff-garbled", b"\x00\xff",
                    2**70, -1.5, True]
            await client.ingest(spec.name, [(k, 9) for k in keys],
                                wait=True)
            listed = {item for item, _ in await client.topk(spec.name)}
            assert listed == set(keys)
            await server.stop()

        run(go())

    def test_nan_key_accepted_but_listing_is_bad_request(self):
        # The packed codec carries NaN bit-exactly into the sketch; the
        # JSON response wire cannot list it back (satellite: allow_nan).
        async def go():
            spec = spec_for("topk")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="binary")
            await client.ingest(
                spec.name, [(float("nan"), 5), ("ok", 3)], wait=True)
            with pytest.raises(ServiceError) as excinfo:
                await client.topk(spec.name)
            assert excinfo.value.code == "bad_request"
            assert "not representable" in excinfo.value.message
            assert await client.estimate(spec.name, ["ok"]) == [3.0]
            await server.stop()

        run(go())


class TestAutoSplit:
    """Oversized batches split into several frames instead of erroring."""

    @pytest.fixture()
    def tiny_frames(self, monkeypatch):
        monkeypatch.setattr(protocol_module, "MAX_FRAME_BYTES", 16384)
        monkeypatch.setattr(client_module, "MAX_FRAME_BYTES", 16384)

    def test_json_batch_splits(self, tiny_frames):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="json")
            pairs = [(f"item-{i % 50}", 1) for i in range(3000)]
            frames = await client._build_frames(
                spec.name, pairs, wait=True)
            assert len(frames) > 1
            offline = spec.build()
            await client.ingest(spec.name, pairs, wait=True)
            for item, count in pairs:
                offline.update(item, count)
            probes = [f"item-{i}" for i in range(50)]
            live = await client.estimate(spec.name, probes)
            assert live == [float(offline.estimate(p)) for p in probes]
            stats = await client.stats(spec.name)
            assert stats["table"]["records_applied"] == len(pairs)
            await server.stop()

        run(go())

    def test_binary_raw_batch_splits(self, tiny_frames):
        async def go():
            spec = spec_for("vectorized")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="binary")
            pairs = [(i % 100, 1) for i in range(5000)]
            frames = await client._build_frames(
                spec.name, pairs, wait=True)
            assert len(frames) > 1
            offline = spec.build()
            await client.ingest(spec.name, pairs, wait=True)
            for item, count in pairs:
                offline.update(item, count)
            probes = list(range(100))
            live = await client.estimate(spec.name, probes)
            assert live == [float(offline.estimate(p)) for p in probes]
            stats = await client.stats(spec.name)
            assert stats["table"]["records_applied"] == len(pairs)
            await server.stop()

        run(go())

    def test_binary_packed_batch_splits(self, tiny_frames):
        async def go():
            spec = spec_for("topk")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="binary")
            pairs = [(f"query-{i % 30}-" + "x" * 40, 1)
                     for i in range(2000)]
            frames = await client._build_frames(
                spec.name, pairs, wait=True)
            assert len(frames) > 1
            offline = spec.build()
            await client.ingest(spec.name, pairs, wait=True)
            for item, count in pairs:
                offline.update(item, count)
            assert await client.topk(spec.name) == [
                (item, float(count)) for item, count in offline.top()
            ]
            await server.stop()

        run(go())

    def test_single_record_too_large_still_errors(self, tiny_frames):
        async def go():
            spec = spec_for("topk")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire="json")
            with pytest.raises(WireProtocolError, match="exceeds"):
                await client.ingest(spec.name, [("y" * 64000, 1)])
            await server.stop()

        run(go())


class TestBinaryIngestValidation:
    def test_unusable_key_types_fail_at_the_client_boundary(self):
        async def go():
            server = SketchServer([spec_for("sketch"),
                                   spec_for("topk", "top")])
            client = AsyncServiceClient.in_process(server, wire="binary")
            for table in ("t", "top"):  # raw and packed key paths
                with pytest.raises(WireProtocolError,
                                   match="unsupported key type"):
                    await client.ingest(
                        table, [(np.datetime64(7, "s"), 1)])
                with pytest.raises(WireProtocolError,
                                   match="unsupported key type"):
                    await client.ingest(table, [(complex(1, 2), 1)])
            await server.stop()

        run(go())

    @pytest.mark.parametrize("wire", ["auto", "binary", "json"])
    def test_count_beyond_int64_refused_on_every_wire(self, wire):
        # Regression: the JSON wire used to accept a 2**70 count, which
        # crashed the applier task (int64 counters) and hung every read
        # barrier behind it.  Now all wires refuse it up front and the
        # table stays live.
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server, wire=wire)
            for bad in (2**63, -(2**63) - 1, 2**70):
                with pytest.raises(ServiceError) as excinfo:
                    await client.ingest(spec.name, [("big", bad)])
                assert excinfo.value.code == "bad_request"
                assert "int64" in excinfo.value.message
            await client.ingest(spec.name, [("ok", 2**62)], wait=True)
            assert await client.estimate(spec.name, ["ok"]) == [float(2**62)]
            await server.stop()

        run(go())

    def test_raw_keys_refused_for_topk_tables_server_side(self):
        # The client always packs topk losslessly; a foreign client
        # sending raw hashes at a topk table must be refused — the
        # table stores original items the hash cannot reconstruct.
        async def go():
            from repro.service.protocol import (
                pack_binary_ingest,
                unpack_frame,
            )

            server = SketchServer([spec_for("topk")])
            frame = pack_binary_ingest(
                "t", 1,
                np.array([7], dtype=np.uint64),
                np.array([1], dtype=np.int64),
                raw=True,
            )
            response = await server.dispatch_binary(unpack_frame(frame))
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            await server.stop()

        run(go())
