"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.streams.io import write_stream_text


@pytest.fixture()
def stream_file(tmp_path):
    path = tmp_path / "stream.txt"
    items = ["apple"] * 30 + ["banana"] * 20 + ["cherry"] * 10 + ["date"] * 2
    write_stream_text(path, items)
    return str(path)


@pytest.fixture()
def stream_pair(tmp_path):
    before = tmp_path / "before.txt"
    after = tmp_path / "after.txt"
    write_stream_text(before, ["up"] * 5 + ["down"] * 40 + ["flat"] * 20)
    write_stream_text(after, ["up"] * 45 + ["down"] * 5 + ["flat"] * 20)
    return str(before), str(after)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_choices_complete(self):
        # Every listed experiment module must actually import and expose
        # main().
        import importlib

        for name in EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.main)

    def test_topk_defaults(self):
        args = build_parser().parse_args(["topk", "--input", "x.txt"])
        assert args.k == 10
        assert args.depth == 5
        assert args.width == 512


class TestTopK:
    def test_reports_heaviest_first(self, stream_file, capsys):
        assert main(["topk", "--input", stream_file, "--k", "3"]) == 0
        out = capsys.readouterr().out
        assert "apple" in out
        assert out.index("apple") < out.index("banana") < out.index("cherry")
        assert "space:" in out

    def test_custom_dimensions(self, stream_file, capsys):
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--depth", "3", "--width", "64", "--seed", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "apple" in out

    def test_int_keys(self, tmp_path, capsys):
        path = tmp_path / "ints.txt"
        write_stream_text(path, [7] * 10 + [3] * 5)
        assert main(["topk", "--input", str(path), "--k", "1",
                     "--int-keys"]) == 0
        out = capsys.readouterr().out
        assert "7" in out

    def test_parallel_workers(self, stream_file, capsys):
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--workers", "2", "--chunk-size", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "apple" in out
        assert out.index("apple") < out.index("banana")
        assert "ingest: 2 workers" in out
        assert "62 items" in out  # total item count still reported

    def test_streams_lazily(self, stream_file, capsys, monkeypatch):
        # The CLI must never materialize the input file into a list.
        import repro.streams.io as io_module

        def _forbidden(*args, **kwargs):
            raise AssertionError("CLI must not load the whole stream")

        monkeypatch.setattr(io_module, "read_stream_text", _forbidden)
        assert main(["topk", "--input", stream_file, "--k", "1"]) == 0
        out = capsys.readouterr().out
        assert "apple" in out


class TestEstimate:
    def test_estimates_requested_items(self, stream_file, capsys):
        assert main([
            "estimate", "--input", stream_file, "apple", "missing",
        ]) == 0
        out = capsys.readouterr().out
        assert "apple" in out
        assert "30" in out  # exact under a wide sketch
        assert "missing" in out

    def test_parallel_matches_serial(self, stream_file, capsys):
        # Exact merge: --workers must not change a single estimate.
        assert main(["estimate", "--input", stream_file, "apple"]) == 0
        serial_out = capsys.readouterr().out
        assert main([
            "estimate", "--input", stream_file, "apple",
            "--workers", "3", "--chunk-size", "8",
        ]) == 0
        parallel_out = capsys.readouterr().out
        serial_table = serial_out.splitlines()
        parallel_table = [
            line for line in parallel_out.splitlines()
            if not line.startswith("ingest:")
        ]
        assert serial_table == parallel_table


class TestMaxChange:
    def test_reports_movers(self, stream_pair, capsys):
        before, after = stream_pair
        assert main([
            "maxchange", "--before", before, "--after", after, "--k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "up" in out
        assert "down" in out
        assert "flat" not in out.split("change")[-1].split("\n")[0]


class TestPercentChange:
    def test_reports_percent_movers(self, tmp_path, capsys):
        before = tmp_path / "before.txt"
        after = tmp_path / "after.txt"
        write_stream_text(before, ["stable"] * 100 + ["sleeper"] * 5)
        write_stream_text(after, ["stable"] * 100 + ["sleeper"] * 80)
        assert main([
            "percent-change", "--before", str(before), "--after",
            str(after), "--k", "1", "--floor", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "sleeper" in out
        assert "%" in out

    def test_min_after_filter(self, tmp_path, capsys):
        before = tmp_path / "b.txt"
        after = tmp_path / "a.txt"
        write_stream_text(before, ["vanished"] * 50 + ["grew"] * 10)
        write_stream_text(after, ["grew"] * 60)
        assert main([
            "percent-change", "--before", str(before), "--after",
            str(after), "--k", "1", "--min-after", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "grew" in out
        assert "vanished" not in out


class TestMetricsOut:
    def test_topk_serial_json(self, stream_file, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--metrics-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"metrics: wrote json to {out_path}" in out
        snapshot = json.loads(out_path.read_text())
        counters = snapshot["counters"]
        assert counters["countsketch_updates_total"] == 62
        assert counters["topk_updates_total"] == 62
        assert counters["countsketch_position_cache_misses_total"] == 4
        assert counters["countsketch_position_cache_hits_total"] > 0
        assert counters["topk_heap_admissions_total"] >= 2
        assert counters["topk_exact_increments_total"] > 0

    def test_topk_parallel_json_covers_all_families(self, stream_file,
                                                    tmp_path, capsys):
        """The acceptance check: a parallel topk run must emit counters
        covering sketch updates, position-cache traffic, heap churn, and
        the per-shard merge timing histogram."""
        out_path = tmp_path / "m.json"
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--workers", "2", "--chunk-size", "16",
            "--metrics-out", str(out_path),
        ]) == 0
        snapshot = json.loads(out_path.read_text())
        counters = snapshot["counters"]
        # Worker-side sketch/tracker counters survive the process boundary.
        # Shards pre-aggregate their chunk, so updates count weighted update
        # calls: distinct items per 16-item chunk (1 + 2 + 1 + 3).
        assert counters["countsketch_updates_total"] == 7
        assert counters["topk_updates_total"] == 7
        assert counters["countsketch_position_cache_misses_total"] > 0
        assert counters["topk_heap_admissions_total"] > 0
        assert counters["parallel_shards_total"] == 4  # ceil(62 / 16)
        assert counters["parallel_items_total"] == 62
        merge = snapshot["histograms"]["parallel_merge_seconds"]
        assert merge["count"] == 4
        assert merge["sum"] >= 0.0
        assert snapshot["gauges"]["parallel_workers"] == 2.0

    def test_estimate_metrics(self, stream_file, tmp_path, capsys):
        out_path = tmp_path / "m.json"
        assert main([
            "estimate", "--input", stream_file, "apple",
            "--metrics-out", str(out_path),
        ]) == 0
        counters = json.loads(out_path.read_text())["counters"]
        assert counters["countsketch_updates_total"] == 62
        assert counters["countsketch_estimates_total"] == 1

    def test_maxchange_metrics(self, stream_pair, tmp_path, capsys):
        before, after = stream_pair
        out_path = tmp_path / "m.json"
        assert main([
            "maxchange", "--before", before, "--after", after,
            "--k", "2", "--l", "3", "--metrics-out", str(out_path),
        ]) == 0
        counters = json.loads(out_path.read_text())["counters"]
        # Pass 1 touches every item of both streams (65 + 70).
        assert counters["countsketch_updates_total"] == 135
        assert counters["maxchange_admissions_total"] == 3

    def test_prometheus_format_inferred_from_extension(self, stream_file,
                                                       tmp_path, capsys):
        out_path = tmp_path / "m.prom"
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--metrics-out", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert f"metrics: wrote prometheus to {out_path}" in out
        text = out_path.read_text()
        assert "# TYPE countsketch_updates_total counter" in text
        assert "countsketch_updates_total 62" in text

    def test_explicit_format_overrides_extension(self, stream_file,
                                                 tmp_path, capsys):
        out_path = tmp_path / "metrics.dat"
        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--metrics-out", str(out_path),
            "--metrics-format", "prometheus",
        ]) == 0
        assert "# TYPE" in out_path.read_text()

    def test_no_flag_means_no_collection(self, stream_file, tmp_path,
                                         capsys):
        from repro.observability import get_registry, NullRegistry

        assert main(["topk", "--input", stream_file, "--k", "2"]) == 0
        assert isinstance(get_registry(), NullRegistry)
        assert list(tmp_path.glob("*.json")) == []
        assert list(tmp_path.glob("*.prom")) == []

    def test_registry_restored_after_run(self, stream_file, tmp_path,
                                         capsys):
        from repro.observability import get_registry, NullRegistry

        assert main([
            "topk", "--input", stream_file, "--k", "2",
            "--metrics-out", str(tmp_path / "m.json"),
        ]) == 0
        assert isinstance(get_registry(), NullRegistry)


class TestExperimentDispatch:
    def test_runs_cheap_experiment(self, capsys, monkeypatch):
        # Patch the experiment's default config for a fast run.
        from repro.experiments import sampling_space

        small = sampling_space.SamplingSpaceConfig(
            m=500, n=5_000, zs=(1.0,), sampler_seeds=(0,)
        )
        monkeypatch.setattr(
            sampling_space, "SamplingSpaceConfig", lambda: small
        )
        assert main(["experiment", "sampling_space"]) == 0
        out = capsys.readouterr().out
        assert "SAMPLING distinct items" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "not_a_module"])
