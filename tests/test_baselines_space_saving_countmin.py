"""Tests for SpaceSaving and the Count-Min sketch."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.countmin import CountMinSketch
from repro.baselines.space_saving import SpaceSaving


class TestSpaceSavingBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            SpaceSaving(2).update("a", 0)

    def test_tracks_within_capacity(self):
        summary = SpaceSaving(3)
        for item in ["a", "b", "c"]:
            summary.update(item)
        assert summary.estimate("a") == 1.0
        assert summary.error("a") == 0

    def test_replacement_inherits_min_count(self):
        summary = SpaceSaving(2)
        summary.update("a", 10)
        summary.update("b", 3)
        summary.update("c")  # replaces b: count = 3 + 1, error = 3
        assert "b" not in summary
        assert summary.estimate("c") == 4.0
        assert summary.error("c") == 3

    def test_capacity_never_exceeded(self):
        summary = SpaceSaving(4)
        rng = random.Random(5)
        for _ in range(2000):
            summary.update(rng.randrange(100))
            assert summary.items_stored() <= 4

    def test_untracked_estimate_zero(self):
        assert SpaceSaving(2).estimate("missing") == 0.0

    def test_error_missing_raises(self):
        with pytest.raises(KeyError):
            SpaceSaving(2).error("missing")

    def test_guaranteed_count(self):
        summary = SpaceSaving(2)
        summary.update("a", 10)
        assert summary.guaranteed_count("a") == 10.0
        assert summary.guaranteed_count("missing") == 0.0

    def test_counters_used_two_per_entry(self):
        summary = SpaceSaving(5)
        summary.update("a")
        summary.update("b")
        assert summary.counters_used() == 4

    def test_top_order(self):
        summary = SpaceSaving(5)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            summary.update(item, count)
        assert [item for item, __ in summary.top(3)] == ["a", "b", "c"]


class TestSpaceSavingGuarantees:
    def make_stream(self, seed, n=4000):
        rng = random.Random(seed)
        stream = []
        for item in range(8):
            stream.extend([f"heavy-{item}"] * (n // (8 * (item + 1))))
        while len(stream) < n:
            stream.append(rng.randrange(5000))
        rng.shuffle(stream)
        return stream[:n]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("capacity", [20, 100])
    def test_overestimate_bounded(self, seed, capacity):
        """true <= estimate <= true + error and error <= n/c."""
        stream = self.make_stream(seed)
        counts = Counter(stream)
        summary = SpaceSaving(capacity)
        for item in stream:
            summary.update(item)
        for item, __ in summary.top(capacity):
            estimate = summary.estimate(item)
            assert estimate >= counts[item]
            assert estimate - summary.error(item) <= counts[item]
            assert summary.error(item) <= len(stream) / capacity

    @pytest.mark.parametrize("seed", [0, 1])
    def test_heavy_items_tracked(self, seed):
        """Every item with count > n/c must be tracked."""
        capacity = 50
        stream = self.make_stream(seed)
        counts = Counter(stream)
        summary = SpaceSaving(capacity)
        for item in stream:
            summary.update(item)
        threshold = len(stream) / capacity
        for item, count in counts.items():
            if count > threshold:
                assert item in summary

    def test_guaranteed_top_is_sound(self):
        stream = self.make_stream(3)
        counts = Counter(stream)
        summary = SpaceSaving(100)
        for item in stream:
            summary.update(item)
        k = 5
        true_top_counts = sorted(counts.values(), reverse=True)
        kth = true_top_counts[k - 1] if len(true_top_counts) >= k else 0
        for item, __ in summary.guaranteed_top(k):
            # Items certified into the top k really have large counts.
            assert counts[item] >= summary.guaranteed_count(item)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                 max_size=200),
        st.integers(min_value=1, max_value=8),
    )
    def test_guarantees_property(self, items, capacity):
        counts = Counter(items)
        summary = SpaceSaving(capacity)
        for item in items:
            summary.update(item)
        for item, estimate in summary.top(capacity):
            assert counts[item] <= estimate
            assert estimate - summary.error(item) <= counts[item]


class TestCountMin:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 10)
        with pytest.raises(ValueError):
            CountMinSketch(3, 0)

    def test_negative_update_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(3, 16).update("a", -1)

    def test_basic_estimate(self):
        sketch = CountMinSketch(3, 64, seed=0)
        sketch.update("x", 7)
        assert sketch.estimate("x") == 7.0

    def test_never_underestimates(self):
        sketch = CountMinSketch(3, 8, seed=1)  # narrow: many collisions
        counts = Counter({f"item-{i}": i + 1 for i in range(50)})
        for item, count in counts.items():
            sketch.update(item, count)
        for item, count in counts.items():
            assert sketch.estimate(item) >= count

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    def test_never_underestimates_property(self, items):
        sketch = CountMinSketch(2, 8, seed=2)
        counts = Counter(items)
        for item in items:
            sketch.update(item)
        for item, count in counts.items():
            assert sketch.estimate(item) >= count

    def test_error_bounded_by_l1_over_width(self):
        """CM error <= e/width * n with prob 1-e^-depth; test generously."""
        sketch = CountMinSketch(5, 64, seed=3)
        rng = random.Random(4)
        items = [rng.randrange(1000) for _ in range(5000)]
        counts = Counter(items)
        for item in items:
            sketch.update(item)
        failures = sum(
            1
            for item, count in counts.items()
            if sketch.estimate(item) - count > 3 * len(items) / 64
        )
        assert failures <= len(counts) * 0.05

    def test_conservative_update_tighter(self):
        rng = random.Random(6)
        items = [rng.randrange(500) for _ in range(5000)]
        counts = Counter(items)
        plain = CountMinSketch(3, 32, seed=7)
        conservative = CountMinSketch(3, 32, seed=7, conservative=True)
        for item in items:
            plain.update(item)
            conservative.update(item)
        plain_err = sum(plain.estimate(i) - c for i, c in counts.items())
        cons_err = sum(
            conservative.estimate(i) - c for i, c in counts.items()
        )
        assert cons_err <= plain_err
        # Conservative never underestimates either.
        for item, count in counts.items():
            assert conservative.estimate(item) >= count

    def test_merge(self):
        s1 = CountMinSketch(3, 32, seed=8)
        s2 = CountMinSketch(3, 32, seed=8)
        s1.update("a", 3)
        s2.update("a", 4)
        s1.merge(s2)
        assert s1.estimate("a") == 7.0
        assert s1.total == 7

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(3, 32, seed=8).merge(CountMinSketch(3, 32, seed=9))

    def test_merge_conservative_rejected(self):
        a = CountMinSketch(3, 32, seed=8, conservative=True)
        b = CountMinSketch(3, 32, seed=8, conservative=True)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_space_accessors(self):
        sketch = CountMinSketch(3, 32)
        assert sketch.counters_used() == 96
        assert sketch.items_stored() == 0

    def test_explicit_hashes_depth_checked(self):
        donor = CountMinSketch(3, 16, seed=1)
        with pytest.raises(ValueError):
            CountMinSketch(2, 16, bucket_hashes=donor._bucket_hashes)
