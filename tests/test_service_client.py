"""The synchronous client facade over a real TCP server.

The server runs its own event loop on a background thread; the
:class:`ServiceClient` under test runs *another* private loop on its
own daemon thread.  Everything here crosses real sockets, so these
tests cover the frame codec, the transport lock, and the sync/async
bridge end to end.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service.client import (
    ServiceClient,
    ServiceConnectionError,
    ServiceError,
)
from repro.service.server import SketchServer
from repro.service.tables import TableSpec


class ServerThread:
    """A SketchServer serving TCP on a background event loop."""

    def __init__(self, specs, **kwargs):
        self._specs = specs
        self._kwargs = kwargs
        self._started = threading.Event()
        self.host = ""
        self.port = 0
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = SketchServer(self._specs, **self._kwargs)
            self.host, self.port = await self.server.start()
            self._started.set()
            await self.server.wait_stopped()

        asyncio.run(main())

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            try:
                with ServiceClient(self.host, self.port, timeout=5) as c:
                    c.shutdown()
            except (OSError, ServiceError):
                pass  # stopped between the liveness check and the connect
            self._thread.join(10)

    def join(self, timeout=10):
        self._thread.join(timeout)
        return not self._thread.is_alive()


SPEC = TableSpec("queries", kind="topk", depth=4, width=256, seed=5, k=5)


class TestSyncClientOverTcp:
    def test_full_session_matches_offline(self):
        with ServerThread([SPEC]) as box:
            offline = SPEC.build()
            stream = (["deep learning"] * 9 + ["sketch"] * 6
                      + ["stream"] * 3 + ["rare"])
            with ServiceClient(box.host, box.port, timeout=10) as client:
                info = client.ping()
                assert info["version"] == 1

                client.ingest("queries", [(q, 1) for q in stream])
                for query in stream:
                    offline.update(query, 1)

                live = client.estimate(
                    "queries", ["deep learning", "sketch", "absent"])
                assert live == [
                    float(offline.estimate(q))
                    for q in ("deep learning", "sketch", "absent")
                ]
                assert client.topk("queries") == [
                    (item, float(count)) for item, count in offline.top()
                ]

                stats = client.stats("queries")
                assert stats["table"]["records_applied"] == len(stream)
                assert "service_requests_total" in client.metrics()

    def test_second_table_created_over_the_wire(self):
        with ServerThread([SPEC]) as box:
            with ServiceClient(box.host, box.port, timeout=10) as client:
                spec = TableSpec("flows", kind="sketch", depth=4, width=64)
                assert client.create_table(spec) is True
                client.ingest("flows", [(("tcp", 443), 10)], wait=True)
                assert client.estimate("flows", [("tcp", 443)]) == [10.0]
                assert client.drop_table("flows") == 1

    def test_server_errors_surface_with_codes(self):
        with ServerThread([SPEC]) as box:
            with ServiceClient(box.host, box.port, timeout=10) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.estimate("ghost", ["x"])
                assert excinfo.value.code == "no_such_table"
                with pytest.raises(ServiceError) as excinfo:
                    client.checkpoint()
                assert excinfo.value.code == "bad_request"

    def test_shutdown_stops_the_server_thread(self):
        box = ServerThread([SPEC])
        with box:
            with ServiceClient(box.host, box.port, timeout=10) as client:
                client.ingest_items("queries", ["a", "b"])
                client.shutdown()
            assert box.join(10), "server thread did not exit"
            assert box.server.tables["queries"].records_applied == 2

    def test_concurrent_sync_clients_agree(self):
        with ServerThread([SPEC]) as box:
            clients = [
                ServiceClient(box.host, box.port, timeout=10)
                for __ in range(3)
            ]
            try:
                for index, client in enumerate(clients):
                    client.ingest(
                        "queries", [(f"q{index}", index + 1)], wait=True)
                answers = [
                    client.estimate("queries", ["q0", "q1", "q2"])
                    for client in clients
                ]
                assert answers[0] == answers[1] == answers[2]
            finally:
                for client in clients:
                    client.close()

    def test_connection_refused_raises_typed_error(self):
        with pytest.raises(ServiceConnectionError, match="cannot connect"):
            ServiceClient("127.0.0.1", 1, timeout=2)

    def test_mid_session_loss_raises_typed_error(self):
        box = ServerThread([SPEC])
        with box:
            client = ServiceClient(box.host, box.port, timeout=10)
            try:
                client.ingest_items("queries", ["a"], wait=True)
                client.shutdown()
                assert box.join(10), "server thread did not exit"
                with pytest.raises(ServiceConnectionError):
                    client.estimate("queries", ["a"])
            finally:
                client.close()
