"""The format-stability gate: golden snapshots must keep decoding.

``tests/fixtures/store/`` holds one committed ``.rcs`` file per summary
type plus ``golden.json`` with their expected estimates.  These bytes
are the contract with every snapshot already written to disk in the
wild: this module fails if

* a committed fixture stops decoding (a reader regression),
* its estimates drift (a semantic regression), or
* re-encoding the decoded summary produces different bytes (a writer
  regression — snapshots must stay a deterministic function of state).

After an *intentional* format change, bump ``FORMAT_VERSION``, keep a
reader for version 1, and regenerate via
``tests/fixtures/store/generate_fixtures.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.store import dumps, load
from repro.store.format import TYPE_CODES, decode_frame

FIXTURES = Path(__file__).parent / "fixtures" / "store"
GOLDEN = json.loads((FIXTURES / "golden.json").read_text(encoding="utf-8"))

EXPECTED_TYPES = {
    "dense": CountSketch,
    "sparse": SparseCountSketch,
    "vectorized": VectorizedCountSketch,
    "topk": TopKTracker,
    "window": JumpingWindowSketch,
}

PROBES = ["alpha", "beta", "gamma", "missing", 17, ("pair", 1), b"\x00raw"]


def fixture_names():
    return sorted(GOLDEN)


class TestGoldenFixtures:
    def test_one_fixture_per_summary_type(self):
        assert set(GOLDEN) == set(EXPECTED_TYPES) == set(TYPE_CODES)

    @pytest.mark.parametrize("name", fixture_names())
    def test_decodes_to_the_right_type(self, name):
        summary = load(FIXTURES / GOLDEN[name]["file"])
        assert isinstance(summary, EXPECTED_TYPES[name])

    @pytest.mark.parametrize("name", fixture_names())
    def test_estimates_match_recorded_values(self, name):
        summary = load(FIXTURES / GOLDEN[name]["file"])
        recorded = GOLDEN[name]["estimates"]
        for item in PROBES:
            assert summary.estimate(item) == recorded[repr(item)], item

    @pytest.mark.parametrize("name", fixture_names())
    def test_reencoding_is_byte_identical(self, name):
        # decode → re-encode must reproduce the committed bytes exactly;
        # anything else means freshly written snapshots no longer match
        # the format existing files use.
        data = (FIXTURES / GOLDEN[name]["file"]).read_bytes()
        assert dumps(load(FIXTURES / GOLDEN[name]["file"])) == data

    @pytest.mark.parametrize("name", fixture_names())
    def test_declared_type_code_is_stable(self, name):
        data = (FIXTURES / GOLDEN[name]["file"]).read_bytes()
        type_code, __, __ = decode_frame(data)
        assert type_code == TYPE_CODES[name]
