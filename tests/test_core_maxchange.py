"""Tests for repro.core.maxchange — the §4.2 two-pass algorithm."""

import pytest

from repro.core.maxchange import ChangeReport, MaxChangeFinder, find_max_change
from repro.streams.drift import make_drift_pair


class TestChangeReport:
    def test_change_and_abs_change(self):
        report = ChangeReport("x", count_before=10, count_after=3,
                              estimated_change=-6.5)
        assert report.change == -7
        assert report.abs_change == 7

    def test_frozen(self):
        report = ChangeReport("x", 1, 2, 1.0)
        with pytest.raises(AttributeError):
            report.count_before = 5


class TestConstruction:
    def test_requires_dimensions_or_sketch(self):
        with pytest.raises(ValueError):
            MaxChangeFinder(5)

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            MaxChangeFinder(0, depth=3, width=32)

    def test_sketch_and_dimensions_exclusive(self):
        from repro.core.countsketch import CountSketch

        with pytest.raises(ValueError):
            MaxChangeFinder(5, sketch=CountSketch(3, 32), depth=3)


class TestDifferenceSketch:
    def test_first_pass_builds_difference(self):
        finder = MaxChangeFinder(5, depth=5, width=256, seed=0)
        finder.first_pass(["a"] * 10, ["a"] * 3 + ["b"] * 7)
        assert finder.sketch.estimate("a") == -7.0
        assert finder.sketch.estimate("b") == 7.0

    def test_identical_streams_zero_sketch(self):
        finder = MaxChangeFinder(5, depth=3, width=64, seed=0)
        stream = ["a", "b", "c", "a"]
        finder.first_pass(stream, stream)
        assert not finder.sketch.counters.any()

    def test_incremental_observers_match_bulk(self):
        bulk = MaxChangeFinder(5, depth=3, width=64, seed=0)
        bulk.first_pass(["a", "b"], ["b", "c"])
        inc = MaxChangeFinder(5, depth=3, width=64, seed=0)
        inc.observe_before("a")
        inc.observe_before("b")
        inc.observe_after("b")
        inc.observe_after("c")
        assert inc.sketch == bulk.sketch

    def test_weighted_observers(self):
        finder = MaxChangeFinder(5, depth=3, width=64, seed=0)
        finder.observe_before("a", 10)
        finder.observe_after("a", 4)
        assert finder.sketch.estimate("a") == -6.0


class TestSecondPass:
    def run_small(self, before, after, l=4, k=3):
        finder = MaxChangeFinder(l, depth=5, width=256, seed=0)
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        return finder.report(k)

    def test_exact_counts_in_report(self):
        before = ["a"] * 10 + ["b"] * 5
        after = ["a"] * 2 + ["b"] * 5 + ["c"] * 8
        reports = self.run_small(before, after)
        by_item = {r.item: r for r in reports}
        assert by_item["a"].count_before == 10
        assert by_item["a"].count_after == 2
        assert by_item["c"].count_before == 0
        assert by_item["c"].count_after == 8

    def test_ranking_by_abs_change(self):
        before = ["a"] * 10 + ["b"] * 5 + ["c"] * 1
        after = ["a"] * 1 + ["b"] * 5 + ["c"] * 4
        reports = self.run_small(before, after, l=4, k=3)
        assert [r.item for r in reports] == ["a", "c", "b"]

    def test_report_k_zero(self):
        assert self.run_small(["a"], ["b"], k=0) == []

    def test_report_negative_k_rejected(self):
        finder = MaxChangeFinder(4, depth=3, width=64, seed=0)
        with pytest.raises(ValueError):
            finder.report(-1)

    def test_candidate_set_capped_at_l(self):
        finder = MaxChangeFinder(3, depth=5, width=512, seed=0)
        before = []
        after = [item for item in range(20) for _ in range(item + 1)]
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        assert finder.items_stored() <= 3
        # The 3 largest changes are items 19, 18, 17.
        reported = {r.item for r in finder.report(3)}
        assert reported == {19, 18, 17}

    def test_evicted_items_never_readmitted(self):
        finder = MaxChangeFinder(1, depth=5, width=512, seed=0)
        before = []
        after = ["small"] * 2 + ["big"] * 50 + ["small"] * 2
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        reports = finder.report(1)
        assert reports[0].item == "big"
        # 'big' entered at its first encounter, so its exact count is full.
        assert reports[0].count_after == 50

    def test_counters_used(self):
        finder = MaxChangeFinder(4, depth=2, width=8, seed=0)
        finder.first_pass(["a"], ["b"])
        finder.second_pass(["a"], ["b"])
        assert finder.counters_used() == 2 * 8 + 2 * finder.items_stored()


class TestEndToEnd:
    def test_recovers_planted_drift(self):
        pair = make_drift_pair(
            m=1_000, n=20_000, z=1.0, num_risers=3, num_fallers=3,
            boost=8.0, seed=5,
        )
        finder = MaxChangeFinder(20, depth=5, width=512, seed=1)
        finder.first_pass(pair.before, pair.after)
        finder.second_pass(pair.before, pair.after)
        reported = {r.item for r in finder.report(6)}
        truth = {item for item, __ in pair.top_changes(6)}
        assert len(reported & truth) >= 5

    def test_estimated_change_close_to_exact(self):
        pair = make_drift_pair(m=1_000, n=20_000, seed=6)
        finder = MaxChangeFinder(20, depth=5, width=512, seed=2)
        finder.first_pass(pair.before, pair.after)
        finder.second_pass(pair.before, pair.after)
        for report in finder.report(5):
            assert abs(report.estimated_change - report.change) <= (
                0.2 * abs(report.change) + 30
            )

    def test_find_max_change_wrapper(self):
        before = ["a"] * 30 + ["b"] * 5
        after = ["a"] * 5 + ["b"] * 5 + ["c"] * 20
        reports = find_max_change(before, after, k=2, depth=5, width=128)
        items = [r.item for r in reports]
        assert items[0] == "a"
        assert items[1] == "c"

    def test_wrapper_default_l(self):
        reports = find_max_change(["a"] * 4, ["b"] * 4, k=1,
                                  depth=3, width=64)
        assert reports[0].item in ("a", "b")

    def test_wrapper_rejects_generator_streams(self):
        """Regression: a generator is exhausted after pass 1, so pass 2
        would silently see an empty stream and report nothing.  The wrapper
        must refuse one-shot iterators up front."""
        with pytest.raises(TypeError, match="one-shot"):
            find_max_change((x for x in ["a", "b"]), ["a"], k=1,
                            depth=3, width=64)
        with pytest.raises(TypeError, match="one-shot"):
            find_max_change(["a"], iter(["a", "b"]), k=1,
                            depth=3, width=64)

    def test_wrapper_accepts_reiterable_sequences(self):
        reports = find_max_change(["a"] * 10, ["b"] * 10, k=2,
                                  depth=5, width=128)
        assert {r.item for r in reports} == {"a", "b"}
