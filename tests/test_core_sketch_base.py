"""Tests for the shared summary protocols and the consume helper."""


from repro.baselines.exact import ExactCounter
from repro.core.sketch_base import FrequencyEstimator, StreamSummary, consume
from repro.core.topk import TopKTracker


class TestConsume:
    def test_feeds_every_item_in_order(self):
        counter = ExactCounter()
        consume(counter, ["a", "b", "a"])
        assert counter.count("a") == 2
        assert counter.count("b") == 1

    def test_empty_stream(self):
        counter = ExactCounter()
        consume(counter, [])
        assert counter.total == 0

    def test_generator_input(self):
        counter = ExactCounter()
        consume(counter, (item for item in range(5)))
        assert counter.total == 5


class TestProtocolNegatives:
    """Objects missing the required surface are rejected by the runtime
    protocol checks the harness relies on."""

    def test_plain_object_is_not_a_summary(self):
        assert not isinstance(object(), StreamSummary)
        assert not isinstance(object(), FrequencyEstimator)

    def test_update_only_object_is_not_a_summary(self):
        class UpdateOnly:
            def update(self, item, count=1):
                pass

        assert not isinstance(UpdateOnly(), StreamSummary)

    def test_dict_is_not_an_estimator(self):
        assert not isinstance({}, FrequencyEstimator)

    def test_tracker_satisfies_both(self):
        tracker = TopKTracker(2, depth=2, width=8)
        assert isinstance(tracker, StreamSummary)
        assert isinstance(tracker, FrequencyEstimator)


class TestAccountingConsistency:
    """counters_used/items_stored answer in the paper's units for every
    summary: nonnegative ints that never shrink spontaneously."""

    def test_monotone_under_inserts(self):
        from repro.baselines.space_saving import SpaceSaving

        summary = SpaceSaving(8)
        previous = 0
        for item in range(50):
            summary.update(item)
            current = summary.counters_used()
            assert isinstance(current, int)
            assert current >= 0
            # SpaceSaving only grows until capacity, then plateaus.
            assert current >= previous or current == 16
            previous = current
