"""Tests for query/packet workloads, stream I/O, and the Stream model."""

import pytest

from repro.streams.io import (
    iter_stream_text,
    read_stream_jsonl,
    read_stream_text,
    write_stream_jsonl,
    write_stream_text,
)
from repro.streams.model import Stream
from repro.streams.packets import Flow, FlowStreamGenerator
from repro.streams.queries import Burst, QueryStreamGenerator


class TestStreamModel:
    def test_sequence_protocol(self):
        stream = Stream(["a", "b", "a"])
        assert len(stream) == 3
        assert stream[0] == "a"
        assert list(stream) == ["a", "b", "a"]

    def test_counts(self):
        stream = Stream(["a", "b", "a"])
        assert stream.counts() == {"a": 2, "b": 1}

    def test_distinct(self):
        assert Stream(["a", "b", "a"]).distinct() == 2

    def test_describe_includes_params(self):
        stream = Stream([1], name="test", params={"z": 1.0})
        text = stream.describe()
        assert "test" in text
        assert "z=1.0" in text

    def test_reiterable(self):
        """Streams must support multiple passes (the 2-pass algorithms)."""
        stream = Stream([1, 2, 3])
        assert list(stream) == list(stream)


class TestQueryStream:
    def test_vocabulary_size(self):
        generator = QueryStreamGenerator(vocabulary_size=100, seed=0)
        assert len(generator.vocabulary) == 100
        assert len(set(generator.vocabulary)) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            QueryStreamGenerator(vocabulary_size=0)

    def test_generate_strings(self):
        stream = QueryStreamGenerator(vocabulary_size=50, seed=1).generate(200)
        assert len(stream) == 200
        assert all(isinstance(item, str) for item in stream)

    def test_popularity_is_skewed(self):
        generator = QueryStreamGenerator(vocabulary_size=200, z=1.0, seed=2)
        stream = generator.generate(20_000)
        counts = stream.counts()
        top_query = generator.query_for_rank(1)
        mid_query = generator.query_for_rank(100)
        assert counts[top_query] > counts.get(mid_query, 0)

    def test_burst_injection(self):
        generator = QueryStreamGenerator(vocabulary_size=500, seed=3)
        burst = Burst("BREAKING", start=100, end=600, fraction=0.5)
        stream = generator.generate(1000, bursts=(burst,))
        counts = stream.counts()
        assert 150 < counts["BREAKING"] < 350
        # Burst confined to its window.
        assert "BREAKING" not in stream[:100]
        assert "BREAKING" not in stream[600:]

    def test_burst_validation(self):
        generator = QueryStreamGenerator(vocabulary_size=10, seed=0)
        with pytest.raises(ValueError):
            generator.generate(100, bursts=(Burst("x", 50, 200, 0.5),))
        with pytest.raises(ValueError):
            generator.generate(100, bursts=(Burst("x", 0, 50, 0.0),))

    def test_deterministic(self):
        a = QueryStreamGenerator(vocabulary_size=50, seed=7).generate(100)
        b = QueryStreamGenerator(vocabulary_size=50, seed=7).generate(100)
        assert list(a) == list(b)


class TestFlowStream:
    def test_flow_structure(self):
        generator = FlowStreamGenerator(num_flows=20, seed=0)
        stream = generator.generate(100)
        packet = stream[0]
        assert isinstance(packet, Flow)
        assert packet.protocol in ("tcp", "udp", "icmp")
        assert 0 < packet.src_port < 65536

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowStreamGenerator(num_flows=0)

    def test_elephant_flow_dominates(self):
        generator = FlowStreamGenerator(num_flows=500, z=1.3, seed=1)
        stream = generator.generate(20_000)
        counts = stream.counts()
        elephant = generator.flow_for_rank(1)
        assert counts[elephant] == max(counts.values())

    def test_flows_are_distinct(self):
        generator = FlowStreamGenerator(num_flows=100, seed=2)
        assert len(set(generator.flows)) == 100

    def test_deterministic(self):
        a = FlowStreamGenerator(num_flows=20, seed=3).generate(50)
        b = FlowStreamGenerator(num_flows=20, seed=3).generate(50)
        assert list(a) == list(b)


class TestStreamIO:
    def test_text_roundtrip_strings(self, tmp_path):
        path = tmp_path / "stream.txt"
        items = ["alpha", "beta", "alpha"]
        assert write_stream_text(path, items) == 3
        assert read_stream_text(path) == items

    def test_text_roundtrip_ints(self, tmp_path):
        path = tmp_path / "stream.txt"
        items = [5, 3, 5, 1]
        write_stream_text(path, items)
        assert read_stream_text(path, as_int=True) == items

    def test_text_rejects_newlines(self, tmp_path):
        with pytest.raises(ValueError):
            write_stream_text(tmp_path / "x.txt", ["bad\nitem"])

    def test_iter_stream_text(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_stream_text(path, [1, 2, 3])
        assert list(iter_stream_text(path, as_int=True)) == [1, 2, 3]

    def test_text_rejects_carriage_returns(self, tmp_path):
        with pytest.raises(ValueError):
            write_stream_text(tmp_path / "x.txt", ["bad\ritem"])

    def test_crlf_and_lf_files_read_identically(self, tmp_path):
        """A CRLF rewrite of a stream file must yield the same items —
        trailing ``\\r`` would encode (and hash) differently, silently
        splitting one item's counts in two."""
        items = ["alpha", "beta", "alpha", "42"]
        lf = tmp_path / "lf.txt"
        crlf = tmp_path / "crlf.txt"
        lf.write_bytes(("\n".join(items) + "\n").encode())
        crlf.write_bytes(("\r\n".join(items) + "\r\n").encode())
        assert read_stream_text(crlf) == items
        assert read_stream_text(crlf) == read_stream_text(lf)
        assert list(iter_stream_text(crlf)) == items
        from repro.streams.io import TextStreamReader

        assert list(TextStreamReader(crlf)) == items

    def test_crlf_int_keys(self, tmp_path):
        path = tmp_path / "crlf.txt"
        path.write_bytes(b"5\r\n3\r\n5\r\n")
        assert read_stream_text(path, as_int=True) == [5, 3, 5]
        assert list(iter_stream_text(path, as_int=True)) == [5, 3, 5]

    def test_crlf_file_without_trailing_newline(self, tmp_path):
        path = tmp_path / "crlf.txt"
        path.write_bytes(b"a\r\nb")
        assert read_stream_text(path) == ["a", "b"]

    def test_jsonl_roundtrip_tuples(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        items = [("10.0.0.1", "10.0.0.2", 80, 443, "tcp"), ("a", 1, "b")]
        write_stream_jsonl(path, items)
        assert read_stream_jsonl(path) == items

    def test_jsonl_roundtrip_mixed(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        items = ["query", 42, 3.5, ("nested", ("pair", 1))]
        write_stream_jsonl(path, items)
        assert read_stream_jsonl(path) == items

    def test_jsonl_rejects_unserializable(self, tmp_path):
        with pytest.raises(TypeError):
            write_stream_jsonl(tmp_path / "x.jsonl", [{"a": 1}])

    def test_flow_roundtrip_preserves_hashing(self, tmp_path):
        """Persisted flows must encode identically after a round-trip."""
        from repro.hashing.encode import encode_key

        generator = FlowStreamGenerator(num_flows=5, seed=4)
        items = list(generator.generate(20))
        path = tmp_path / "flows.jsonl"
        write_stream_jsonl(path, items)
        revived = read_stream_jsonl(path)
        for original, loaded in zip(items, revived, strict=True):
            assert encode_key(tuple(original)) == encode_key(loaded)
