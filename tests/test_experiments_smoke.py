"""Smoke tests: every experiment runs at a reduced configuration and its
key qualitative claims hold.

These are integration tests of the full experiment pipeline (generators →
algorithms → metrics → report); the benchmark suite runs the same modules
at the paper-scale defaults.
"""


import pytest

from repro.experiments import (
    ablation_estimator,
    ablation_heap_counts,
    ablation_sign_hash,
    approxtop_quality,
    error_vs_b,
    failure_vs_t,
    maxchange_experiment,
    sampling_space,
    space_accounting,
    table1,
    throughput,
    zipf_space_scaling,
)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        config = table1.Table1Config(
            m=2_000, n=20_000, zs=(0.5, 1.0, 1.5),
            sketch_seeds=(0, 1), max_width=1 << 14,
        )
        return table1.run(config), config

    def test_rows_complete(self, result):
        rows, config = result
        assert len(rows) == 3
        for row in rows:
            assert row.sampling_space > 0
            assert row.kps_space > 0
            assert row.count_sketch_width is not None

    def test_baselines_succeed(self, result):
        rows, __ = result
        for row in rows:
            assert row.kps_ok
            assert row.sampling_ok

    def test_space_shrinks_with_skew(self, result):
        """All three algorithms need less space as skew grows — the
        qualitative across-rows trend of Table 1."""
        rows, __ = result
        assert rows[0].sampling_space > rows[-1].sampling_space
        assert rows[0].kps_space > rows[-1].kps_space
        assert rows[0].count_sketch_space > rows[-1].count_sketch_space

    def test_report_renders(self, result):
        rows, config = result
        text = table1.format_report(rows, config)
        assert "Table 1" in text
        assert "Shape check" in text


class TestErrorVsB:
    @pytest.fixture(scope="class")
    def result(self):
        config = error_vs_b.ErrorVsBConfig(
            m=2_000, n=20_000, zs=(0.5, 1.0),
            widths=(16, 64, 256), sketch_seeds=(0, 1),
            query_tail_samples=50,
        )
        return error_vs_b.run(config), config

    def test_lemma4_bound_holds(self, result):
        rows, __ = result
        # Lemma 4 is a w.h.p. statement and the reduced config runs at
        # t=5 (not the full Θ(log n/δ)); rare single-estimate busts are
        # expected, so assert the failure *rate*, not the worst case.
        for row in rows:
            assert row.within_bound_fraction >= 0.98

    def test_error_decreases_with_width(self, result):
        rows, config = result
        for z in config.zs:
            series = [r.mean_abs_error for r in rows if r.z == z]
            assert series == sorted(series, reverse=True)

    def test_exponent_at_least_guarantee(self, result):
        rows, config = result
        for z in config.zs:
            exponent = error_vs_b.fitted_exponent(rows, z)
            assert exponent <= -0.35  # decays at least ~sqrt-fast

    def test_report_renders(self, result):
        rows, config = result
        assert "Lemma 4" in error_vs_b.format_report(rows, config)


class TestFailureVsT:
    @pytest.fixture(scope="class")
    def result(self):
        config = failure_vs_t.FailureVsTConfig(
            m=1_000, n=10_000, depths=(1, 3, 7),
            sketch_seeds=tuple(range(15)), query_ranks=100,
        )
        return failure_vs_t.run(config), config

    def test_failure_decays(self, result):
        rows, __ = result
        assert failure_vs_t.decay_is_exponential(rows)

    def test_8g_failures_rare(self, result):
        rows, __ = result
        assert rows[-1].fail_rate_8g <= 0.01

    def test_report_renders(self, result):
        rows, config = result
        assert "Lemma 3" in failure_vs_t.format_report(rows, config)


class TestApproxTop:
    @pytest.fixture(scope="class")
    def result(self):
        config = approxtop_quality.ApproxTopConfig(
            m=1_000, n=10_000, k=10, zs=(1.0,), epsilons=(0.5,),
            sketch_seeds=(0, 1), width_fractions=(1, 16),
        )
        return approxtop_quality.run(config), config

    def test_lemma5_width_guarantees_hold(self, result):
        rows, __ = result
        assert approxtop_quality.lemma5_rows_all_pass(rows)

    def test_rows_shape(self, result):
        rows, config = result
        assert len(rows) == len(config.zs) * len(config.epsilons) * len(
            config.width_fractions
        )

    def test_report_renders(self, result):
        rows, config = result
        assert "APPROXTOP" in approxtop_quality.format_report(rows, config)


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        config = zipf_space_scaling.ScalingConfig(
            n=20_000, case12_ms=(1_000, 4_000), case3_ks=(5, 20),
            case3_m=2_000, sketch_seeds=(0, 1), max_width=1 << 14,
        )
        return zipf_space_scaling.run(config), config

    def test_case3_linear_in_k(self, result):
        outcome, __ = result
        assert 0.6 <= outcome.case3_slope <= 1.4

    def test_case2_nearly_flat(self, result):
        outcome, __ = result
        assert abs(outcome.case2_slope) <= 0.5

    def test_all_points_measured(self, result):
        outcome, __ = result
        assert all(p.required_width is not None for p in outcome.points)

    def test_report_renders(self, result):
        outcome, config = result
        text = zipf_space_scaling.format_report(outcome, config)
        assert "case 3" in text


class TestSamplingSpace:
    @pytest.fixture(scope="class")
    def result(self):
        config = sampling_space.SamplingSpaceConfig(
            m=2_000, n=20_000, zs=(0.5, 1.0, 1.5), sampler_seeds=(0, 1)
        )
        return sampling_space.run(config), config

    def test_measurement_matches_exact_prediction(self, result):
        rows, __ = result
        for row in rows:
            assert 0.8 <= row.measured_over_exact <= 1.2

    def test_distinct_decreases_with_skew(self, result):
        rows, __ = result
        measured = [row.measured_distinct for row in rows]
        assert measured == sorted(measured, reverse=True)

    def test_report_renders(self, result):
        rows, config = result
        assert "SAMPLING" in sampling_space.format_report(rows, config)


class TestMaxChange:
    @pytest.fixture(scope="class")
    def result(self):
        config = maxchange_experiment.MaxChangeConfig(
            m=1_000, n=20_000, widths=(64, 512), sketch_seeds=(0, 1)
        )
        return maxchange_experiment.run(config), config

    def test_wide_sketch_has_high_recall(self, result):
        outcome, __ = result
        assert outcome.rows[-1].recall >= 0.8

    def test_recall_nondecreasing_in_width(self, result):
        outcome, __ = result
        assert outcome.rows[-1].recall >= outcome.rows[0].recall - 0.11

    def test_report_renders(self, result):
        outcome, config = result
        text = maxchange_experiment.format_report(outcome, config)
        assert "max-change" in text
        assert "baseline" in text


class TestSpaceAccounting:
    @pytest.fixture(scope="class")
    def result(self):
        config = space_accounting.SpaceAccountingConfig(
            m=2_000, n=20_000, width=128
        )
        return space_accounting.run(config), config

    def test_sketch_wins_for_large_objects(self, result):
        outcome, __ = result
        assert outcome.rows[-1].ratio > 1.0

    def test_ratio_grows_with_object_size(self, result):
        outcome, __ = result
        ratios = [row.ratio for row in outcome.rows]
        assert ratios == sorted(ratios)

    def test_sketch_stores_few_objects(self, result):
        outcome, __ = result
        assert outcome.cs_objects <= 2 * 10
        assert outcome.sampling_objects > outcome.cs_objects

    def test_report_renders(self, result):
        outcome, config = result
        assert "§5" in space_accounting.format_report(outcome, config)


class TestAblations:
    def test_median_beats_mean_under_heavy_hitters(self):
        config = ablation_estimator.EstimatorAblationConfig(
            m=1_000, n=10_000, sketch_seeds=tuple(range(4))
        )
        rows = ablation_estimator.run(config)
        by = {row.combiner: row for row in rows}
        assert by["median"].mean_abs_error < by["mean"].mean_abs_error
        assert by["median"].p95_abs_error < by["mean"].p95_abs_error
        assert "median" in ablation_estimator.format_report(rows, config)

    def test_count_sketch_unbiased_count_min_biased(self):
        config = ablation_sign_hash.SignAblationConfig(
            m=2_000, n=20_000, sketch_seeds=(0, 1), query_ranks=200
        )
        rows = ablation_sign_hash.run(config)
        cs, cm = rows
        assert abs(cs.bias) < cm.bias  # CM strictly overestimates
        assert cm.bias > 0
        assert "sign-hash" in ablation_sign_hash.format_report(rows, config)

    def test_exact_heap_counts_sharper(self):
        config = ablation_heap_counts.HeapAblationConfig(
            m=1_000, n=10_000, sketch_seeds=(0, 1)
        )
        rows = ablation_heap_counts.run(config)
        exact, reestimate = rows
        assert exact.mean_relative_count_error <= (
            reestimate.mean_relative_count_error + 1e-9
        )
        assert "heap" in ablation_heap_counts.format_report(rows, config)


class TestThroughput:
    def test_all_algorithms_report(self):
        config = throughput.ThroughputConfig(m=500, n=5_000)
        rows = throughput.run(config)
        names = {row.algorithm for row in rows}
        assert "CountSketch" in names
        assert "SpaceSaving" in names
        assert all(row.items_per_second > 0 for row in rows)
        assert "throughput" in throughput.format_report(rows, config)
