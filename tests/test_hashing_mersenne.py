"""Tests for repro.hashing.mersenne — polynomial hashing over 2**61-1."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.mersenne import MERSENNE_PRIME_61, KWiseFamily, PolynomialHash

P = MERSENNE_PRIME_61


class TestMersennePrime:
    def test_value(self):
        assert P == 2**61 - 1

    def test_is_prime_by_trial_witnesses(self):
        # Fermat witnesses (sufficient sanity check; 2**61-1 is a known
        # Mersenne prime).
        for a in (2, 3, 5, 7, 11):
            assert pow(a, P - 1, P) == 1


class TestPolynomialHash:
    def test_constant_polynomial(self):
        h = PolynomialHash((7,))
        assert h(0) == 7
        assert h(123456) == 7
        assert h.degree == 0

    def test_linear_polynomial_matches_formula(self):
        a, b = 3, 5
        h = PolynomialHash((b, a))
        for x in (0, 1, 2, 10**9, P - 1, P, P + 1):
            assert h(x) == (a * (x % P) + b) % P

    def test_quadratic_polynomial_matches_formula(self):
        c0, c1, c2 = 11, 7, 3
        h = PolynomialHash((c0, c1, c2))
        for x in (0, 1, 5, 1_000_003):
            assert h(x) == (c2 * x * x + c1 * x + c0) % P

    def test_range_size_is_p(self):
        assert PolynomialHash((1, 2)).range_size == P

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            PolynomialHash(())

    def test_out_of_field_coefficient_rejected(self):
        with pytest.raises(ValueError):
            PolynomialHash((P,))
        with pytest.raises(ValueError):
            PolynomialHash((-1,))

    def test_zero_leading_coefficient_rejected(self):
        with pytest.raises(ValueError, match="leading"):
            PolynomialHash((5, 0))

    def test_equality_and_hash(self):
        a = PolynomialHash((1, 2))
        b = PolynomialHash((1, 2))
        c = PolynomialHash((1, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    @given(st.integers(min_value=0))
    def test_output_in_range(self, key):
        h = PolynomialHash((12345, 67890))
        assert 0 <= h(key) < P

    def test_key_folding_mod_p(self):
        h = PolynomialHash((9, 4))
        assert h(P + 3) == h(3)


class TestKWiseFamily:
    def test_draw_count(self):
        family = KWiseFamily(independence=2, seed=0)
        assert len(family.draw(5)) == 5

    def test_draw_zero(self):
        assert KWiseFamily(seed=0).draw(0) == []

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            KWiseFamily(seed=0).draw(-1)

    def test_independence_below_one_rejected(self):
        with pytest.raises(ValueError):
            KWiseFamily(independence=0)

    def test_deterministic_given_seed(self):
        a = KWiseFamily(independence=2, seed=7).draw(3)
        b = KWiseFamily(independence=2, seed=7).draw(3)
        assert a == b

    def test_different_seeds_differ(self):
        a = KWiseFamily(independence=2, seed=7).draw(1)[0]
        b = KWiseFamily(independence=2, seed=8).draw(1)[0]
        assert a != b

    def test_salt_separates_streams(self):
        a = KWiseFamily(independence=2, seed=7, salt="x").draw(1)[0]
        b = KWiseFamily(independence=2, seed=7, salt="y").draw(1)[0]
        assert a != b

    def test_sequential_draws_match_bulk_draw(self):
        bulk = KWiseFamily(independence=2, seed=3).draw(4)
        family = KWiseFamily(independence=2, seed=3)
        sequential = family.draw(2) + family.draw(2)
        assert bulk == sequential

    def test_degree_matches_independence(self):
        for k in (1, 2, 4):
            h = KWiseFamily(independence=k, seed=1).draw(1)[0]
            assert h.degree == k - 1

    def test_drawn_functions_are_distinct(self):
        functions = KWiseFamily(independence=2, seed=5).draw(10)
        assert len(set(functions)) == 10

    def test_pairwise_independence_statistics(self):
        """Empirical check: values at two points look jointly uniform.

        For a 2-wise family, P[h(x) mod 2 == h(y) mod 2] should be ~1/2
        over random functions.
        """
        family = KWiseFamily(independence=2, seed=11)
        functions = family.draw(2000)
        x, y = 12345, 67890
        agree = sum(1 for h in functions if (h(x) & 1) == (h(y) & 1))
        assert abs(agree / 2000 - 0.5) < 0.05

    def test_uniformity_of_single_point(self):
        """h(x) mod 16 should be near-uniform over drawn functions."""
        functions = KWiseFamily(independence=2, seed=13).draw(3200)
        buckets = [0] * 16
        for h in functions:
            buckets[h(999) % 16] += 1
        expected = 3200 / 16
        for count in buckets:
            assert abs(count - expected) < 5 * expected**0.5
