"""Tests for repro.core.heap — the indexed min-heap."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.heap import IndexedMinHeap


def make_heap(pairs):
    heap = IndexedMinHeap()
    for item, priority in pairs:
        heap.push(item, priority)
    return heap


class TestBasics:
    def test_empty(self):
        heap = IndexedMinHeap()
        assert len(heap) == 0
        assert "x" not in heap

    def test_push_and_min(self):
        heap = make_heap([("a", 3), ("b", 1), ("c", 2)])
        assert heap.min() == ("b", 1)
        assert len(heap) == 3

    def test_contains(self):
        heap = make_heap([("a", 1)])
        assert "a" in heap
        assert "b" not in heap

    def test_priority_lookup(self):
        heap = make_heap([("a", 5), ("b", 2)])
        assert heap.priority("a") == 5
        assert heap.priority("b") == 2

    def test_priority_missing_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().priority("nope")

    def test_min_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().min()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop_min()

    def test_duplicate_push_rejected(self):
        heap = make_heap([("a", 1)])
        with pytest.raises(ValueError):
            heap.push("a", 2)

    def test_iteration_yields_all_pairs(self):
        pairs = [("a", 3), ("b", 1), ("c", 2)]
        heap = make_heap(pairs)
        assert sorted(heap) == sorted(pairs)


class TestPopAndRemove:
    def test_pop_min_order(self):
        heap = make_heap([("a", 3), ("b", 1), ("c", 2), ("d", 5), ("e", 4)])
        popped = [heap.pop_min() for _ in range(5)]
        assert popped == [("b", 1), ("c", 2), ("a", 3), ("e", 4), ("d", 5)]
        assert len(heap) == 0

    def test_remove_middle(self):
        heap = make_heap([("a", 3), ("b", 1), ("c", 2)])
        assert heap.remove("c") == 2
        assert "c" not in heap
        assert heap.pop_min() == ("b", 1)
        assert heap.pop_min() == ("a", 3)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            make_heap([("a", 1)]).remove("b")

    def test_remove_last_element(self):
        heap = make_heap([("a", 1)])
        heap.remove("a")
        assert len(heap) == 0


class TestUpdate:
    def test_increase_priority(self):
        heap = make_heap([("a", 1), ("b", 2)])
        heap.update("a", 10)
        assert heap.min() == ("b", 2)
        assert heap.priority("a") == 10

    def test_decrease_priority(self):
        heap = make_heap([("a", 5), ("b", 2)])
        heap.update("a", 1)
        assert heap.min() == ("a", 1)

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            make_heap([("a", 1)]).update("b", 2)

    def test_add_to(self):
        heap = make_heap([("a", 1), ("b", 5)])
        assert heap.add_to("a", 3) == 4
        assert heap.priority("a") == 4

    def test_add_to_reorders(self):
        heap = make_heap([("a", 1), ("b", 2)])
        heap.add_to("a", 10)
        assert heap.min() == ("b", 2)


class TestSortedList:
    def test_descending_order(self):
        heap = make_heap([("a", 3), ("b", 1), ("c", 2)])
        assert heap.as_sorted_list() == [("a", 3), ("c", 2), ("b", 1)]

    def test_empty(self):
        assert IndexedMinHeap().as_sorted_list() == []


class TestStress:
    def test_random_operations_match_reference(self):
        """Fuzz the heap against a dict + min() reference model."""
        rng = random.Random(77)
        heap = IndexedMinHeap()
        model: dict[int, float] = {}
        for step in range(3000):
            op = rng.random()
            if op < 0.45 or not model:
                item = rng.randrange(500)
                if item not in model:
                    priority = rng.uniform(0, 100)
                    heap.push(item, priority)
                    model[item] = priority
            elif op < 0.65:
                item = rng.choice(list(model))
                priority = rng.uniform(0, 100)
                heap.update(item, priority)
                model[item] = priority
            elif op < 0.85:
                item, priority = heap.pop_min()
                assert priority == min(model.values())
                assert model.pop(item) == priority
            else:
                item = rng.choice(list(model))
                assert heap.remove(item) == model.pop(item)
            assert len(heap) == len(model)
        # Drain and confirm global order.
        drained = [heap.pop_min()[1] for _ in range(len(heap))]
        assert drained == sorted(drained)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000),
                    min_size=1, max_size=50))
    def test_heapsort_property(self, priorities):
        heap = IndexedMinHeap()
        for index, priority in enumerate(priorities):
            heap.push(index, priority)
        drained = [heap.pop_min()[1] for _ in range(len(priorities))]
        assert drained == sorted(priorities)
