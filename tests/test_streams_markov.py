"""Tests for the bursty (Markov) stream generator and tracker robustness
under temporal correlation."""

import numpy as np
import pytest

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import recall_at_k
from repro.core.topk import TopKTracker
from repro.streams.markov import BurstyZipfStreamGenerator
from repro.streams.zipf import ZipfStreamGenerator


class TestGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyZipfStreamGenerator(100, 1.0, repeat=1.0)
        with pytest.raises(ValueError):
            BurstyZipfStreamGenerator(100, 1.0, repeat=-0.1)
        with pytest.raises(ValueError):
            BurstyZipfStreamGenerator(100, 1.0).generate(-1)

    def test_zero_repeat_matches_iid_model(self):
        stream = BurstyZipfStreamGenerator(100, 1.0, repeat=0.0,
                                           seed=1).generate(5_000)
        # Rank-1 dominance as in the i.i.d. Zipf case.
        counts = stream.counts()
        assert counts[1] > counts[20]

    def test_items_in_range(self):
        stream = BurstyZipfStreamGenerator(50, 1.0, repeat=0.7,
                                           seed=2).generate(2_000)
        assert all(1 <= item <= 50 for item in stream)

    def test_deterministic(self):
        a = BurstyZipfStreamGenerator(50, 1.0, 0.5, seed=3).generate(500)
        b = BurstyZipfStreamGenerator(50, 1.0, 0.5, seed=3).generate(500)
        assert list(a) == list(b)

    def test_bursts_present(self):
        """High repeat produces long same-item runs."""
        stream = BurstyZipfStreamGenerator(1_000, 0.8, repeat=0.9,
                                           seed=4).generate(10_000)
        items = list(stream)
        runs = []
        current = 1
        for prev, nxt in zip(items, items[1:], strict=False):
            if nxt == prev:
                current += 1
            else:
                runs.append(current)
                current = 1
        runs.append(current)
        mean_run = sum(runs) / len(runs)
        expected = BurstyZipfStreamGenerator(
            1_000, 0.8, repeat=0.9
        ).expected_burst_length()
        assert mean_run > 0.5 * expected

    def test_stationary_frequencies_match_zipf(self):
        """Repetition rescales all rates equally: rank frequencies stay
        Zipfian (compare against the i.i.d. generator's top ranks)."""
        bursty = BurstyZipfStreamGenerator(200, 1.0, repeat=0.6,
                                           seed=5).generate(100_000)
        iid = ZipfStreamGenerator(200, 1.0, seed=5).generate(100_000)
        bursty_counts = bursty.counts()
        iid_counts = iid.counts()
        for rank in (1, 3, 10):
            ratio = bursty_counts[rank] / iid_counts[rank]
            assert 0.7 < ratio < 1.4

    def test_metadata(self):
        stream = BurstyZipfStreamGenerator(10, 1.0, 0.5, seed=6).generate(10)
        assert stream.params["dist"] == "bursty-zipf"
        assert "repeat=0.5" in stream.name


class TestTrackerUnderBursts:
    def test_tracker_recall_robust_to_bursts(self):
        """The §3.2 tracker's heap decisions depend on order; bursty
        arrival must not break top-k recovery."""
        generator = BurstyZipfStreamGenerator(1_000, 1.0, repeat=0.8, seed=7)
        stream = generator.generate(50_000)
        stats = StreamStatistics(counts=stream.counts())
        tracker = TopKTracker(10, depth=5, width=512, seed=1)
        for item in stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, stats.top_k_items(10)) >= 0.9

    def test_sketch_identical_for_shuffled_bursty_stream(self):
        """Order-blindness: sketching the bursty stream and its shuffle
        yields identical counters."""
        from repro.core.countsketch import CountSketch

        stream = BurstyZipfStreamGenerator(200, 1.0, 0.7, seed=8).generate(
            5_000
        )
        items = list(stream)
        rng = np.random.default_rng(9)
        shuffled = [items[i] for i in rng.permutation(len(items))]
        a = CountSketch(3, 64, seed=10)
        a.extend(items)
        b = CountSketch(3, 64, seed=10)
        b.extend(shuffled)
        assert a == b
