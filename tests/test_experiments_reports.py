"""Unit tests for the experiment reporting layer (no workloads run).

Each experiment's ``format_report`` and analysis helpers are exercised on
handcrafted rows so rendering bugs surface without paying for a full
experiment — the smoke tests cover the pipelines; these cover the
report/aggregation functions in isolation.
"""

import math

import pytest

from repro.experiments import (
    ablation_estimator,
    ablation_hash_family,
    ablation_heap_counts,
    ablation_sign_hash,
    approxtop_quality,
    autoconfig,
    error_vs_b,
    failure_vs_t,
    hierarchical_maxchange,
    maxchange_experiment,
    sampling_space,
    space_accounting,
    table1,
    throughput,
    zipf_space_scaling,
)


class TestTable1Report:
    def make_row(self, z, sampling=100, kps=50, width=64):
        return table1.Table1Row(
            z=z,
            sampling_space=sampling,
            sampling_candidates=sampling,
            kps_space=kps,
            count_sketch_width=width,
            count_sketch_space=5 * width + 20,
            sampling_order=float(sampling),
            kps_order=float(kps),
            count_sketch_order=float(width),
            sampling_ok=True,
            kps_ok=True,
        )

    def test_shape_ratios_flat_when_measured_equals_order(self):
        rows = [self.make_row(z) for z in (0.5, 1.0)]
        ratios = table1.shape_ratios(rows)
        for __, sampling, kps, sketch in ratios:
            assert sampling == pytest.approx(1.0)
            assert kps == pytest.approx(1.0)
            assert sketch == pytest.approx(1.0)

    def test_shape_ratios_handle_missing_width(self):
        row = table1.Table1Row(
            z=0.5, sampling_space=10, sampling_candidates=10, kps_space=5,
            count_sketch_width=None, count_sketch_space=None,
            sampling_order=10.0, kps_order=5.0, count_sketch_order=1.0,
            sampling_ok=True, kps_ok=True,
        )
        ratios = table1.shape_ratios([row])
        assert math.isnan(ratios[0][3])

    def test_format_report_renders_dash_for_missing(self):
        row = self.make_row(0.5)
        missing = table1.Table1Row(
            **{**row.__dict__, "count_sketch_width": None,
               "count_sketch_space": None}
        )
        text = table1.format_report([missing], table1.Table1Config())
        assert " - " in text or "- |" in text or "| -" in text


class TestErrorVsBReport:
    def make_rows(self):
        return [
            error_vs_b.ErrorVsBRow(
                z=0.5, width=w, gamma=100 / w**0.5, bound=800 / w**0.5,
                mean_abs_error=50 / w**0.5, max_abs_error=200 / w**0.5,
                within_bound_fraction=1.0,
            )
            for w in (16, 64, 256)
        ]

    def test_fitted_exponent_exact_half(self):
        rows = self.make_rows()
        assert error_vs_b.fitted_exponent(rows, 0.5) == pytest.approx(-0.5)

    def test_fitted_exponent_skips_zero_errors(self):
        rows = self.make_rows()
        rows.append(
            error_vs_b.ErrorVsBRow(
                z=0.5, width=1024, gamma=1.0, bound=8.0,
                mean_abs_error=0.0, max_abs_error=0.0,
                within_bound_fraction=1.0,
            )
        )
        assert error_vs_b.fitted_exponent(rows, 0.5) == pytest.approx(-0.5)

    def test_report_mentions_guarantee(self):
        config = error_vs_b.ErrorVsBConfig(zs=(0.5,))
        text = error_vs_b.format_report(self.make_rows(), config)
        assert "Lemma 4" in text
        assert "-0.5" in text


class TestFailureVsTHelpers:
    def make_row(self, depth, r1, r2=0.0, r8=0.0):
        return failure_vs_t.FailureVsTRow(
            depth=depth, trials=1000, fail_rate_1g=r1, fail_rate_2g=r2,
            fail_rate_8g=r8,
        )

    def test_decay_detected(self):
        rows = [self.make_row(1, 0.4), self.make_row(3, 0.1),
                self.make_row(7, 0.01)]
        assert failure_vs_t.decay_is_exponential(rows)

    def test_non_monotone_rejected(self):
        rows = [self.make_row(1, 0.1), self.make_row(3, 0.4)]
        assert not failure_vs_t.decay_is_exponential(rows)

    def test_insufficient_drop_rejected(self):
        rows = [self.make_row(1, 0.4), self.make_row(7, 0.35)]
        assert not failure_vs_t.decay_is_exponential(rows)

    def test_all_zero_accepted(self):
        rows = [self.make_row(1, 0.0), self.make_row(3, 0.0)]
        assert failure_vs_t.decay_is_exponential(rows)


class TestApproxTopHelpers:
    def make_row(self, fraction, weak=1.0, strong=1.0):
        return approxtop_quality.ApproxTopRow(
            z=1.0, epsilon=0.5, width_fraction=fraction, depth=7,
            width=1024, weak_rate=weak, strong_rate=strong,
        )

    def test_all_pass(self):
        rows = [self.make_row(1), self.make_row(16, weak=0.5, strong=0.5)]
        # Only fraction-1 rows gate the lemma check.
        assert approxtop_quality.lemma5_rows_all_pass(rows)

    def test_failure_detected(self):
        rows = [self.make_row(1, weak=0.9)]
        assert not approxtop_quality.lemma5_rows_all_pass(rows)

    def test_report(self):
        text = approxtop_quality.format_report(
            [self.make_row(1)], approxtop_quality.ApproxTopConfig()
        )
        assert "APPROXTOP" in text


class TestScalingReport:
    def test_report_includes_slopes(self):
        result = zipf_space_scaling.ScalingResult(
            points=[
                zipf_space_scaling.ScalingPoint("case1", "m", 1000, 100),
                zipf_space_scaling.ScalingPoint("case1", "m", 2000, 132),
            ],
            case1_slope=0.4,
            case2_slope=0.0,
            case3_slope=1.0,
        )
        text = zipf_space_scaling.format_report(
            result, zipf_space_scaling.ScalingConfig()
        )
        assert "0.400" in text
        assert "case 3" in text

    def test_report_renders_missing_width(self):
        result = zipf_space_scaling.ScalingResult(
            points=[zipf_space_scaling.ScalingPoint("case1", "m", 1000, None)],
            case1_slope=float("nan"),
            case2_slope=0.0,
            case3_slope=1.0,
        )
        text = zipf_space_scaling.format_report(
            result, zipf_space_scaling.ScalingConfig()
        )
        assert "-" in text


class TestOtherReportsRender:
    """Every remaining report renders its handcrafted rows."""

    def test_sampling_space(self):
        rows = [sampling_space.SamplingSpaceRow(1.0, 300.0, 310.0, 400.0,
                                                0.97)]
        text = sampling_space.format_report(
            rows, sampling_space.SamplingSpaceConfig()
        )
        assert "SAMPLING" in text

    def test_maxchange(self):
        result = maxchange_experiment.MaxChangeResult(
            rows=[maxchange_experiment.MaxChangeRow(64, 400, 0.9, 0.9, 12.0)],
            baseline_recall=0.8,
            baseline_counters=400,
            baseline_change_error=100.0,
        )
        text = maxchange_experiment.format_report(
            result, maxchange_experiment.MaxChangeConfig()
        )
        assert "baseline" in text
        assert "100.0" in text

    def test_space_accounting(self):
        result = space_accounting.SpaceAccountingResult(
            rows=[space_accounting.SpaceAccountingRow(32, 1000, 500, 0.5)],
            cs_counters=100, cs_objects=10,
            sampling_counters=50, sampling_objects=50,
        )
        text = space_accounting.format_report(
            result, space_accounting.SpaceAccountingConfig()
        )
        assert "COUNT SKETCH" in text

    def test_ablation_estimator(self):
        rows = [
            ablation_estimator.EstimatorAblationRow("median", 1.0, 2.0, 3.0),
            ablation_estimator.EstimatorAblationRow("mean", 5.0, 9.0, 20.0),
        ]
        text = ablation_estimator.format_report(
            rows, ablation_estimator.EstimatorAblationConfig()
        )
        assert "median" in text

    def test_ablation_sign(self):
        rows = [
            ablation_sign_hash.SignAblationRow("CountSketch", 0.1, 5.0, 50.0),
            ablation_sign_hash.SignAblationRow("CountMin", 30.0, 30.0, 60.0),
        ]
        text = ablation_sign_hash.format_report(
            rows, ablation_sign_hash.SignAblationConfig()
        )
        assert "bias" in text

    def test_ablation_heap(self):
        rows = [
            ablation_heap_counts.HeapAblationRow("exact heap counts", 0.95,
                                                 0.01),
            ablation_heap_counts.HeapAblationRow("re-estimate", 0.9, 0.05),
        ]
        text = ablation_heap_counts.format_report(
            rows, ablation_heap_counts.HeapAblationConfig()
        )
        assert "heap" in text

    def test_ablation_hash_family(self):
        rows = [
            ablation_hash_family.HashFamilyRow("polynomial", 20.0, 50.0,
                                               1e5),
        ]
        text = ablation_hash_family.format_report(
            rows, ablation_hash_family.HashFamilyAblationConfig()
        )
        assert "polynomial" in text

    def test_throughput(self):
        rows = [throughput.ThroughputRow("CountSketch", 1e5, 1280)]
        text = throughput.format_report(rows, throughput.ThroughputConfig())
        assert "CountSketch" in text

    def test_hierarchical_maxchange(self):
        rows = [
            hierarchical_maxchange.MethodRow("two-pass", 2, 100, 1.0, 3.0),
            hierarchical_maxchange.MethodRow("one-pass", 1, 1000, 1.0, 3.1),
        ]
        text = hierarchical_maxchange.format_report(
            rows, 500.0, hierarchical_maxchange.HierarchicalMaxChangeConfig()
        )
        assert "threshold" in text

    def test_autoconfig(self):
        rows = [
            autoconfig.AutoConfigRow(1.0, 0.95, 1000, 900, 1.11, 1.0, 1.0),
        ]
        text = autoconfig.format_report(rows, autoconfig.AutoConfigConfig())
        assert "auto-configuration" in text



class TestRunAllSequence:
    def test_sequence_modules_importable(self):
        import importlib

        from repro.experiments import run_all

        for __, module_name in run_all.EXPERIMENT_SEQUENCE:
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            assert callable(module.main)

    def test_sequence_covers_every_experiment_module(self):
        """Every experiment module (anything with a main()) is in the
        run_all sequence."""
        import pkgutil

        import repro.experiments as package
        from repro.experiments import run_all

        sequenced = {name for __, name in run_all.EXPERIMENT_SEQUENCE}
        skipped = {"harness", "report", "run_all"}
        on_disk = {
            info.name
            for info in pkgutil.iter_modules(package.__path__)
            if info.name not in skipped
        }
        assert on_disk == sequenced
