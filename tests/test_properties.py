"""Cross-cutting property-based tests (hypothesis) on the paper's core
invariants: sketch linearity, estimate consistency, guarantee preservation
under arbitrary input streams, and the theoretical inequalities.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ground_truth import StreamStatistics
from repro.baselines.kps import KPSFrequent
from repro.baselines.space_saving import SpaceSaving
from repro.core.countsketch import CountSketch
from repro.core.maxchange import MaxChangeFinder
from repro.core.params import gamma, width_for_approxtop
from repro.core.topk import TopKTracker
from repro.core.windowed import JumpingWindowSketch

ITEMS = st.one_of(
    st.integers(min_value=0, max_value=50),
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
)
STREAMS = st.lists(ITEMS, max_size=120)


class TestSketchAlgebra:
    @settings(max_examples=30, deadline=None)
    @given(STREAMS, STREAMS)
    def test_update_order_irrelevant(self, items1, items2):
        """The sketch is a function of the frequency vector only."""
        a = CountSketch(3, 16, seed=1)
        b = CountSketch(3, 16, seed=1)
        a.extend(items1 + items2)
        b.extend(items2 + items1)
        assert a == b

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_weighted_equals_repeated(self, items):
        counts = Counter(items)
        weighted = CountSketch(3, 16, seed=2)
        weighted.update_counts(counts)
        repeated = CountSketch(3, 16, seed=2)
        repeated.extend(items)
        assert weighted == repeated

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_removal_inverts_insertion(self, items):
        sketch = CountSketch(3, 16, seed=3)
        sketch.extend(items)
        for item, count in Counter(items).items():
            sketch.update(item, -count)
        assert not sketch.counters.any()

    @settings(max_examples=30, deadline=None)
    @given(STREAMS, st.integers(min_value=-3, max_value=3))
    def test_scale_matches_repeated_addition(self, items, factor):
        base = CountSketch(3, 16, seed=4)
        base.extend(items)
        scaled = base.scale(factor)
        manual = CountSketch(3, 16, seed=4)
        for item, count in Counter(items).items():
            manual.update(item, count * factor)
        assert scaled == manual

    @settings(max_examples=20, deadline=None)
    @given(STREAMS)
    def test_serialization_roundtrip(self, items):
        sketch = CountSketch(2, 8, seed=5)
        sketch.extend(items)
        assert CountSketch.from_state_dict(sketch.state_dict()) == sketch


class TestEstimateConsistency:
    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_estimate_bounded_by_stream_weight(self, items):
        """|estimate| can never exceed the total stream weight (each row's
        counter magnitude is at most n)."""
        sketch = CountSketch(3, 16, seed=6)
        sketch.extend(items)
        for item in set(items):
            assert abs(sketch.estimate(item)) <= len(items)

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_exact_when_sketch_wide(self, items):
        """With width >> distinct items, estimates are exact w.h.p.; with
        a fixed seed this is deterministic, so check exactly."""
        sketch = CountSketch(7, 4096, seed=7)
        counts = Counter(items)
        sketch.update_counts(counts)
        for item, count in counts.items():
            assert sketch.estimate(item) == count

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_median_within_row_estimates(self, items):
        sketch = CountSketch(5, 8, seed=8)
        sketch.extend(items)
        for item in list(set(items))[:5]:
            rows = sketch.row_estimates(item)
            assert min(rows) <= sketch.estimate(item) <= max(rows)


class TestTrackerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(STREAMS, st.integers(min_value=1, max_value=8))
    def test_heap_size_bounded(self, items, k):
        tracker = TopKTracker(k, depth=3, width=32, seed=9)
        for item in items:
            tracker.update(item)
        assert tracker.items_stored() <= k
        assert len(tracker.top()) <= k

    @settings(max_examples=30, deadline=None)
    @given(STREAMS, st.integers(min_value=1, max_value=8))
    def test_top_sorted_descending(self, items, k):
        tracker = TopKTracker(k, depth=3, width=32, seed=10)
        for item in items:
            tracker.update(item)
        counts = [count for __, count in tracker.top()]
        assert counts == sorted(counts, reverse=True)

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_heap_counts_never_exceed_truth_after_entry(self, items):
        """A heap member's tracked count is (estimate at entry) + exact
        increments; with a wide sketch the entry estimate is exact, so the
        tracked count equals the true count."""
        tracker = TopKTracker(4, depth=5, width=4096, seed=11)
        counts = Counter(items)
        for item in items:
            tracker.update(item)
        for item, tracked in tracker.top():
            assert tracked == counts[item]


class TestWindowedWeightedUpdates:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(ITEMS, st.integers(min_value=1, max_value=50)),
            max_size=20,
        ),
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=1, max_value=4),
    )
    def test_weighted_update_matches_unit_updates(self, weighted, window,
                                                  buckets):
        """``update(item, count)`` must be indistinguishable from ``count``
        unit updates: same estimates, same covered span, same item total."""
        batched = JumpingWindowSketch(window, buckets=buckets, depth=3,
                                      width=32, seed=5)
        unit = JumpingWindowSketch(window, buckets=buckets, depth=3,
                                   width=32, seed=5)
        for item, count in weighted:
            batched.update(item, count)
            for __ in range(count):
                unit.update(item)
        assert batched.covered() == unit.covered()
        assert batched.items_seen == unit.items_seen
        for item in {item for item, __ in weighted}:
            assert batched.estimate(item) == unit.estimate(item)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(ITEMS, st.integers(min_value=1, max_value=500)),
            max_size=12,
        ),
        st.integers(min_value=4, max_value=40),
        st.integers(min_value=1, max_value=4),
    )
    def test_covered_never_exceeds_window(self, weighted, window, buckets):
        """The covered span stays ≤ W at every instant, even when a single
        weighted update spans many bucket rotations."""
        sketch = JumpingWindowSketch(window, buckets=buckets, depth=3,
                                     width=32, seed=6)
        for item, count in weighted:
            sketch.update(item, count)
            assert 0 <= sketch.covered() <= window


class TestBaselineGuaranteesUnderArbitraryStreams:
    @settings(max_examples=30, deadline=None)
    @given(STREAMS, st.integers(min_value=1, max_value=10))
    def test_kps_and_space_saving_bracket_truth(self, items, capacity):
        counts = Counter(items)
        kps = KPSFrequent(capacity)
        ss = SpaceSaving(capacity)
        for item in items:
            kps.update(item)
            ss.update(item)
        for item, count in counts.items():
            assert kps.estimate(item) <= count
            if item in ss:
                assert ss.estimate(item) >= count


class TestMaxChangeInvariants:
    @settings(max_examples=20, deadline=None)
    @given(STREAMS, STREAMS)
    def test_exact_counts_are_exact(self, before, after):
        """Every reported candidate's pass-2 counts match the true counts
        (the §4.2 'accurate exact counts' claim), for arbitrary streams."""
        finder = MaxChangeFinder(6, depth=3, width=64, seed=12)
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        before_counts = Counter(before)
        after_counts = Counter(after)
        for report in finder.report(6):
            assert report.count_before == before_counts[report.item]
            assert report.count_after == after_counts[report.item]

    @settings(max_examples=20, deadline=None)
    @given(STREAMS)
    def test_identical_streams_report_zero_changes(self, items):
        finder = MaxChangeFinder(6, depth=3, width=64, seed=13)
        finder.first_pass(items, items)
        finder.second_pass(items, items)
        for report in finder.report(6):
            assert report.change == 0


class TestTheoryInequalities:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=100),
        st.floats(min_value=0.05, max_value=1.0),
        st.floats(min_value=1, max_value=1e6),
        st.floats(min_value=0, max_value=1e12),
    )
    def test_lemma5_width_satisfies_its_own_condition(
        self, k, epsilon, nk, tail
    ):
        """The returned width always satisfies b >= 8k and
        16·γ(tail, b) <= ε·n_k — the two conditions Lemma 5's proof uses."""
        width = width_for_approxtop(k, epsilon, nk, tail)
        assert width >= 8 * k
        assert 16 * gamma(tail, width) <= epsilon * nk * (1 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                    max_size=50))
    def test_tail_moment_monotone_in_k(self, counts_list):
        stats = StreamStatistics(
            counts=Counter({i: c for i, c in enumerate(counts_list)})
        )
        values = [stats.tail_second_moment(k) for k in range(len(counts_list) + 1)]
        assert values == sorted(values, reverse=True)
        assert values[0] == stats.second_moment()
        assert values[-1] == 0.0
