"""Coordinator semantics: exact scatter-gather over in-process shards.

Every answer the cluster gives must be **bit-equal** to one offline
summary fed the same records (§3.2 linearity: per-row integer readouts
sum across shards, and one median finalizes them).  These are equality
asserts, not tolerance checks — including the degenerate zero/one/N
shard cases and shards that never saw a record.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.service.server import SketchServer
from repro.service.tables import TableSpec

LINEAR_KINDS = ["sketch", "vectorized", "topk"]


def spec_for(kind: str, name: str = "t", *, k: int = 8) -> TableSpec:
    return TableSpec(name, kind=kind, depth=4, width=128, seed=3, k=k)


def run(coro):
    return asyncio.run(coro)


def make_cluster(n_shards: int, specs):
    servers = [SketchServer(list(specs)) for _ in range(n_shards)]
    return servers, ClusterCoordinator.in_process(servers)


async def stop_all(servers):
    for server in servers:
        await server.stop()


def stream(n: int, distinct: int = 30, seed: int = 42) -> list[str]:
    rng = random.Random(seed)
    return [f"item-{rng.randrange(distinct)}" for _ in range(n)]


class TestConstruction:
    def test_zero_shards_refused(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ClusterCoordinator([])

    def test_n_shards_and_clients_in_routing_order(self):
        async def go():
            servers, cluster = make_cluster(3, [spec_for("sketch")])
            assert cluster.n_shards == 3
            assert len(cluster.clients) == 3
            pings = await cluster.ping()
            assert [p["ok"] for p in pings] == [True, True, True]
            await stop_all(servers)

        run(go())


class TestEstimateExactness:
    @pytest.mark.parametrize("kind", LINEAR_KINDS)
    @pytest.mark.parametrize("n_shards", [1, 2, 3])
    def test_bit_equal_to_offline_sketch(self, kind, n_shards):
        async def go():
            spec = spec_for(kind)
            servers, cluster = make_cluster(n_shards, [spec])
            offline = spec.build()
            items = stream(600)
            probes = sorted(set(items)) + ["never-seen"]
            await cluster.ingest_items(spec.name, items, wait=True)
            for item in items:
                offline.update(item, 1)
            sketch = getattr(offline, "sketch", offline)
            live = await cluster.estimate(spec.name, probes)
            assert live == [float(sketch.estimate(p)) for p in probes]
            await stop_all(servers)

        run(go())

    def test_weighted_and_negative_counts(self):
        async def go():
            spec = spec_for("sketch")
            servers, cluster = make_cluster(2, [spec])
            offline = spec.build()
            records = [("a", 5), ("b", 3), ("a", -2), ("c", 7), ("b", -3)]
            await cluster.ingest(spec.name, records, wait=True)
            for item, count in records:
                offline.update(item, count)
            live = await cluster.estimate(spec.name, ["a", "b", "c"])
            assert live == [float(offline.estimate(q))
                            for q in ("a", "b", "c")]
            await stop_all(servers)

        run(go())

    def test_never_updated_cluster_estimates_zero(self):
        async def go():
            spec = spec_for("vectorized")
            servers, cluster = make_cluster(3, [spec])
            assert await cluster.estimate(spec.name, ["x", "y"]) == [0.0,
                                                                     0.0]
            assert await cluster.estimate(spec.name, []) == []
            await stop_all(servers)

        run(go())

    def test_partially_empty_shards_are_exact(self):
        # One record: at most one shard holds data, the rest contribute
        # all-zero readouts.  The merged answer must not notice.
        async def go():
            spec = spec_for("sketch")
            servers, cluster = make_cluster(4, [spec])
            await cluster.ingest_items(spec.name, ["lonely"], wait=True)
            offline = spec.build()
            offline.update("lonely", 1)
            live = await cluster.estimate(spec.name, ["lonely", "ghost"])
            assert live == [float(offline.estimate("lonely")),
                            float(offline.estimate("ghost"))]
            await stop_all(servers)

        run(go())


class TestTopK:
    def test_union_rescore_bit_equal_to_offline_sketch(self):
        async def go():
            # k large enough that every shard tracks every distinct item:
            # the union is then the full key set, so the cluster ranking
            # must equal ranking every item by the offline sketch.
            spec = spec_for("topk", k=40)
            servers, cluster = make_cluster(3, [spec])
            items = stream(800, distinct=25)
            await cluster.ingest_items(spec.name, items, wait=True)
            offline = spec.build()
            for item in items:
                offline.update(item, 1)
            expected = sorted(
                ((q, float(offline.sketch.estimate(q)))
                 for q in set(items)),
                key=lambda pair: (-pair[1], repr(pair[0])),
            )
            live = await cluster.topk(spec.name, k=10)
            assert live == expected[:10]
            full = await cluster.topk(spec.name)  # defaults to spec's k
            assert full == expected[:40]
            await stop_all(servers)

        run(go())

    def test_empty_table_returns_empty(self):
        async def go():
            spec = spec_for("topk")
            servers, cluster = make_cluster(2, [spec])
            assert await cluster.topk(spec.name) == []
            await stop_all(servers)

        run(go())

    def test_k_must_be_positive(self):
        async def go():
            spec = spec_for("topk")
            servers, cluster = make_cluster(1, [spec])
            with pytest.raises(ValueError, match="at least 1"):
                await cluster.topk(spec.name, k=0)
            await stop_all(servers)

        run(go())


class TestMaxChange:
    def test_matches_offline_difference_sketch(self):
        async def go():
            before = spec_for("topk", name="day1", k=40)
            after = spec_for("topk", name="day2", k=40)
            servers, cluster = make_cluster(2, [before, after])
            day1 = stream(400, distinct=20, seed=1)
            day2 = stream(400, distinct=20, seed=2) + ["surge"] * 60
            await cluster.ingest_items("day1", day1, wait=True)
            await cluster.ingest_items("day2", day2, wait=True)

            off1, off2 = before.build(), after.build()
            for item in day1:
                off1.update(item, 1)
            for item in day2:
                off2.update(item, 1)
            candidates = sorted(set(day1) | set(day2))

            entries = await cluster.maxchange("day1", "day2", k=5,
                                              items=candidates)
            diff = off2.sketch - off1.sketch
            expected = sorted(
                ((q, float(diff.estimate(q))) for q in candidates),
                key=lambda pair: (-abs(pair[1]), repr(pair[0])),
            )[:5]
            assert [(e.item, e.estimated_change) for e in entries] \
                == expected
            assert entries[0].item == "surge"
            for entry in entries:
                assert entry.estimate_before == float(
                    off1.sketch.estimate(entry.item))
                assert entry.estimate_after == float(
                    off2.sketch.estimate(entry.item))
            await stop_all(servers)

        run(go())

    def test_candidates_default_to_both_tables_shard_topk_union(self):
        async def go():
            before = spec_for("topk", name="b", k=40)
            after = spec_for("topk", name="a", k=40)
            servers, cluster = make_cluster(2, [before, after])
            await cluster.ingest_items("b", ["x"] * 5, wait=True)
            await cluster.ingest_items("a", ["y"] * 9, wait=True)
            entries = await cluster.maxchange("b", "a", k=10)
            assert {e.item for e in entries} == {"x", "y"}
            await stop_all(servers)

        run(go())

    def test_mismatched_kinds_refused(self):
        async def go():
            servers, cluster = make_cluster(
                1, [spec_for("sketch", name="s"),
                    spec_for("vectorized", name="v")])
            with pytest.raises(ValueError, match="different kinds"):
                await cluster.maxchange("s", "v", items=["x"])
            await stop_all(servers)

        run(go())

    def test_empty_candidates_return_empty(self):
        async def go():
            servers, cluster = make_cluster(
                2, [spec_for("topk", name="b"), spec_for("topk", name="a")])
            assert await cluster.maxchange("b", "a") == []
            await stop_all(servers)

        run(go())


class TestAdministration:
    def test_create_table_everywhere_and_window_refused(self):
        async def go():
            servers, cluster = make_cluster(2, [spec_for("sketch")])
            created = await cluster.create_table(
                spec_for("vectorized", name="fresh"))
            assert created is True
            for server in servers:
                assert "fresh" in server.tables
            with pytest.raises(ValueError, match="window tables cannot"):
                await cluster.create_table(
                    TableSpec("w", kind="window", depth=4, width=64,
                              seed=1, k=4, window=32, buckets=4))
            await stop_all(servers)

        run(go())

    def test_drop_table_sums_shard_records(self):
        async def go():
            spec = spec_for("sketch")
            servers, cluster = make_cluster(3, [spec])
            items = stream(200)
            await cluster.ingest_items(spec.name, items, wait=True)
            dropped = await cluster.drop_table(spec.name)
            assert dropped == len(items)
            for server in servers:
                assert spec.name not in server.tables
            await stop_all(servers)

        run(go())

    def test_stats_and_metrics_shapes(self):
        async def go():
            spec = spec_for("sketch")
            servers, cluster = make_cluster(2, [spec])
            await cluster.ingest_items(spec.name, ["a", "b"], wait=True)
            stats = await cluster.stats(spec.name)
            assert stats["n_shards"] == 2
            assert len(stats["shards"]) == 2
            assert [s["shard"] for s in stats["shards"]] == [0, 1]
            assert all("ok" not in s and "id" not in s
                       for s in stats["shards"])
            applied = sum(s["table"]["records_applied"]
                          for s in stats["shards"])
            assert applied == 2
            bodies = await cluster.metrics("prometheus")
            assert len(bodies) == 2
            assert all(isinstance(body, str) for body in bodies)
            await stop_all(servers)

        run(go())


class TestShardQuotaPassthrough:
    """Shard-side quota refusals must reach the caller untranslated.

    The coordinator promises (``ingest`` docstring): refusals raise the
    shard's own ``QuotaExceededError``, the refused sub-batch was never
    enqueued on that shard, and sub-batches routed to other shards may
    already be acknowledged.
    """

    def test_quota_refusal_passes_through_untranslated(self):
        async def go():
            from repro.service import QuotaExceededError, ServiceLimits

            limits = ServiceLimits(ingest_rate=1.0, ingest_burst=2.0)
            servers = [SketchServer([spec_for("sketch")], limits=limits)
                       for _ in range(3)]
            cluster = ClusterCoordinator.in_process(servers)
            records = [(f"key-{i}", 1) for i in range(48)]
            with pytest.raises(QuotaExceededError) as excinfo:
                await cluster.ingest("t", records, wait=True)
            assert excinfo.value.code == "quota_exceeded"
            assert excinfo.value.details["op_kind"] == "ingest"
            # Every shard's sub-batch exceeded its burst, and refusal
            # is all-or-nothing per shard: nothing was enqueued.
            stats = await cluster.stats("t")
            assert all(s["table"]["records_applied"] == 0
                       for s in stats["shards"])
            await stop_all(servers)

        run(go())

    def test_one_limited_shard_leaves_others_acknowledged(self):
        async def go():
            from repro.service import QuotaExceededError, ServiceLimits

            tight = ServiceLimits(ingest_rate=1.0, ingest_burst=1.0)
            servers = [SketchServer([spec_for("sketch")], limits=tight)]
            servers += [SketchServer([spec_for("sketch")])
                        for _ in range(2)]
            cluster = ClusterCoordinator.in_process(servers)
            records = [(f"key-{i}", 1) for i in range(48)]
            with pytest.raises(QuotaExceededError):
                await cluster.ingest("t", records, wait=True)
            stats = await cluster.stats("t")
            applied = [s["table"]["records_applied"]
                       for s in stats["shards"]]
            # The limited shard refused its whole sub-batch; the
            # unlimited shards may already have applied theirs.
            assert applied[0] == 0
            assert sum(applied[1:]) > 0
            await stop_all(servers)

        run(go())
