"""Property: the cluster is indistinguishable from one offline sketch.

Hypothesis drives arbitrary streams, fleet sizes, and table kinds and
asserts **bit-equality** between coordinator answers and a single
offline summary fed the same records — the §3.2 linearity acceptance
bar.  Covered mid-stream (under the read-your-acknowledged-writes
barrier of ``wait=True``) and across a kill-and-resume of one shard
from its checkpoint.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.coordinator import ClusterCoordinator
from repro.service.server import SketchServer
from repro.service.tables import TableSpec

ITEM = st.sampled_from([f"item-{i}" for i in range(20)])
STREAMS = st.lists(ITEM, min_size=0, max_size=120)
PROBES = [f"item-{i}" for i in range(20)] + ["never-seen"]


def spec_for(kind: str) -> TableSpec:
    return TableSpec("t", kind=kind, depth=4, width=64, seed=5, k=25)


class TestClusterMatchesOfflineSketch:
    @given(
        items=STREAMS,
        n_shards=st.integers(min_value=1, max_value=3),
        kind=st.sampled_from(["sketch", "vectorized", "topk"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_estimate_and_topk_mid_stream(self, items, n_shards, kind):
        async def go():
            spec = spec_for(kind)
            servers = [SketchServer([spec]) for _ in range(n_shards)]
            cluster = ClusterCoordinator.in_process(servers)
            offline = spec.build()
            sketch = getattr(offline, "sketch", offline)
            chunk = 40
            for start in range(0, len(items), chunk):
                batch = items[start:start + chunk]
                # wait=True is the cluster-wide read barrier: the next
                # query must see exactly these acknowledged records.
                await cluster.ingest_items(spec.name, batch, wait=True)
                for item in batch:
                    offline.update(item, 1)
                live = await cluster.estimate(spec.name, PROBES)
                assert live == [float(sketch.estimate(p)) for p in PROBES]
            if kind == "topk" and items:
                # k=25 >= 20 distinct items: every shard tracks its whole
                # key subset, so the union re-score must reproduce the
                # offline sketch's ranking of the full key set.
                expected = sorted(
                    ((q, float(sketch.estimate(q))) for q in set(items)),
                    key=lambda pair: (-pair[1], repr(pair[0])),
                )
                assert await cluster.topk(spec.name) == expected[:25]
            for server in servers:
                await server.stop()

        asyncio.run(go())

    @given(items=STREAMS, seed=st.integers(min_value=0, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_kill_and_resume_one_shard(self, items, seed, tmp_path_factory):
        split = len(items) // 2

        async def go():
            root = tmp_path_factory.mktemp("cluster-resume")
            spec = TableSpec("t", kind="sketch", depth=4, width=64,
                             seed=seed)
            dirs = [root / "shard-000", root / "shard-001"]
            servers = [SketchServer([spec], checkpoint_dir=d)
                       for d in dirs]
            cluster = ClusterCoordinator.in_process(servers)
            await cluster.ingest_items(spec.name, items[:split], wait=True)
            await cluster.checkpoint()

            # Kill shard 1 and resume it from its checkpoint directory.
            await servers[1].stop()
            servers[1] = SketchServer([spec], checkpoint_dir=dirs[1])
            cluster = ClusterCoordinator.in_process(servers)

            await cluster.ingest_items(spec.name, items[split:], wait=True)
            offline = spec.build()
            offline.extend(items)
            live = await cluster.estimate(spec.name, PROBES)
            assert live == [float(offline.estimate(p)) for p in PROBES]
            for server in servers:
                await server.stop()

        asyncio.run(go())
