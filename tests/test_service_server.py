"""Server semantics: exactness mid-stream, backpressure, lifecycle.

The acceptance bar for the service (ISSUE 5): a live server answering
``estimate`` / ``topk`` while ingestion continues returns *exactly*
what an offline summary fed the same acknowledged prefix returns.  The
read barrier makes that deterministic, so these are equality asserts,
not tolerance checks.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.service.client import (
    AsyncServiceClient,
    OverloadedError,
    ServiceError,
)
from repro.service.server import SketchServer
from repro.service.tables import ServiceTable, TableSpec

KINDS = ["sketch", "vectorized", "topk", "window"]


def spec_for(kind: str, name: str = "t") -> TableSpec:
    return TableSpec(
        name, kind=kind, depth=4, width=128, seed=3, k=8, window=64,
        buckets=4,
    )


def run(coro):
    return asyncio.run(coro)


class TestMidStreamExactness:
    """Live answers equal the offline summary on the ingested prefix."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_interleaved_queries_match_offline(self, kind):
        async def go():
            spec = spec_for(kind)
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server)
            offline = spec.build()
            rng = random.Random(42)
            stream = [f"item-{rng.randrange(40)}" for __ in range(600)]
            probes = [f"item-{i}" for i in range(40)] + ["never-seen"]
            for start in range(0, len(stream), 50):
                chunk = stream[start:start + 50]
                await client.ingest_items(spec.name, chunk)
                for item in chunk:
                    offline.update(item, 1)
                live = await client.estimate(spec.name, probes)
                assert live == [float(offline.estimate(p)) for p in probes]
                if kind == "topk":
                    live_top = await client.topk(spec.name)
                    assert live_top == [
                        (item, float(count))
                        for item, count in offline.top()
                    ]
            stats = await client.stats(spec.name)
            assert stats["table"]["records_applied"] == len(stream)
            await server.stop()

        run(go())

    def test_weighted_and_negative_counts_on_linear_tables(self):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server)
            offline = spec.build()
            records = [("a", 5), ("b", 3), ("a", -2), ("c", 7), ("b", -3)]
            await client.ingest(spec.name, records)
            for item, count in records:
                offline.update(item, count)
            live = await client.estimate(spec.name, ["a", "b", "c"])
            assert live == [
                float(offline.estimate(k)) for k in ("a", "b", "c")
            ]
            await server.stop()

        run(go())

    def test_mixed_key_types_roundtrip_through_ingest(self):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec])
            client = AsyncServiceClient.in_process(server)
            offline = spec.build()
            keys = ["text", 42, b"\x00\xff", ("flow", 8080), True]
            await client.ingest(spec.name, [(k, 2) for k in keys])
            for key in keys:
                offline.update(key, 2)
            assert await client.estimate(spec.name, keys) == [
                float(offline.estimate(k)) for k in keys
            ]
            await server.stop()

        run(go())


class TestRequestValidation:
    def test_unknown_op_is_bad_request(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            response = await server.dispatch({"op": "explode", "id": 9})
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert response["id"] == 9
            await server.stop()

        run(go())

    def test_missing_table_is_no_such_table(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            with pytest.raises(ServiceError) as excinfo:
                await client.estimate("ghost", ["a"])
            assert excinfo.value.code == "no_such_table"
            await server.stop()

        run(go())

    @pytest.mark.parametrize("kind", ["topk", "window"])
    def test_negative_counts_refused_on_insert_only_tables(self, kind):
        async def go():
            server = SketchServer([spec_for(kind)])
            client = AsyncServiceClient.in_process(server)
            with pytest.raises(ServiceError) as excinfo:
                await client.ingest("t", [("a", -1)])
            assert excinfo.value.code == "bad_request"
            assert "insert-only" in excinfo.value.message
            await server.stop()

        run(go())

    def test_zero_and_malformed_records_refused(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            with pytest.raises(ServiceError, match="zero count"):
                await client.ingest("t", [("a", 0)])
            response = await server.dispatch(
                {"op": "ingest", "table": "t", "records": [["a"]]}
            )
            assert response["error"]["code"] == "bad_request"
            response = await server.dispatch(
                {"op": "ingest", "table": "t", "records": [["a", 1.5]]}
            )
            assert response["error"]["code"] == "bad_request"
            # Nothing was enqueued by any refused request.
            stats = await client.stats("t")
            assert stats["table"]["records_applied"] == 0
            await server.stop()

        run(go())

    def test_topk_requires_a_topk_table(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            with pytest.raises(ServiceError) as excinfo:
                await client.topk("t")
            assert excinfo.value.code == "bad_request"
            await server.stop()

        run(go())

    def test_internal_fault_barrier_keeps_server_alive(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            # Metrics with a bogus format object: survives as an error
            # response, then the server still answers pings.
            response = await server.dispatch(
                {"op": "metrics", "format": ["boom"]}
            )
            assert response["ok"] is False
            assert (await client.ping())["ok"] is True
            await server.stop()

        run(go())


class TestTableLifecycle:
    def test_create_is_idempotent_for_identical_specs(self):
        async def go():
            server = SketchServer()
            client = AsyncServiceClient.in_process(server)
            spec = spec_for("topk", "live")
            assert await client.create_table(spec) is True
            assert await client.create_table(spec) is False
            with pytest.raises(ServiceError) as excinfo:
                await client.create_table(
                    TableSpec("live", kind="topk", k=99)
                )
            assert excinfo.value.code == "table_exists"
            await server.stop()

        run(go())

    def test_drop_table_reports_applied_records(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            await client.ingest_items("t", ["a", "b", "a"])
            assert await client.drop_table("t") == 3
            with pytest.raises(ServiceError) as excinfo:
                await client.estimate("t", ["a"])
            assert excinfo.value.code == "no_such_table"
            await server.stop()

        run(go())

    def test_ping_and_server_stats_shape(self):
        async def go():
            server = SketchServer([spec_for("sketch", "a"),
                                   spec_for("topk", "b")])
            client = AsyncServiceClient.in_process(server)
            info = await client.ping()
            assert info["version"] == 1
            assert info["tables"] == 2
            assert info["accepting"] is True
            stats = await client.stats()
            assert set(stats["tables"]) == {"a", "b"}
            assert stats["server"]["tables"] == 2
            assert stats["server"]["checkpoint_dir"] is None
            await server.stop()

        run(go())

    def test_metrics_op_exports_both_formats(self):
        async def go():
            server = SketchServer([spec_for("sketch", "queries")])
            client = AsyncServiceClient.in_process(server)
            await client.ingest_items("queries", ["a", "b"], wait=True)
            body = await client.metrics()
            assert "service_requests_total" in body
            assert "service_table_queries_applied_records_total" in body
            json_body = await client.metrics("json")
            assert "service_requests_total" in json_body
            with pytest.raises(ServiceError, match="unknown metrics"):
                await client.metrics("xml")
            await server.stop()

        run(go())


class TestBackpressure:
    def test_overload_is_explicit_and_all_or_nothing(self):
        async def go():
            spec = spec_for("sketch")
            server = SketchServer([spec], queue_capacity=1)
            client = AsyncServiceClient.in_process(server)
            table = server.tables["t"]
            table.pause()
            first = await client.ingest_items("t", ["a"])
            # Let the paused applier park holding batch 1, emptying the
            # queue; batch 2 then fills it and batch 3 must be refused.
            for __ in range(3):
                await asyncio.sleep(0)
            second = await client.ingest_items("t", ["b"])
            assert (first, second) == (1, 2)
            with pytest.raises(OverloadedError) as excinfo:
                await client.ingest_items("t", ["c"])
            assert excinfo.value.details["capacity"] == 1
            # The refused batch left no partial state behind.
            table.resume()
            assert await client.estimate("t", ["a", "b", "c"]) == [
                1.0, 1.0, 0.0,
            ]
            stats = await client.stats("t")
            assert stats["table"]["records_applied"] == 2
            await server.stop()

        run(go())

    def test_wait_true_applies_before_returning(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            seq = await client.ingest_items("t", ["a", "a"], wait=True)
            table = server.tables["t"]
            assert table.applied_seq >= seq
            assert table.records_applied == 2
            await server.stop()

        run(go())

    def test_pause_and_resume_are_observable(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            table = server.tables["t"]
            table.pause()
            stats = await client.stats("t")
            assert stats["table"]["paused"] is True
            table.resume()
            stats = await client.stats("t")
            assert stats["table"]["paused"] is False
            await server.stop()

        run(go())


class TestShutdown:
    def test_stopped_server_refuses_new_work(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            await client.ingest_items("t", ["a"])
            await server.stop()
            response = await server.dispatch(
                {"op": "ingest", "table": "t", "records": [["b", 1]]}
            )
            assert response["error"]["code"] == "shutting_down"
            response = await server.dispatch(
                {"op": "create_table", "spec": {"name": "late"}}
            )
            assert response["error"]["code"] == "shutting_down"
            # Reads still work against the drained state.
            assert await client.estimate("t", ["a"]) == [1.0]

        run(go())

    def test_stop_is_idempotent(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            await server.stop()
            await server.stop()
            await server.wait_stopped()

        run(go())

    def test_shutdown_op_drains_acknowledged_batches(self):
        async def go():
            server = SketchServer([spec_for("sketch")])
            client = AsyncServiceClient.in_process(server)
            await client.ingest_items("t", ["a"] * 10)
            await client.shutdown()
            await server.wait_stopped()
            assert server.tables["t"].records_applied == 10

        run(go())


class TestTableSpecValidation:
    def test_rejects_bad_names_kinds_and_sizes(self):
        with pytest.raises(ValueError, match="invalid table name"):
            TableSpec("-bad")
        with pytest.raises(ValueError, match="unknown table kind"):
            TableSpec("t", kind="bloom")
        with pytest.raises(ValueError, match="at least 1"):
            TableSpec("t", depth=0)
        with pytest.raises(ValueError, match="integer"):
            TableSpec("t", width=True)

    def test_dict_roundtrip_and_unknown_fields(self):
        spec = spec_for("window", "w")
        assert TableSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown table spec"):
            TableSpec.from_dict({"name": "w", "flavor": "mint"})
        with pytest.raises(ValueError, match="requires a name"):
            TableSpec.from_dict({"kind": "sketch"})

    def test_service_table_rejects_mismatched_summary(self):
        from repro.observability.registry import MetricsRegistry

        spec = spec_for("topk")
        with pytest.raises(ValueError, match="expects"):
            ServiceTable(
                spec, MetricsRegistry(),
                summary=spec_for("sketch").build(),
            )
