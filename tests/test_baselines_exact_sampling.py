"""Tests for the exact counter and the SAMPLING baseline."""

import pytest

from repro.baselines.exact import ExactCounter
from repro.baselines.sampling import SamplingSummary, required_probability


class TestExactCounter:
    def test_counts(self):
        counter = ExactCounter()
        counter.extend(["a", "b", "a"])
        assert counter.count("a") == 2
        assert counter.count("b") == 1
        assert counter.count("c") == 0
        assert counter.estimate("a") == 2.0

    def test_weighted_update(self):
        counter = ExactCounter()
        counter.update("a", 5)
        assert counter.count("a") == 5
        assert counter.total == 5

    def test_top(self):
        counter = ExactCounter()
        counter.extend(["a", "b", "a", "c", "a", "b"])
        assert counter.top(2) == [("a", 3.0), ("b", 2.0)]

    def test_space_accounting(self):
        counter = ExactCounter()
        counter.extend(["a", "b", "a"])
        assert counter.counters_used() == 2
        assert counter.items_stored() == 2
        assert len(counter) == 2

    def test_counts_copy_is_independent(self):
        counter = ExactCounter()
        counter.update("a")
        snapshot = counter.counts()
        counter.update("a")
        assert snapshot["a"] == 1
        assert counter.count("a") == 2


class TestRequiredProbability:
    def test_formula(self):
        import math

        p = required_probability(nk=100, k=10, delta=0.05)
        assert p == pytest.approx(math.log(10 / 0.05) / 100)

    def test_capped_at_one(self):
        assert required_probability(nk=1, k=10, delta=0.05) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            required_probability(0, 10)
        with pytest.raises(ValueError):
            required_probability(10, 0)
        with pytest.raises(ValueError):
            required_probability(10, 10, delta=1.5)


class TestSamplingSummary:
    def test_probability_one_keeps_everything(self):
        summary = SamplingSummary(1.0, seed=0)
        summary.update("a")
        summary.update("a")
        summary.update("b")
        assert summary.sampled_count("a") == 2
        assert summary.estimate("a") == 2.0
        assert summary.sample_size() == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingSummary(0.0)
        with pytest.raises(ValueError):
            SamplingSummary(1.5)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SamplingSummary(0.5, seed=0).update("a", -2)

    def test_estimate_unbiased(self):
        """Averaged over seeds, count/p ≈ true count."""
        estimates = []
        for seed in range(100):
            summary = SamplingSummary(0.2, seed=seed)
            summary.update("x", 200)
            estimates.append(summary.estimate("x"))
        mean = sum(estimates) / len(estimates)
        assert abs(mean - 200) < 10

    def test_weighted_update_thins_binomially(self):
        summary = SamplingSummary(0.5, seed=3)
        summary.update("x", 1000)
        assert 400 < summary.sampled_count("x") < 600

    def test_sampling_rate_respected(self):
        summary = SamplingSummary(0.1, seed=1)
        for i in range(10_000):
            summary.update(i)
        assert 800 < summary.sample_size() < 1200

    def test_top_scaled_by_probability(self):
        summary = SamplingSummary(0.5, seed=2)
        summary.update("a", 400)
        summary.update("b", 10)
        top = summary.top(1)
        assert top[0][0] == "a"
        assert top[0][1] == summary.sampled_count("a") / 0.5

    def test_for_candidate_top_captures_heavy_items(self):
        summary = SamplingSummary.for_candidate_top(
            nk=200, k=5, delta=0.05, seed=4
        )
        stream = [item for item in range(5) for _ in range(200)]
        stream += list(range(100, 1100))  # 1000 singletons
        for item in stream:
            summary.update(item)
        for heavy in range(5):
            assert heavy in summary

    def test_space_is_distinct_items(self):
        summary = SamplingSummary(1.0, seed=0)
        for item in ["a", "a", "b"]:
            summary.update(item)
        assert summary.counters_used() == 2
        assert summary.items_stored() == 2

    def test_contains(self):
        summary = SamplingSummary(1.0, seed=0)
        summary.update("a")
        assert "a" in summary
        assert "b" not in summary

    def test_deterministic_given_seed(self):
        def run(seed):
            summary = SamplingSummary(0.3, seed=seed)
            for i in range(1000):
                summary.update(i % 50)
            return sorted(
                (item, summary.sampled_count(item)) for item in range(50)
            )

        assert run(7) == run(7)
        assert run(7) != run(8)
