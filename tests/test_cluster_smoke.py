"""End-to-end smoke: ``repro cluster serve`` + ``repro query --cluster``.

The CI ``cluster-smoke`` target: a real coordinator-supervised fleet of
two shard processes, driven only through the public CLI — launch,
ingest, query, scrape, SIGTERM drain, resume from the pinned
checkpoints, and refuse a silent shard-count change.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import EXIT_DATA, main
from repro.streams.io import write_stream_text

REPO_ROOT = Path(__file__).parent.parent

TABLES = [
    "--table", "flows:vectorized:depth=4,width=256,seed=7",
    "--table", "hot:topk:k=5,depth=4,width=256,seed=5",
]

STREAM = (["deep learning"] * 12 + ["sketch"] * 8 + ["stream"] * 5
          + ["rare query"])


def launch_cluster(spec_path, checkpoint_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "cluster", "serve",
            "--shards", "2", *TABLES,
            "--spec-out", str(spec_path),
            "--checkpoint-dir", str(checkpoint_dir),
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 60
    ready = 0
    while time.monotonic() < deadline and ready < 2:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise AssertionError(
                f"cluster exited early with code {proc.returncode}")
        if line.startswith("shard ") and "serving on" in line:
            ready += 1
    if ready < 2:
        proc.kill()
        raise AssertionError("fleet did not report both shards in time")
    return proc


def drain(proc):
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    return out


@pytest.fixture()
def cluster_paths(tmp_path):
    return tmp_path / "cluster.json", tmp_path / "ckpt"


def query(spec_path, verb, *argv):
    return main(["query", verb, "--cluster", str(spec_path),
                 "--timeout", "30", *argv])


class TestClusterSmoke:
    def test_serve_ingest_query_drain_resume(self, cluster_paths,
                                             tmp_path, capsys):
        spec_path, checkpoint_dir = cluster_paths
        stream_file = tmp_path / "stream.txt"
        write_stream_text(stream_file, STREAM)

        proc = launch_cluster(spec_path, checkpoint_dir)
        try:
            assert query(spec_path, "ping") == 0
            out = capsys.readouterr().out
            assert out.count('"ok": true') == 2

            for table in ("flows", "hot"):
                assert query(spec_path, "ingest", "--table", table,
                             "--input", str(stream_file)) == 0
                out = capsys.readouterr().out
                assert f"ingested {len(STREAM)} records" in out

            assert query(spec_path, "estimate", "--table", "flows",
                         "deep learning", "absent") == 0
            out = capsys.readouterr().out
            assert "12.000" in out

            assert query(spec_path, "topk", "--table", "hot") == 0
            out = capsys.readouterr().out
            assert "deep learning" in out and "12" in out

            assert query(spec_path, "stats", "--table", "flows") == 0
            out = capsys.readouterr().out
            assert '"n_shards": 2' in out

            assert query(spec_path, "metrics") == 0
            out = capsys.readouterr().out
            assert "# shard 0" in out and "# shard 1" in out

            assert query(spec_path, "checkpoint") == 0
            capsys.readouterr()
        finally:
            out = drain(proc)
        assert proc.returncode == 0, out
        assert "graceful stop complete" in out
        assert (checkpoint_dir / "manifest.json").exists()
        for shard in ("shard-000", "shard-001"):
            assert (checkpoint_dir / shard / "flows.rcs").exists()

        # Resume the fleet from the pinned checkpoints: answers survive.
        proc = launch_cluster(spec_path, checkpoint_dir)
        try:
            assert query(spec_path, "estimate", "--table", "flows",
                         "deep learning", "sketch") == 0
            out = capsys.readouterr().out
            assert "12.000" in out and "8.000" in out
        finally:
            out = drain(proc)
        assert proc.returncode == 0, out

        # A different --shards against the same checkpoints is refused
        # loudly (exit 2) instead of silently mis-routing keys.
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        refused = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "cluster", "serve",
                "--shards", "3", *TABLES,
                "--spec-out", str(spec_path),
                "--checkpoint-dir", str(checkpoint_dir),
            ],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=60,
        )
        assert refused.returncode == EXIT_DATA
        assert "2-shard fleet" in refused.stderr
        assert "repro cluster rebalance" in refused.stderr
