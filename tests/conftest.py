"""Shared fixtures: small deterministic workloads reused across test
modules so the suite stays fast."""

from __future__ import annotations

import pytest

from repro.analysis.ground_truth import StreamStatistics
from repro.streams.zipf import ZipfStreamGenerator


@pytest.fixture(scope="session")
def zipf_stream():
    """A small deterministic Zipf(z=1) stream shared by many tests."""
    return ZipfStreamGenerator(m=500, z=1.0, seed=42).generate(10_000)


@pytest.fixture(scope="session")
def zipf_counts(zipf_stream):
    """Exact counts of the shared stream."""
    return zipf_stream.counts()


@pytest.fixture(scope="session")
def zipf_stats(zipf_counts):
    """Ground-truth statistics of the shared stream."""
    return StreamStatistics(counts=zipf_counts)
