"""Fleet plumbing: spec files, pinned manifests, exact rebalancing.

The operationally dangerous path is resuming or re-shaping a fleet:
a silent shard-count change would route keys to shards holding the
wrong counters.  These tests pin the refusal messages and prove the
sanctioned path — offline snapshot re-merge — is bit-exact, including
shards that never checkpointed (their absence is an empty sketch).
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.fleet import (
    MERGEABLE_KINDS,
    merge_shard_summaries,
    pin_cluster_manifest,
    read_cluster_spec,
    rebalance_cluster,
    shard_directory,
    write_cluster_spec,
)
from repro.core.countsketch import CountSketch
from repro.core.vectorized import VectorizedCountSketch
from repro.service.tables import TableSpec
from repro.store import CheckpointMismatchError, StoreError, load, save
from repro.store.codec import load_with_meta

SKETCH_SPEC = TableSpec("flows", kind="sketch", depth=4, width=128, seed=9)
VEC_SPEC = TableSpec("fast", kind="vectorized", depth=4, width=128, seed=9)
TOPK_SPEC = TableSpec("hot", kind="topk", depth=4, width=64, seed=3, k=5)


class TestClusterSpecFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "cluster.json"
        endpoints = [("127.0.0.1", 9431), ("10.0.0.2", 9432)]
        write_cluster_spec(path, endpoints, [SKETCH_SPEC, TOPK_SPEC])
        spec = read_cluster_spec(path)
        assert spec.n_shards == 2
        assert spec.endpoints == endpoints
        assert [t.name for t in spec.tables] == ["flows", "hot"]
        assert spec.tables[0].to_dict() == SKETCH_SPEC.to_dict()

    def test_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(StoreError, match="repro cluster serve"):
            read_cluster_spec(tmp_path / "nope.json")

    def test_malformed_json_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="not a valid cluster spec"):
            read_cluster_spec(path)

    def test_wrong_version_or_no_shards_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "shards": []}),
                        encoding="utf-8")
        with pytest.raises(StoreError, match="version-1"):
            read_cluster_spec(path)

    def test_bad_shard_entry_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"version": 1, "shards": [{"host": "x"}]}),
            encoding="utf-8")
        with pytest.raises(StoreError, match="'host' and 'port'"):
            read_cluster_spec(path)

    def test_invalid_pinned_table_spec_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": 1,
            "shards": [{"host": "x", "port": 1}],
            "tables": [{"name": "t", "kind": "bogus"}],
        }), encoding="utf-8")
        with pytest.raises(StoreError, match="invalid table spec"):
            read_cluster_spec(path)


class TestPinClusterManifest:
    def test_pin_then_verify_is_idempotent(self, tmp_path):
        pin_cluster_manifest(tmp_path, n_shards=2, specs=[SKETCH_SPEC])
        pin_cluster_manifest(tmp_path, n_shards=2, specs=[SKETCH_SPEC])

    def test_different_shard_count_refused_actionably(self, tmp_path):
        pin_cluster_manifest(tmp_path, n_shards=2, specs=[SKETCH_SPEC])
        with pytest.raises(CheckpointMismatchError) as excinfo:
            pin_cluster_manifest(tmp_path, n_shards=3, specs=[SKETCH_SPEC])
        message = str(excinfo.value)
        assert "2-shard fleet" in message
        assert "wants 3 shards" in message
        assert "--shards 2" in message
        assert "repro cluster rebalance" in message

    def test_different_table_specs_refused(self, tmp_path):
        pin_cluster_manifest(tmp_path, n_shards=2, specs=[SKETCH_SPEC])
        changed = TableSpec("flows", kind="sketch", depth=4, width=256,
                            seed=9)
        with pytest.raises(CheckpointMismatchError):
            pin_cluster_manifest(tmp_path, n_shards=2, specs=[changed])

    def test_shard_directory_layout(self, tmp_path):
        assert shard_directory(tmp_path, 0).name == "shard-000"
        assert shard_directory(tmp_path, 12).name == "shard-012"
        with pytest.raises(ValueError):
            shard_directory(tmp_path, -1)


class TestMergeShardSummaries:
    def test_zero_summaries_is_the_empty_sketch(self):
        merged = merge_shard_summaries(SKETCH_SPEC, [])
        assert isinstance(merged, CountSketch)
        assert merged.total_weight == 0
        assert merged.estimate("anything") == 0.0

    def test_one_summary_is_unchanged(self):
        one = SKETCH_SPEC.build()
        one.extend(["a", "b", "a"])
        merged = merge_shard_summaries(SKETCH_SPEC, [one])
        assert merged == one

    def test_many_summaries_sum_exactly(self):
        items = [f"k{i % 11}" for i in range(300)]
        offline = SKETCH_SPEC.build()
        offline.extend(items)
        shards = [SKETCH_SPEC.build() for _ in range(3)]
        for index, item in enumerate(items):
            shards[index % 3].update(item)
        merged = merge_shard_summaries(SKETCH_SPEC, shards)
        assert merged == offline

    def test_vectorized_kind_merges_too(self):
        shard = VEC_SPEC.build()
        shard.update_batch(["x", "y", "x"])
        merged = merge_shard_summaries(VEC_SPEC, [shard, VEC_SPEC.build()])
        assert isinstance(merged, VectorizedCountSketch)
        assert merged.estimate("x") == shard.estimate("x")

    def test_non_linear_kinds_refused(self):
        assert "topk" not in MERGEABLE_KINDS
        with pytest.raises(StoreError, match="insert-ordered"):
            merge_shard_summaries(TOPK_SPEC, [])

    def test_mismatched_summary_type_refused(self):
        with pytest.raises(StoreError, match="expected the spec's"):
            merge_shard_summaries(SKETCH_SPEC, [VEC_SPEC.build()])


def seed_cluster_checkpoint(root, spec, n_shards, items,
                            skip_shards=()):
    """Write a hand-rolled cluster checkpoint: shard i gets items[i::n]."""
    pin_cluster_manifest(root, n_shards=n_shards, specs=[spec])
    for shard in range(n_shards):
        if shard in skip_shards:
            continue
        summary = spec.build()
        routed = items[shard::n_shards]
        summary.extend(routed)
        target = shard_directory(root, shard) / f"{spec.name}.rcs"
        target.parent.mkdir(parents=True, exist_ok=True)
        save(summary, target, meta={"items_consumed": len(routed)})


class TestRebalance:
    ITEMS = [f"key-{i % 17}" for i in range(400)]

    def test_merged_answers_are_bit_equal(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        seed_cluster_checkpoint(src, SKETCH_SPEC, 3, self.ITEMS)
        counts = rebalance_cluster(src, dst, 5)
        assert counts == {"flows": 3}

        offline = SKETCH_SPEC.build()
        offline.extend(self.ITEMS)
        merged, meta = load_with_meta(
            shard_directory(dst, 0) / "flows.rcs")
        assert merged == offline
        assert meta["items_consumed"] == len(self.ITEMS)
        # The other shards exist but start empty; the manifest pins the
        # new fleet size so `cluster serve --shards 5` resumes cleanly.
        for index in range(5):
            assert shard_directory(dst, index).is_dir()
        pin_cluster_manifest(dst, n_shards=5, specs=[SKETCH_SPEC])

    def test_missing_shard_snapshots_mean_empty(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        seed_cluster_checkpoint(src, SKETCH_SPEC, 3, self.ITEMS,
                                skip_shards=(1,))
        counts = rebalance_cluster(src, dst, 2)
        assert counts == {"flows": 2}
        expected = SKETCH_SPEC.build()
        for shard in (0, 2):
            expected.extend(self.ITEMS[shard::3])
        assert load(shard_directory(dst, 0) / "flows.rcs") == expected

    def test_source_without_manifest_refused(self, tmp_path):
        with pytest.raises(StoreError, match="no cluster manifest"):
            rebalance_cluster(tmp_path / "void", tmp_path / "dst", 2)

    def test_occupied_destination_refused(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        seed_cluster_checkpoint(src, SKETCH_SPEC, 2, self.ITEMS)
        pin_cluster_manifest(dst, n_shards=4, specs=[SKETCH_SPEC])
        with pytest.raises(StoreError, match="already holds"):
            rebalance_cluster(src, dst, 3)

    def test_topk_tables_refused(self, tmp_path):
        src = tmp_path / "src"
        pin_cluster_manifest(src, n_shards=2, specs=[TOPK_SPEC])
        with pytest.raises(StoreError, match="cannot be\n?.*rebalanced"):
            rebalance_cluster(src, tmp_path / "dst", 3)

    def test_bad_new_shard_count_refused(self, tmp_path):
        with pytest.raises(ValueError):
            rebalance_cluster(tmp_path / "src", tmp_path / "dst", 0)
