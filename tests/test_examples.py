"""Every example script must run cleanly end to end.

Examples are the public face of the library; a broken example is a
release blocker, so they are executed as real subprocesses (fresh
interpreter, no test-suite state) and their headline output is checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "recall of the true top-10" in out
        assert "space used" in out

    def test_search_queries(self):
        out = run_example("search_queries.py")
        assert "top queries of week 2" in out
        assert "FOUND" in out  # the planted burst must be surfaced

    def test_network_flows(self):
        out = run_example("network_flows.py")
        assert "CountSketch tracker" in out
        assert "top-5 flows" in out

    def test_distributed_merge(self):
        out = run_example("distributed_merge.py")
        assert "merged sketch equals global sketch exactly: True" in out
        assert "serialization round-trip exact: True" in out

    def test_accuracy_space_tradeoff(self):
        out = run_example("accuracy_space_tradeoff.py")
        assert "Lemma 5 width" in out
        assert "sketch-estimated F2" in out

    def test_windowed_trending(self):
        out = run_example("windowed_trending.py")
        assert "forgotten" in out
        assert "FOUND" in out  # the sleeper hit must be surfaced

    def test_turnstile_deletions(self):
        out = run_example("turnstile_deletions.py")
        assert "all stuck sessions found: True" in out

    def test_all_examples_covered(self):
        """Every script in examples/ has a test above."""
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        tested = {
            "quickstart.py",
            "search_queries.py",
            "network_flows.py",
            "distributed_merge.py",
            "accuracy_space_tradeoff.py",
            "windowed_trending.py",
            "turnstile_deletions.py",
        }
        assert scripts == tested
