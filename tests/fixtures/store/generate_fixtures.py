"""Regenerate the golden snapshot fixtures.

The ``.rcs`` files next to this script pin the on-disk snapshot format:
``tests/test_store_golden.py`` decodes them and re-encodes the result,
failing the moment the bytes drift.  Only regenerate after an
*intentional* format change (which also requires bumping
``repro.store.format.FORMAT_VERSION`` and keeping a reader for the old
version):

    PYTHONPATH=src python tests/fixtures/store/generate_fixtures.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.store import SNAPSHOT_SUFFIX, save

HERE = Path(__file__).parent

#: One deterministic stream shared by every fixture; mixes every item
#: kind the snapshot item coding supports.
STREAM = (
    ["alpha"] * 9
    + ["beta"] * 6
    + [17] * 4
    + [("pair", 1)] * 3
    + [b"\x00raw"] * 2
    + ["gamma", 17, "alpha"]
)

#: Items whose estimates golden.json records.
PROBES = ["alpha", "beta", "gamma", "missing", 17, ("pair", 1), b"\x00raw"]


def build_summaries():
    dense = CountSketch(3, 32, seed=4)
    dense.extend(STREAM)

    sparse = SparseCountSketch(3, 32, seed=4)
    sparse.extend(STREAM)

    vectorized = VectorizedCountSketch(3, 32, seed=4)
    vectorized.extend(STREAM)

    topk = TopKTracker(4, depth=3, width=32, seed=4)
    for item in STREAM:
        topk.update(item)

    window = JumpingWindowSketch(16, buckets=4, depth=3, width=32, seed=4)
    for item in STREAM:
        window.update(item)

    return {
        "dense": dense,
        "sparse": sparse,
        "vectorized": vectorized,
        "topk": topk,
        "window": window,
    }


def probe_key(item):
    return repr(item)


def main() -> None:
    manifest = {}
    for name, summary in build_summaries().items():
        path = HERE / f"{name}{SNAPSHOT_SUFFIX}"
        save(summary, path)
        manifest[name] = {
            "file": path.name,
            "estimates": {
                probe_key(item): summary.estimate(item) for item in PROBES
            },
        }
        print(f"wrote {path.name} ({path.stat().st_size} bytes)")
    golden = HERE / "golden.json"
    golden.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {golden.name}")


if __name__ == "__main__":
    main()
