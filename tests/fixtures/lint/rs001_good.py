"""RS001 clean: every generator is explicitly seeded and threaded."""

import random

import numpy as np
from numpy.random import default_rng


def jitter(rng: random.Random) -> float:
    return rng.random()


def shuffled(items: list, seed: int) -> list:
    out = list(items)
    random.Random(seed).shuffle(out)
    return out


def seeded_generators(seed: int) -> None:
    a = random.Random(seed)
    b = np.random.default_rng(seed)
    c = default_rng(seed)
    del a, b, c
