"""Clean counterparts for RS008: service code delegates to protocol.

Handlers and clients pass structured values to the codec in
``repro.service.protocol`` instead of touching bytes themselves; plain
numpy array construction is not a wire concern and stays allowed.
"""

import numpy as np

from repro.service.protocol import (
    pack_binary_ingest,
    pack_frame,
    unpack_frame,
)


def encode(table: str, request_id: int, weights: np.ndarray) -> bytes:
    keys = np.ascontiguousarray(
        np.arange(len(weights)), dtype=np.uint64
    )
    return pack_binary_ingest(
        table, request_id, keys, weights, raw=True
    )


def decode(payload: bytes):
    frame = unpack_frame(payload)
    counts = np.array([1, 2, 3], dtype=np.int64)
    return frame, counts, pack_frame({"op": "ping", "id": 1})
