"""Clean counterparts for RS010: casts applied or values already int.

Linted under a synthetic ``src/`` display path.  An ``int(...)`` cast
at the source or the sink sanitizes the flow; integer arithmetic never
taints in the first place.
"""


def cast_at_sink(sketch, total, n):
    weight = total / n
    sketch.update("item", int(weight))


def cast_at_source(sketch, total, n):
    weight = int(total / n)
    sketch.update("item", weight)


def reassigned_clean(sketch, total, n):
    weight = total / n
    weight = int(weight)
    sketch.update("item", weight)


def integer_arithmetic(sketch, counts):
    total = 0
    for count in counts:
        total += count
    sketch.update("item", total)


def header_cast(summary):
    return {
        "total_weight": int(summary.weight),
        "items_seen": summary.items,
    }
