"""Clean counterparts for RS012: vocabulary raises and re-raises.

Linted under a synthetic ``src/repro/service/`` display path.  Op
handlers may raise the closed vocabulary the fault barrier maps to
wire error codes, re-raise caught exceptions, and helper functions
outside the handler set are not constrained at all.
"""


class _BadRequest(Exception):
    """Stand-in for the server's wire-mapped request error."""


class _NoSuchTable(_BadRequest):
    """Stand-in for the server's wire-mapped missing-table error."""


class Server:
    """Op handlers that stay inside the wire-error vocabulary."""

    def _op_create_table(self, request):
        if not request:
            raise _BadRequest("empty request")
        return request

    def _require_table(self, name):
        raise _NoSuchTable(name)

    async def _op_ingest(self, body, pending=None):
        if pending is not None:
            raise pending  # re-raising a vetted, bound exception is fine
        try:
            return body["rows"]
        except KeyError:
            raise  # bare re-raise: the original type propagates

    def audit_helper(self):
        # Not an op handler: the vocabulary is not enforced here.
        raise RuntimeError("invariant violated")
