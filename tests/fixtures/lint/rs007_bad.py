"""True positives for RS007: blocking calls inside ``async def``.

Linted under a synthetic ``src/repro/service/`` display path — the rule
only patrols the service package, where every table shares one event
loop and any blocking call stalls ingestion and queries alike.
"""

import subprocess
import time
from pathlib import Path

from repro.store import save


async def handle(summary, path: Path) -> str:
    time.sleep(0.5)  # RS007: stalls every connection
    save(summary, path)  # RS007: snapshot I/O on the loop thread
    manifest = open("service.json").read()  # RS007: builtin open
    body = path.read_text()  # RS007: pathlib I/O
    subprocess.run(["sync"], check=True)  # RS007: child process wait
    return manifest + body
