"""RS004 true positives: merging sketch state without the compat check."""

from repro.core.countsketch import CountSketch


def raw_merge(a: CountSketch, b: CountSketch) -> None:
    # RS004 (x2): raw array arithmetic merges incompatible sketches
    # silently — different seeds, same shape, garbage estimates.
    a._counters += b._counters
    a._total_weight += b._total_weight


def clone_without_check(a: CountSketch, b: CountSketch) -> CountSketch:
    # RS004: _with_counters skips _require_compatible entirely.
    return a._with_counters(b._counters.copy(), b.total_weight)
