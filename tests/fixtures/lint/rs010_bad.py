"""True positives for RS010: dtype taint flowing into count sinks.

Linted under a synthetic ``src/`` display path.  Unlike RS005 (which
flags float *literals* at the sink), every tainted value here flows
through at least one assignment before reaching a count parameter or
snapshot-header field.
"""

import numpy as np


def flowing_division(sketch, total, n):
    weight = total / n
    sketch.update("item", weight)  # RS010: division result, no int()


def numpy_scalar(sketch):
    count = np.int64(3)
    sketch.update("item", count)  # RS010: np.int64 promotes the array


def keyword_count(sketch, raw):
    scaled = raw * 1.5
    sketch.update("item", count=scaled)  # RS010: float-tainted keyword


def header_field(summary):
    seen = float(summary.items)
    return {"items_seen": seen}  # RS010: header field must stay int


def header_store(header, remainder):
    header["total_weight"] = remainder / 2  # RS010: division into header
