"""RS006 clean: persistence through the repro.store codec."""

import json

from repro.core.countsketch import CountSketch
from repro.store import load, save


def persist(sketch: CountSketch, path: str) -> int:
    # The sanctioned codec: versioned, CRC-checked, atomically written.
    return save(sketch, path)


def restore(path: str) -> CountSketch:
    summary = load(path)
    assert isinstance(summary, CountSketch)
    return summary


def report(stats: dict) -> str:
    # Serializing ordinary data (not sketch state) stays fine.
    return json.dumps(stats, sort_keys=True)
