"""True positives for RS009: stale writes across unguarded awaits.

Linted under a synthetic ``src/repro/service/`` display path — the rule
patrols the async tiers, where the event loop interleaves tasks at
every await point: state read before an await may be stale by the time
the dependent write runs.
"""

import asyncio


class ShardTable:
    """Async table whose read-modify-write cycles cross await points."""

    async def bump(self, key):
        current = self._counters[key]
        await asyncio.sleep(0)
        self._counters[key] = current + 1  # RS009: current is stale

    async def renamed(self, amount):
        snapshot = self._total_weight
        total = snapshot
        await self._flush()
        self._total_weight = total + amount  # RS009: via copy of snapshot

    async def subscripted(self, key, n):
        row = self._rows[key]
        await asyncio.sleep(0)
        self._rows[key] = row + n  # RS009: row is stale

    async def loop_crossing(self, batch):
        seen = self._records_applied
        async for record in batch:  # implicit await each iteration
            self.apply(record)
        self._records_applied = seen + 1  # RS009: seen is stale
