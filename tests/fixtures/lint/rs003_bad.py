"""RS003 true positives: registry lookups on hot paths."""

from repro.observability import timed
from repro.observability.registry import get_registry


class HotTracker:
    def __init__(self) -> None:
        self._items = 0

    def update(self, item: object) -> None:
        # RS003: one hash lookup per event defeats handle capture.
        get_registry().counter("tracker_updates_total").inc()
        self._items += 1

    def flush(self) -> None:
        registry = get_registry()
        registry.gauge("tracker_live_items").set(self._items)  # RS003
        registry.histogram("tracker_flush_items").observe(self._items)  # RS003
        with registry.timed("tracker_flush_seconds"):  # RS003
            self._items = 0


def process(items: list) -> None:
    with timed("process_seconds"):  # RS003: module-helper lookup per call
        for _item in items:
            pass
