"""Suppression fixture: every violation here carries a ``repro: noqa``."""

import json

from repro.core.countsketch import CountSketch


def suppressed(a: CountSketch, b: CountSketch) -> None:
    a._counters += b._counters  # repro: noqa-RS002,RS004
    a._total_weight = 0  # repro: noqa-RS002
    a.update("q", 1.5)  # repro: noqa-RS005 — deliberate bad-count demo
    b.update("q", 2.5)  # repro: noqa-RS002,RS005 — multi-code form
    b.scale(1.5)  # repro: noqa
    json.dumps(a.state_dict())  # repro: noqa-RS006 — debug-dump demo
