"""RS004 clean: sketch arithmetic through the compatibility-checked API."""

from repro.core.countsketch import CountSketch


def checked_merge(a: CountSketch, b: CountSketch) -> None:
    a.merge(b)


def checked_difference(a: CountSketch, b: CountSketch) -> CountSketch:
    return a - b


def inspect(a: CountSketch) -> int:
    # The public read-only view is the sanctioned way to look at state.
    return int(a.counters.sum())


class MySketch:
    """An arithmetic-protocol implementation may touch raw state —
    it is expected to validate compatibility itself."""

    def __init__(self, width: int) -> None:
        self._counters = [0] * width

    def merge(self, other: "MySketch") -> None:
        if len(self._counters) != len(other._counters):
            raise ValueError("sketches are not compatible")
        for index, value in enumerate(other._counters):
            self._counters[index] += value
