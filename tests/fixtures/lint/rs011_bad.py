"""True positives for RS011: resources leaked on some CFG path.

Linted under a synthetic ``src/repro/service/`` display path — the rule
patrols the tiers that acquire OS resources.  Every function here has
at least one path (usually the exceptional one) out of the function on
which the resource is still open.
"""

import socket
import subprocess


def close_after_risky_read(path):
    handle = open(path, "rb")  # RS011: read() may raise before close()
    data = handle.read()
    handle.close()
    return data


def socket_roundtrip(host, port):
    sock = socket.create_connection((host, port))  # RS011: sendall/recv
    sock.sendall(b"ping")
    reply = sock.recv(64)
    sock.close()
    return reply


def closed_on_one_branch_only(path, strict):
    handle = open(path, "rb")  # RS011: the non-strict branch leaks
    if strict:
        handle.close()
    return None


def early_return_skips_close(command, dry_run):
    process = subprocess.Popen(command)  # RS011: dry_run path leaks
    if dry_run:
        return 0
    process.terminate()
    return process.wait()
