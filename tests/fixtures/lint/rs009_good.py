"""Clean counterparts for RS009: awaits guarded or reads fresh.

Linted under a synthetic ``src/repro/service/`` display path.  Each
function keeps a read-modify-write cycle safe the way the server does:
hold the lock across it, cross only the ``wait_applied`` read barrier,
or re-read after the await.
"""

import asyncio


class ShardTable:
    """Async table whose read-modify-write cycles stay race-free."""

    async def bump_locked(self, key):
        async with self._lock:
            current = self._counters[key]
            await asyncio.sleep(0)
            self._counters[key] = current + 1  # lock held across await

    async def bump_after_await(self, key):
        await asyncio.sleep(0)
        current = self._counters[key]  # read after the await: fresh
        self._counters[key] = current + 1

    async def bump_behind_barrier(self, key, seq):
        current = self._counters[key]
        await self.wait_applied(seq)  # read barrier, not a yield to peers
        self._counters[key] = current + 1

    async def independent_write(self, key):
        before = self._counters[key]
        await asyncio.sleep(0)
        self._counters[key] = 0  # write does not use the stale read
        return before
