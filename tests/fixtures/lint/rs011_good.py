"""Clean counterparts for RS011: release guaranteed or ownership moved.

Linted under a synthetic ``src/repro/service/`` display path.  Context
managers and ``try/finally`` guarantee release on every path; handing
the resource to a longer-lived owner (a container, a wrapper object,
the caller) ends this function's responsibility for it.
"""

import socket
import subprocess


class ShardHandle:
    """Wrapper that takes ownership of the process it is given."""

    def __init__(self, process):
        self.process = process


def with_block(path):
    with open(path, "rb") as handle:
        return handle.read()


def try_finally(host, port):
    sock = socket.create_connection((host, port))
    try:
        sock.sendall(b"ping")
        return sock.recv(64)
    finally:
        sock.close()


def ownership_to_container(command, registry):
    process = subprocess.Popen(command)
    registry.append(process)
    return None


def ownership_to_wrapper(command):
    process = subprocess.Popen(command)
    return ShardHandle(process)


def ownership_to_caller(path):
    handle = open(path, "rb")
    return handle


def cleanup_in_handler(command):
    process = subprocess.Popen(command)
    try:
        process.communicate(timeout=5)
    except Exception:
        process.kill()
        process.wait()
        raise
    return process.returncode
