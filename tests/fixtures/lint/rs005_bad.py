"""RS005 true positives: float literals flowing into count parameters."""

from repro.core.countsketch import CountSketch
from repro.core.maxchange import MaxChangeFinder


def bad_updates(sketch: CountSketch, finder: MaxChangeFinder) -> None:
    sketch.update("q", 1.5)  # RS005: positional count
    sketch.update("q", count=2.0)  # RS005: keyword count
    sketch.update("q", -0.5)  # RS005: negative float count
    finder.observe_before("q", 3.5)  # RS005
    finder.second_pass_after("q", 1.0)  # RS005


def bad_scale(sketch: CountSketch) -> CountSketch:
    return sketch.scale(1.5)  # RS005: non-reciprocal fractional factor
