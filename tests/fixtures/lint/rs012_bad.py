"""True positives for RS012: raises outside the wire-error vocabulary.

Linted under a synthetic ``src/repro/service/`` display path.  Each
``raise`` sits inside an op handler but constructs an exception type
the protocol's fault barrier cannot map to a wire error code — clients
would see an opaque ``internal`` error instead of a specific one.
"""


class Server:
    """Op handlers that raise unmappable exception types."""

    def _op_create_table(self, request):
        if not request:
            raise ValueError("empty request")  # RS012: not wire-mapped
        raise RuntimeError("unreachable op")  # RS012: not wire-mapped

    async def _op_ingest(self, body):
        if "rows" not in body:
            raise KeyError("rows")  # RS012: not wire-mapped
        return body["rows"]

    def _require_table(self, name):
        raise LookupError(name)  # RS012: not wire-mapped
