"""RS002 clean: all counter changes go through the public update API."""

from repro.core.countsketch import CountSketch


def ingest(sketch: CountSketch) -> None:
    sketch.update("item", 5)
    sketch.update_counts({"a": 2, "b": 3})


class MyStructure:
    """Own-state mutation (``self.*``) is the structure's business."""

    def __init__(self) -> None:
        self._counters = {}

    def update(self, item: str, count: int = 1) -> None:
        self._counters[item] = self._counters.get(item, 0) + count
