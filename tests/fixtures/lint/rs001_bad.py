"""RS001 true positives: hidden-global-state / unseeded RNG in library code."""

import random

import numpy as np
from numpy.random import default_rng


def jitter() -> float:
    return random.random()  # RS001: global random module state


def shuffled(items: list) -> list:
    out = list(items)
    random.shuffle(out)  # RS001: global random module state
    return out


def legacy_numpy() -> float:
    return float(np.random.rand())  # RS001: legacy np.random global API


def unseeded_generators() -> None:
    a = random.Random()  # RS001: Random() built without a seed
    b = np.random.default_rng()  # RS001: default_rng() without a seed
    c = default_rng()  # RS001: bare-import default_rng() without a seed
    del a, b, c
