"""RS005 clean: counts are integers; float-valued metrics stay floats."""

from repro.core.countsketch import CountSketch
from repro.core.maxchange import MaxChangeFinder
from repro.observability.registry import Gauge, Histogram


def good_updates(sketch: CountSketch, finder: MaxChangeFinder) -> None:
    sketch.update("q", 2)
    sketch.update("q", count=3)
    sketch.update("q", -1)
    finder.observe_before("q", 4)


def good_scale(sketch: CountSketch) -> CountSketch:
    return sketch.scale(-1)


def good_halving(sketch: CountSketch) -> CountSketch:
    # Exact reciprocals floor-divide the counters (the TinyLFU aging
    # reset); the int64 invariant holds, so no finding.
    return sketch.scale(0.5)


def floats_where_floats_belong(gauge: Gauge, histogram: Histogram) -> None:
    # Gauges and histograms are float-valued by design — not counts.
    gauge.set(0.5)
    histogram.observe(1.5)
