"""RS002 true positives: poking a sketch's counter state from outside."""

import numpy as np

from repro.core.countsketch import CountSketch


def tamper(sketch: CountSketch) -> None:
    sketch._counters[0, 0] += 5  # RS002: direct counter mutation
    sketch._total_weight = 99  # RS002: direct state mutation
    sketch._counters = np.zeros((2, 4), dtype=np.int64)  # RS002: rebind


def tamper_public_view(sketch: CountSketch) -> None:
    sketch.counters[0, 0] = 1  # RS002: mutation through the public view
