"""True positives for RS008: binary wire codec outside protocol.py.

Linted under a synthetic ``src/repro/service/`` display path — the rule
confines frame packing and unpacking primitives to
``repro.service.protocol`` so there is exactly one byte layout to audit
and to cover with round-trip tests.
"""

import struct
from struct import pack

import numpy as np

_HEADER = struct.Struct("<BBBBQH")  # RS008: struct layout in a handler


def encode(table: bytes, request_id: int, weights: np.ndarray) -> bytes:
    head = pack("<I", len(table))  # RS008: from-import alias
    body = weights.tobytes()  # RS008: ndarray serialization
    tag = request_id.to_bytes(8, "little")  # RS008: int serialization
    return head + table + tag + body


def decode(payload: bytes) -> np.ndarray:
    magic = int.from_bytes(payload[:1], "little")  # RS008
    assert magic == 0xB1
    return np.frombuffer(payload[1:], dtype="<i8")  # RS008
