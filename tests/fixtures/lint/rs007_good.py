"""Clean counterparts for RS007: async-safe patterns in service code.

Blocking work either moves to an executor thread or lives in a plain
synchronous helper — RS007 only patrols ``async def`` bodies.
"""

import asyncio
import functools
import time
from pathlib import Path

from repro.store import save


async def handle(summary, path: Path) -> str:
    await asyncio.sleep(0.5)
    loop = asyncio.get_running_loop()
    await loop.run_in_executor(
        None, functools.partial(save, summary, path)
    )
    return await loop.run_in_executor(None, path.read_text)


def flush(summary, path: Path) -> None:
    # Synchronous helpers may block; they run off the event loop.
    time.sleep(0.0)
    save(summary, path)
    path.write_text("done")
