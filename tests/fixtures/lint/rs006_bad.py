"""RS006 true positives: sketch state through generic serializers."""

import json
import marshal
import pickle

import numpy as np

from repro.core.countsketch import CountSketch


def to_json(sketch: CountSketch) -> str:
    # RS006: hand-rolled JSON drops the format version, checksums, and
    # hash coefficients — the bytes can never be validated or merged.
    return json.dumps({"counters": sketch.counters.tolist()})


def to_json_file(sketch: CountSketch, fh) -> None:
    # RS006: same problem through the streaming entry point.
    json.dump(sketch.state_dict(), fh)


def to_pickle(sketch: CountSketch) -> bytes:
    # RS006: pickle bytes are not portable across numpy/python versions.
    return pickle.dumps(sketch.state_dict())


def to_npy(sketch: CountSketch, path: str) -> None:
    # RS006: np.save persists counters without the hash family, so the
    # array cannot be rehydrated into a compatible sketch.
    np.save(path, sketch.counters)


def to_marshal(sketch: CountSketch) -> bytes:
    # RS006: marshal is version-specific and unchecked.
    return marshal.dumps(sketch.state_dict())
