"""RS003 clean: handles captured once at construction time."""

from repro.observability.registry import get_registry


class ColdTracker:
    def __init__(self) -> None:
        registry = get_registry()
        self._m_updates = registry.counter("tracker_updates_total")
        self._m_live = registry.gauge("tracker_live_items")
        self._m_flush = registry.histogram("tracker_flush_items")
        self._m_flush_timer = registry.timed("tracker_flush_seconds")
        self._items = 0

    def update(self, item: object) -> None:
        self._m_updates.inc()
        self._items += 1

    def flush(self) -> None:
        self._m_live.set(self._items)
        self._m_flush.observe(self._items)
        with self._m_flush_timer:
            self._items = 0


#: Module-level capture runs once at import time, which is fine too.
_M_PROCESS_CALLS = get_registry().counter("process_calls_total")


def process(items: list) -> None:
    _M_PROCESS_CALLS.inc()
