"""Tests for repro.parallel — sharded ingestion on §3.2 linearity.

The load-bearing property: a stream split into arbitrary shards, sketched
shard by shard with shared ``(depth, width, seed)``, and merged, is
*exactly* equal — counters, ``total_weight``, ``==`` — to the single-pass
sketch.  Every backend and both executors are held to it.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.parallel import (
    BACKENDS,
    iter_chunks,
    iter_file_chunks,
    parallel_sketch,
    parallel_topk,
    resolve_executor,
)
from repro.parallel import engine as engine_module
from repro.streams.io import write_stream_text
from repro.streams.zipf import ZipfStreamGenerator

ITEMS = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
)
STREAMS = st.lists(ITEMS, max_size=120)


def zipf_stream(n=20_000, m=1_000, seed=7):
    return list(ZipfStreamGenerator(m=m, z=1.0, seed=seed).generate(n))


class TestIterChunks:
    def test_chunk_sizes(self):
        chunks = list(iter_chunks(range(10), 4))
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_exact_multiple(self):
        chunks = list(iter_chunks(range(8), 4))
        assert [len(c) for c in chunks] == [4, 4]

    def test_empty(self):
        assert list(iter_chunks([], 4)) == []

    def test_lazy_over_generators(self):
        def gen():
            yield from range(6)

        chunks = iter_chunks(gen(), 2)
        assert next(chunks) == [0, 1]
        assert next(chunks) == [2, 3]

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(range(5), 0))

    def test_file_chunks(self, tmp_path):
        path = tmp_path / "stream.txt"
        write_stream_text(path, [1, 2, 3, 4, 5])
        chunks = list(iter_file_chunks(path, 2, as_int=True))
        assert chunks == [[1, 2], [3, 4], [5]]


class TestExecutorResolution:
    def test_one_worker_is_serial(self):
        assert resolve_executor(1) == "serial"

    def test_many_workers_prefer_fork(self):
        import multiprocessing

        expected = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "serial"
        )
        assert resolve_executor(4) == expected

    def test_forkless_platform_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(
            engine_module.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        assert resolve_executor(4) == "serial"
        # And the engine still produces the exact sketch through the
        # serial fallback.
        stream = zipf_stream(n=2_000, m=200)
        sketch, summary = parallel_sketch(
            stream, 3, 64, seed=1, n_workers=4, chunk_size=256
        )
        assert summary.executor == "serial"
        serial = CountSketch(3, 64, seed=1)
        serial.extend(stream)
        assert sketch == serial

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            parallel_sketch([1, 2], 3, 64, n_workers=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            parallel_sketch([1, 2], 3, 64, backend="gpu")


class TestExactMerge:
    """Bit-for-bit equality with the single-process sketch."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_matches_single_pass(self, backend, n_workers):
        stream = zipf_stream(n=10_000, m=500)
        sketch, summary = parallel_sketch(
            stream, 5, 128, seed=11, backend=backend,
            n_workers=n_workers, chunk_size=1024,
        )
        if backend == "vectorized":
            serial = VectorizedCountSketch(5, 128, seed=11)
        elif backend == "sparse":
            serial = SparseCountSketch(5, 128, seed=11)
        else:
            serial = CountSketch(5, 128, seed=11)
        serial.extend(stream)
        assert sketch == serial
        assert sketch.total_weight == serial.total_weight
        if backend == "sparse":
            assert sketch.to_dense() == serial.to_dense()
        else:
            assert np.array_equal(sketch.counters, serial.counters)
        assert summary.total_items == len(stream)
        assert summary.n_shards == 10

    def test_sparse_merge_agrees_with_dense(self):
        stream = zipf_stream(n=5_000, m=300)
        sparse, __ = parallel_sketch(
            stream, 3, 4096, seed=2, backend="sparse",
            n_workers=2, chunk_size=512,
        )
        dense = CountSketch(3, 4096, seed=2)
        dense.extend(stream)
        assert sparse.to_dense() == dense

    def test_mixed_item_types(self):
        stream = ([("flow", 1, 2)] * 50 + ["query"] * 30 + [42] * 20
                  + [3.5] * 10) * 5
        sketch, __ = parallel_sketch(
            stream, 3, 64, seed=4, n_workers=2, chunk_size=64
        )
        serial = CountSketch(3, 64, seed=4)
        serial.extend(stream)
        assert sketch == serial

    def test_empty_stream(self):
        sketch, summary = parallel_sketch([], 3, 64, seed=0, n_workers=4)
        assert sketch == CountSketch(3, 64, seed=0)
        assert sketch.total_weight == 0
        assert summary.n_shards == 0
        assert summary.total_items == 0


class TestShardSplitProperty:
    """Satellite: arbitrary shard splits merge to the single-pass sketch."""

    @settings(max_examples=25, deadline=None)
    @given(STREAMS, st.lists(st.integers(min_value=1, max_value=30),
                             max_size=6))
    def test_merge_and_add_equal_single_pass(self, items, cut_sizes):
        # Split the stream at arbitrary points into shards.
        shards, rest = [], list(items)
        for size in cut_sizes:
            shards.append(rest[:size])
            rest = rest[size:]
        shards.append(rest)

        whole = CountSketch(3, 32, seed=13)
        whole.extend(items)

        merged = CountSketch(3, 32, seed=13)
        added = CountSketch(3, 32, seed=13)
        for shard in shards:
            piece = CountSketch(3, 32, seed=13)
            piece.extend(shard)
            merged.merge(piece)
            added = added + piece
        assert merged == whole
        assert merged.total_weight == whole.total_weight
        assert added == whole
        assert added.total_weight == whole.total_weight

    @settings(max_examples=25, deadline=None)
    @given(STREAMS, st.lists(st.integers(min_value=1, max_value=30),
                             max_size=6))
    def test_sparse_and_vectorized_backends(self, items, cut_sizes):
        shards, rest = [], list(items)
        for size in cut_sizes:
            shards.append(rest[:size])
            rest = rest[size:]
        shards.append(rest)

        sparse_whole = SparseCountSketch(3, 32, seed=13)
        sparse_whole.extend(items)
        vec_whole = VectorizedCountSketch(3, 32, seed=13)
        vec_whole.extend(items)

        sparse_merged = SparseCountSketch(3, 32, seed=13)
        vec_merged = VectorizedCountSketch(3, 32, seed=13)
        for shard in shards:
            sparse_piece = SparseCountSketch(3, 32, seed=13)
            sparse_piece.extend(shard)
            sparse_merged.merge(sparse_piece)
            vec_piece = VectorizedCountSketch(3, 32, seed=13)
            vec_piece.extend(shard)
            vec_merged.merge(vec_piece)
        assert sparse_merged == sparse_whole
        assert sparse_merged.total_weight == sparse_whole.total_weight
        assert vec_merged == vec_whole
        assert vec_merged.total_weight == vec_whole.total_weight

    @settings(max_examples=15, deadline=None)
    @given(STREAMS, st.integers(min_value=1, max_value=40))
    def test_parallel_engine_equals_single_pass(self, items, chunk_size):
        whole = CountSketch(3, 32, seed=13)
        whole.extend(items)
        sketch, __ = parallel_sketch(
            items, 3, 32, seed=13, n_workers=1, chunk_size=chunk_size
        )
        assert sketch == whole
        assert sketch.total_weight == whole.total_weight


class TestParallelTopK:
    def test_matches_exact_heavy_hitters(self):
        stream = zipf_stream(n=20_000, m=1_000, seed=5)
        top, summary = parallel_topk(
            stream, 10, 5, 512, seed=3, n_workers=4, chunk_size=2048
        )
        exact = [item for item, __ in Counter(stream).most_common(10)]
        reported = [item for item, __ in top]
        # Zipf head at this width: the engine should recover the exact
        # top 10 almost perfectly; require at least 9/10 overlap.
        assert len(set(reported) & set(exact)) >= 9
        assert summary.total_items == len(stream)

    def test_serial_and_parallel_agree(self):
        stream = zipf_stream(n=10_000, m=500, seed=6)
        serial_top, __ = parallel_topk(
            stream, 5, 5, 256, seed=3, n_workers=1, chunk_size=1024
        )
        parallel_top, __ = parallel_topk(
            stream, 5, 5, 256, seed=3, n_workers=3, chunk_size=1024
        )
        # Identical chunking + exact merge => identical candidate union
        # and identical estimates, regardless of executor.
        assert serial_top == parallel_top

    def test_candidates_defaults_to_twice_k(self):
        stream = zipf_stream(n=2_000, m=100, seed=8)
        top, __ = parallel_topk(stream, 4, 3, 128, seed=1, chunk_size=500)
        assert len(top) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_topk([1], 0, 3, 64)
        with pytest.raises(ValueError):
            parallel_topk([1], 5, 3, 64, candidates=3)

    def test_estimates_come_from_merged_sketch(self):
        stream = ["a"] * 100 + ["b"] * 50 + ["c"] * 10
        top, __ = parallel_topk(
            stream, 2, 5, 256, seed=0, n_workers=2, chunk_size=40
        )
        assert top[0][0] == "a"
        assert top[0][1] == 100.0  # exact at this width
        assert top[1] == ("b", 50.0)

    def test_tracker_heap_semantics_preserved_serially(self):
        # The per-shard trackers mirror TopKTracker; over one shard the
        # candidate set matches a plain tracker fed aggregated counts.
        stream = ["x"] * 30 + ["y"] * 20 + ["z"] * 5
        top, __ = parallel_topk(
            stream, 2, 5, 256, seed=0, n_workers=1, chunk_size=1000
        )
        tracker = TopKTracker(4, depth=5, width=256, seed=0)
        for item, count in Counter(stream).items():
            tracker.update(item, count)
        tracker_items = {item for item, __ in tracker.top(2)}
        assert {item for item, __ in top} == tracker_items


class TestInstrumentation:
    def test_summary_fields(self):
        stream = zipf_stream(n=4_000, m=200, seed=9)
        sketch, summary = parallel_sketch(
            stream, 3, 64, seed=2, n_workers=2, chunk_size=1000
        )
        assert summary.backend == "dense"
        assert summary.n_workers == 2
        assert summary.chunk_size == 1000
        assert summary.n_shards == 4
        assert summary.total_items == 4_000
        assert summary.wall_seconds > 0
        assert summary.items_per_second > 0
        assert summary.merge_seconds >= 0
        assert len(summary.shards) == 4
        assert [s.shard for s in summary.shards] == [0, 1, 2, 3]
        for shard in summary.shards:
            assert shard.items == 1000
            assert shard.items_per_second > 0
            assert 0 < shard.counters_touched <= 3 * 64

    def test_sparse_counters_touched(self):
        stream = [1, 1, 2] * 10
        __, summary = parallel_sketch(
            stream, 3, 1 << 16, seed=2, backend="sparse", chunk_size=1000
        )
        # Two distinct items, three rows: at most 6 touched buckets.
        assert 0 < summary.shards[0].counters_touched <= 6
