"""Tests for ground-truth statistics and the quality metrics."""

from collections import Counter

import pytest

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import (
    approxtop_strong_ok,
    approxtop_weak_ok,
    average_relative_error,
    candidatetop_ok,
    max_absolute_error,
    precision_at_k,
    recall_at_k,
)


def stats_from(counts: dict) -> StreamStatistics:
    return StreamStatistics(counts=Counter(counts))


class TestStreamStatistics:
    def test_from_stream(self):
        stats = StreamStatistics(stream=["a", "b", "a"])
        assert stats.n == 3
        assert stats.m == 2
        assert stats.count("a") == 2

    def test_requires_input(self):
        with pytest.raises(ValueError):
            StreamStatistics()

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            StreamStatistics(counts=Counter({"a": -1}))

    def test_zero_counts_dropped(self):
        stats = stats_from({"a": 2, "b": 0})
        assert stats.m == 1

    def test_sorted_counts(self):
        stats = stats_from({"a": 3, "b": 7, "c": 1})
        assert stats.sorted_counts.tolist() == [7, 3, 1]

    def test_nk(self):
        stats = stats_from({"a": 3, "b": 7, "c": 1})
        assert stats.nk(1) == 7
        assert stats.nk(2) == 3
        assert stats.nk(3) == 1
        assert stats.nk(4) == 0  # fewer than 4 items

    def test_nk_validation(self):
        with pytest.raises(ValueError):
            stats_from({"a": 1}).nk(0)

    def test_frequency(self):
        stats = stats_from({"a": 3, "b": 1})
        assert stats.frequency("a") == 0.75
        assert stats.frequency("missing") == 0.0

    def test_top_k(self):
        stats = stats_from({"a": 3, "b": 7, "c": 1})
        assert stats.top_k(2) == [("b", 7), ("a", 3)]
        assert stats.top_k_items(2) == {"a", "b"}

    def test_second_moment(self):
        stats = stats_from({"a": 3, "b": 4})
        assert stats.second_moment() == 25.0

    def test_tail_second_moment(self):
        stats = stats_from({"a": 3, "b": 4, "c": 2})
        # sorted: 4, 3, 2; tail after k=1: 3^2 + 2^2 = 13
        assert stats.tail_second_moment(1) == 13.0
        assert stats.tail_second_moment(0) == 29.0
        assert stats.tail_second_moment(3) == 0.0
        assert stats.tail_second_moment(10) == 0.0

    def test_items_above(self):
        stats = stats_from({"a": 10, "b": 5, "c": 2})
        assert stats.items_above(5) == {"a", "b"}
        assert stats.items_above(100) == set()

    def test_gamma_pipeline(self):
        """tail_second_moment feeds Eq. 5 directly."""
        from repro.core.params import gamma

        stats = stats_from({"a": 8, "b": 6})
        assert gamma(stats.tail_second_moment(1), 4) == 3.0


class TestRecallPrecision:
    def test_recall_full(self):
        assert recall_at_k(["a", "b"], {"a", "b"}) == 1.0

    def test_recall_partial(self):
        assert recall_at_k(["a", "x"], {"a", "b"}) == 0.5

    def test_recall_empty_truth(self):
        assert recall_at_k(["a"], set()) == 1.0

    def test_precision(self):
        assert precision_at_k(["a", "x"], {"a", "b"}) == 0.5

    def test_precision_empty_reported(self):
        assert precision_at_k([], {"a"}) == 1.0


class TestApproxTopCriteria:
    def setup_method(self):
        # counts: a=100, b=90, c=50, d=10  => n_2 = 90
        self.stats = stats_from({"a": 100, "b": 90, "c": 50, "d": 10})

    def test_weak_ok_exact_answer(self):
        assert approxtop_weak_ok(["a", "b"], self.stats, k=2, epsilon=0.1)

    def test_weak_ok_boundary_item_allowed(self):
        # (1-0.5)*90 = 45 <= 50, so c may stand in.
        assert approxtop_weak_ok(["a", "c"], self.stats, k=2, epsilon=0.5)

    def test_weak_fails_on_low_frequency_item(self):
        assert not approxtop_weak_ok(["a", "d"], self.stats, k=2, epsilon=0.1)

    def test_weak_fails_on_short_list(self):
        assert not approxtop_weak_ok(["a"], self.stats, k=2, epsilon=0.1)

    def test_strong_requires_clearly_heavy_items(self):
        # (1+0.1)*90 = 99: only 'a' is mandatory.
        assert approxtop_strong_ok(["a", "c"], self.stats, k=2, epsilon=0.1)
        assert not approxtop_strong_ok(["b", "c"], self.stats, k=2,
                                       epsilon=0.1)

    def test_candidatetop_ok(self):
        assert candidatetop_ok(["a", "b", "x"], self.stats, k=2)
        assert not candidatetop_ok(["a", "c"], self.stats, k=2)

    def test_candidatetop_handles_ties(self):
        tied = stats_from({"a": 5, "b": 5, "c": 5, "d": 1})
        # Any two of the tied items satisfy CANDIDATETOP(k=2).
        assert candidatetop_ok(["a", "c"], tied, k=2)
        assert not candidatetop_ok(["a", "d"], tied, k=2)


class TestErrorMetrics:
    def test_average_relative_error(self):
        stats = stats_from({"a": 10, "b": 20})
        estimates = {"a": 11.0, "b": 18.0}
        assert average_relative_error(estimates, stats) == pytest.approx(
            (0.1 + 0.1) / 2
        )

    def test_average_relative_error_zero_truth(self):
        stats = stats_from({"a": 10})
        assert average_relative_error({"ghost": 3.0}, stats) == 3.0

    def test_average_relative_error_empty(self):
        assert average_relative_error({}, stats_from({"a": 1})) == 0.0

    def test_max_absolute_error(self):
        stats = stats_from({"a": 10, "b": 20})
        assert max_absolute_error({"a": 13.0, "b": 19.0}, stats) == 3.0

    def test_max_absolute_error_empty(self):
        assert max_absolute_error({}, stats_from({"a": 1})) == 0.0
