"""FrequencySketch behavior: touch/estimate, aging resets, persistence."""

from __future__ import annotations

import pytest

from repro.cache import FrequencySketch
from repro.core.topk import TopKTracker
from repro.store import StoreError, save


class TestTouchAndEstimate:
    def test_unseen_items_score_zero(self):
        oracle = FrequencySketch(1000, seed=2)
        assert oracle.estimate("never") == 0

    def test_singleton_scores_one_via_the_doorkeeper(self):
        oracle = FrequencySketch(1000, seed=2)
        oracle.touch("once")
        assert oracle.estimate("once") == 1
        # The occurrence was absorbed: the sketch itself saw nothing.
        assert oracle.sketch.total_weight == 0

    def test_repeats_accumulate_in_the_sketch(self):
        oracle = FrequencySketch(1000, seed=2)
        for _ in range(10):
            oracle.touch("hot")
        oracle.touch("warm")
        oracle.touch("warm")
        assert oracle.estimate("hot") == 10
        assert oracle.estimate("warm") == 2
        assert oracle.estimate("hot") > oracle.estimate("warm") > 0

    def test_samples_count_every_touch(self):
        oracle = FrequencySketch(1000, seed=2)
        for index in range(7):
            oracle.touch(index)
        assert oracle.samples == 7
        assert oracle.resets == 0

    def test_sample_size_must_be_positive(self):
        with pytest.raises(ValueError):
            FrequencySketch(0)


class TestAging:
    def test_watermark_triggers_the_reset(self):
        oracle = FrequencySketch(10, seed=4)
        for _ in range(10):
            oracle.touch("hot")
        assert oracle.resets == 1
        assert oracle.samples == 5  # halved, like the counters

    def test_reset_halves_counters_and_clears_the_doorkeeper(self):
        oracle = FrequencySketch(20, seed=4)
        for _ in range(19):
            oracle.touch("hot")
        before = oracle.estimate("hot")
        assert oracle.doorkeeper.ones > 0
        oracle.touch("hot")  # the watermark touch
        assert oracle.resets == 1
        assert oracle.doorkeeper.ones == 0
        # 19 sketched + the watermark touch = 20, halved to 10; the
        # estimate loses at most the floor-division rounding and the
        # cleared doorkeeper bit.
        after = oracle.estimate("hot")
        assert abs(after - before // 2) <= 1

    def test_aging_forgets_history_exponentially(self):
        oracle = FrequencySketch(50, seed=4)
        for _ in range(40):
            oracle.touch("old")
        for _ in range(200):
            oracle.touch("new")
        assert oracle.resets >= 3
        assert oracle.estimate("new") > oracle.estimate("old")


class TestPersistence:
    def test_roundtrip_restores_sketch_bit_for_bit(self, tmp_path):
        oracle = FrequencySketch(30, seed=6, doorkeeper_bits=256)
        for index in range(100):
            oracle.touch(index % 7)
        path = tmp_path / "admission.rcs"
        written = oracle.save(path)
        assert written > 0
        restored = FrequencySketch.load(path)
        assert restored.sketch == oracle.sketch
        assert restored.sample_size == oracle.sample_size
        assert restored.samples == oracle.samples
        assert restored.resets == oracle.resets
        assert restored.doorkeeper.num_bits == 256
        assert restored.doorkeeper.seed == 6

    def test_doorkeeper_starts_empty_after_load(self, tmp_path):
        oracle = FrequencySketch(1000, seed=6)
        for index in range(10):
            oracle.touch(index)
        assert oracle.doorkeeper.ones > 0
        path = tmp_path / "admission.rcs"
        oracle.save(path)
        restored = FrequencySketch.load(path)
        assert restored.doorkeeper.ones == 0

    def test_restored_estimates_match_sketched_mass(self, tmp_path):
        oracle = FrequencySketch(1000, seed=6)
        for _ in range(5):
            oracle.touch("hot")
        path = tmp_path / "admission.rcs"
        oracle.save(path)
        restored = FrequencySketch.load(path)
        # The doorkeeper bit (one occurrence) is the only epoch state
        # the snapshot drops.
        assert restored.estimate("hot") == oracle.estimate("hot") - 1

    def test_load_rejects_non_sketch_snapshots(self, tmp_path):
        path = tmp_path / "topk.rcs"
        save(TopKTracker(3, depth=4, width=64, seed=1), path)
        with pytest.raises(TypeError, match="TopKTracker"):
            FrequencySketch.load(path)

    def test_load_rejects_plain_sketch_snapshots(self, tmp_path):
        from repro.core.countsketch import CountSketch

        path = tmp_path / "plain.rcs"
        save(CountSketch(4, 64, seed=1), path)
        with pytest.raises(ValueError, match="cache_sample_size"):
            FrequencySketch.load(path)

    def test_load_missing_file_is_a_store_error(self, tmp_path):
        with pytest.raises((StoreError, OSError)):
            FrequencySketch.load(tmp_path / "nope.rcs")
