"""Jump-hash routing: scalar/vector parity, stability, minimal movement.

The coordinator's exactness never depends on *where* a record lands
(§3.2 linearity holds for any partition), but operational properties
do: the scalar and vectorized implementations must agree bit-for-bit,
routing must be a pure function of ``(key, n_shards)``, and growing the
fleet must move only ``1/(n+1)`` of the keyspace.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.routing import (
    MAX_SHARDS,
    jump_hash,
    jump_hash_array,
    partition_keys,
)
from repro.hashing.encode import encode_key
from repro.hashing.vectorized import encode_keys

U64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestScalar:
    def test_in_range_and_deterministic(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 1 << 63, size=200, dtype=np.uint64)
        for n in (1, 2, 3, 8, 100):
            for key in keys:
                shard = jump_hash(int(key), n)
                assert 0 <= shard < n
                assert shard == jump_hash(int(key), n)

    def test_single_shard_gets_everything(self):
        assert all(jump_hash(key, 1) == 0 for key in range(1000))

    @given(key=U64, n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_minimal_movement_growing_by_one(self, key, n):
        before = jump_hash(key, n)
        after = jump_hash(key, n + 1)
        # Jump hash's defining property: a key either stays put or moves
        # to the newly added shard -- never between existing shards.
        assert after == before or after == n

    def test_negative_and_wide_ints_wrap_mod_2_64(self):
        for raw in (-1, -12345, 1 << 80, (1 << 64) + 17):
            wrapped = raw & ((1 << 64) - 1)
            assert jump_hash(raw, 7) == jump_hash(wrapped, 7)

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError):
            jump_hash(1, 0)
        with pytest.raises(ValueError):
            jump_hash(1, MAX_SHARDS + 1)
        with pytest.raises(TypeError):
            jump_hash(1, True)
        with pytest.raises(TypeError):
            jump_hash(1, 2.0)

    def test_distribution_is_roughly_uniform(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 64, size=20_000, dtype=np.uint64)
        n = 8
        counts = np.bincount(jump_hash_array(keys, n), minlength=n)
        expected = len(keys) / n
        assert counts.min() > expected * 0.85
        assert counts.max() < expected * 1.15


class TestVectorParity:
    @given(
        keys=st.lists(U64, min_size=0, max_size=64),
        n=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_bit_equal_to_scalar(self, keys, n):
        array = np.array(keys, dtype=np.uint64)
        vector = jump_hash_array(array, n)
        assert vector.dtype == np.int64
        assert vector.tolist() == [jump_hash(k, n) for k in keys]

    def test_accepts_plain_items_via_encode_keys(self):
        items = [f"item-{i}" for i in range(100)]
        from_items = jump_hash_array(items, 5)
        from_keys = jump_hash_array(encode_keys(items), 5)
        assert from_items.tolist() == from_keys.tolist()
        assert from_items.tolist() == [
            jump_hash(encode_key(item), 5) for item in items
        ]

    def test_does_not_mutate_the_input_key_array(self):
        keys = np.arange(64, dtype=np.uint64)
        copy = keys.copy()
        jump_hash_array(keys, 9)
        assert np.array_equal(keys, copy)


class TestPartitionKeys:
    def test_covers_every_position_exactly_once_in_order(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 1 << 64, size=500, dtype=np.uint64)
        for n in (1, 2, 5):
            parts = partition_keys(keys, n)
            assert len(parts) == n
            for shard, positions in enumerate(parts):
                assert np.all(np.diff(positions) > 0) or positions.size <= 1
                assert all(
                    jump_hash(int(keys[p]), n) == shard for p in positions
                )
            everything = np.concatenate(parts)
            assert sorted(everything.tolist()) == list(range(len(keys)))
