"""Runner semantics: reports, probes, verification, skip accounting.

End-to-end runs stay short (sub-second) — what matters here is the
*accounting contract*: every sent record is either acknowledged, in a
tallied refusal, or in ``skipped``; never silently lost.  Exactness
under load gets its own probe assertions (§3.2 linearity end-to-end).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.coordinator import ClusterCoordinator
from repro.service import (
    AsyncServiceClient,
    QuotaExceededError,
    ServiceLimits,
    SketchServer,
)
from repro.traffic import TrafficReport, TrafficRunner, WorkloadSpec, percentile
from repro.traffic.runner import _records_applied, run_traffic


def run(coro):
    return asyncio.run(coro)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.0) == 10.0
        assert percentile(samples, 0.5) == 20.0
        assert percentile(samples, 0.75) == 30.0
        assert percentile(samples, 1.0) == 40.0

    def test_unsorted_input_ok(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_q_out_of_range_refused(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 1.5)


class TestRecordsApplied:
    def test_service_shape(self):
        assert _records_applied({"table": {"records_applied": 7}}) == 7

    def test_cluster_shape(self):
        payload = {"n_shards": 2, "shards": [
            {"shard": 0, "table": {"records_applied": 3}},
            {"shard": 1, "table": {"records_applied": 4}},
        ]}
        assert _records_applied(payload) == 7

    def test_unknown_shape_refused(self):
        with pytest.raises(ValueError, match="stats payload"):
            _records_applied({"mystery": 1})


class TestRunnerValidation:
    def test_bad_parameters_refused(self):
        spec = WorkloadSpec()
        with pytest.raises(ValueError, match="clients"):
            TrafficRunner(spec, clients=0)
        with pytest.raises(ValueError, match="duration"):
            TrafficRunner(spec, duration=0.0)
        with pytest.raises(ValueError, match="max_inflight"):
            TrafficRunner(spec, max_inflight=0)


class _FakeTarget:
    """Minimal async service surface with scripted behaviour."""

    def __init__(self, *, ingest_delay=0.0, refuse_ingest=False):
        self.ingest_delay = ingest_delay
        self.refuse_ingest = refuse_ingest
        self.applied = 0
        self.tables: set[str] = set()
        self.closed = False

    async def create_table(self, spec):
        self.tables.add(spec.name)

    async def drop_table(self, name):
        self.tables.discard(name)

    async def ingest(self, table, records, *, wait=False):
        if self.refuse_ingest:
            raise QuotaExceededError(
                "quota_exceeded", "table quota exhausted",
                {"table": table, "op_kind": "ingest", "retry_after": None})
        if self.ingest_delay:
            await asyncio.sleep(self.ingest_delay)
        self.applied += len(list(records))
        return len(list(records))

    async def estimate(self, table, items):
        return [0.0 for _ in items]

    async def stats(self, table=None):
        return {"table": {"records_applied": self.applied}}

    async def close(self):
        self.closed = True


class TestAgainstFakeTarget:
    def test_open_loop_counts_skips_instead_of_dropping(self):
        target = _FakeTarget(ingest_delay=0.05)
        spec = WorkloadSpec(tenants=1, arrival="poisson", rate=400.0,
                            query_fraction=0.0, batch_size=4, seed=1)
        runner = TrafficRunner(spec, clients=1, duration=0.4,
                               max_inflight=2)
        report = run(runner.run(lambda: target, probe=False, verify=False))
        # The fake applies ~0.05s per batch; a 400 ops/s open loop must
        # overflow a 2-deep inflight window, and every overflow is
        # visible in the report.
        assert report.skipped > 0
        assert report.records_acknowledged == target.applied

    def test_refusals_are_tallied_never_acknowledged(self):
        target = _FakeTarget(refuse_ingest=True)
        spec = WorkloadSpec(tenants=2, query_fraction=0.2, seed=2)
        runner = TrafficRunner(spec, clients=1, duration=0.2)
        report = run(runner.run(lambda: target, probe=False))
        assert report.errors.get("quota_exceeded", 0) > 0
        assert report.records_acknowledged == 0
        assert report.per_tenant_records == {}
        assert report.records_sent > 0
        # Nothing was applied, nothing acknowledged: still clean.
        assert report.verification["no_silent_drops"] is True

    def test_worker_clients_are_closed(self):
        targets = []

        def connect():
            target = _FakeTarget()
            targets.append(target)
            return target

        spec = WorkloadSpec(tenants=1, seed=3)
        runner = TrafficRunner(spec, clients=3, duration=0.1)
        run(runner.run(connect, probe=False, verify=False))
        assert len(targets) == 4  # 3 workers + 1 admin
        assert all(target.closed for target in targets)


class TestAgainstLiveServer:
    def test_closed_loop_report_contract(self):
        async def go():
            server = SketchServer()
            await server.start()
            try:
                spec = WorkloadSpec(tenants=2, keys_per_tenant=64,
                                    query_fraction=0.3, batch_size=8,
                                    seed=7, table_prefix="rt")
                report = await run_traffic(
                    lambda: AsyncServiceClient.in_process(server),
                    spec, clients=2, duration=0.4)
            finally:
                await server.stop()
            return report

        report = run(go())
        assert isinstance(report, TrafficReport)
        assert report.total_ops > 0
        assert report.errors == {}
        assert report.throughput > 0
        assert 0.0 < report.fairness_ratio <= 1.0
        assert report.records_acknowledged == report.records_sent
        for stats in report.latency.values():
            assert stats["p50_ms"] <= stats["p99_ms"] <= stats["p999_ms"]
        assert report.probe["bit_equal"] is True
        assert report.verification["no_silent_drops"] is True
        payload = report.to_dict()
        assert payload["spec"]["table_prefix"] == "rt"
        assert payload["throughput_ops_per_s"] == report.throughput

    def test_quota_refusals_reach_the_report(self):
        async def go():
            limits = ServiceLimits(ingest_rate=50.0, ingest_burst=64.0)
            server = SketchServer(limits=limits)
            await server.start()
            try:
                spec = WorkloadSpec(tenants=1, query_fraction=0.0,
                                    batch_size=16, seed=7,
                                    table_prefix="q")
                report = await run_traffic(
                    lambda: AsyncServiceClient.in_process(server),
                    spec, clients=2, duration=0.4, probe=False)
            finally:
                await server.stop()
            return report

        report = run(go())
        assert report.errors.get("quota_exceeded", 0) > 0
        # Refused batches never count as acknowledged, and everything
        # acknowledged was applied.
        assert report.records_acknowledged < report.records_sent
        assert report.verification["no_silent_drops"] is True

    def test_cluster_target_and_shard_stats_shape(self):
        async def go():
            servers = [SketchServer() for _ in range(2)]
            cluster = ClusterCoordinator.in_process(servers)
            try:
                spec = WorkloadSpec(tenants=2, keys_per_tenant=32,
                                    query_fraction=0.2, batch_size=8,
                                    seed=7, table_prefix="cl")
                runner = TrafficRunner(spec, clients=2, duration=0.3)
                report = await runner.run(lambda: cluster)
            finally:
                for server in servers:
                    await server.stop()
            return report

        report = run(go())
        assert report.total_ops > 0
        assert report.probe["bit_equal"] is True
        assert report.verification["no_silent_drops"] is True

    def test_setup_false_reuses_existing_tables(self):
        async def go():
            server = SketchServer()
            await server.start()
            try:
                spec = WorkloadSpec(tenants=1, keys_per_tenant=32,
                                    query_fraction=0.0, batch_size=4,
                                    seed=7, table_prefix="pre")
                admin = AsyncServiceClient.in_process(server)
                await admin.create_table(spec.table_spec("pre0"))
                await admin.ingest("pre0", [(1, 5)], wait=True)
                await admin.close()
                runner = TrafficRunner(spec, clients=1, duration=0.2)
                report = await runner.run(
                    lambda: AsyncServiceClient.in_process(server),
                    setup=False, probe=False)
            finally:
                await server.stop()
            return report

        report = run(go())
        # The pre-run record is in the baseline, so verification only
        # accounts for this run's acknowledged records.
        assert report.verification["no_silent_drops"] is True
