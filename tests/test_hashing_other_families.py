"""Tests for multiply-shift, tabulation, bucket, and sign hashing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bucket import BucketHash, BucketHashFamily
from repro.hashing.mersenne import KWiseFamily, PolynomialHash
from repro.hashing.multiply_shift import MultiplyShiftFamily, MultiplyShiftHash
from repro.hashing.sign import SignHash, SignHashFamily
from repro.hashing.tabulation import TabulationFamily

KEYS = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestMultiplyShift:
    def test_range_size(self):
        h = MultiplyShiftHash(3, 0, out_bits=8)
        assert h.range_size == 256

    @given(KEYS)
    def test_output_in_range(self, key):
        h = MultiplyShiftFamily(out_bits=10, seed=1).draw(1)[0]
        assert 0 <= h(key) < 1024

    def test_even_multiplier_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            MultiplyShiftHash(4, 0, out_bits=8)

    def test_out_bits_bounds(self):
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, 0, out_bits=0)
        with pytest.raises(ValueError):
            MultiplyShiftHash(3, 0, out_bits=65)

    def test_family_deterministic(self):
        a = MultiplyShiftFamily(out_bits=8, seed=2).draw(3)
        b = MultiplyShiftFamily(out_bits=8, seed=2).draw(3)
        assert a == b

    def test_family_draws_odd_multipliers(self):
        for h in MultiplyShiftFamily(out_bits=8, seed=3).draw(20):
            assert h._multiplier % 2 == 1

    def test_distribution_roughly_uniform(self):
        h = MultiplyShiftFamily(out_bits=4, seed=5).draw(1)[0]
        buckets = [0] * 16
        for key in range(16_000):
            buckets[h(key)] += 1
        expected = 1000
        for count in buckets:
            assert abs(count - expected) < 6 * expected**0.5


class TestTabulation:
    def test_deterministic(self):
        h = TabulationFamily(seed=1).draw(1)[0]
        assert h(12345) == h(12345)

    @given(KEYS)
    def test_output_in_range(self, key):
        h = TabulationFamily(seed=2).draw(1)[0]
        assert 0 <= h(key) < (1 << 64)

    def test_family_deterministic(self):
        a = TabulationFamily(seed=3).draw(1)[0]
        b = TabulationFamily(seed=3).draw(1)[0]
        assert a(999) == b(999)

    def test_different_functions_differ(self):
        h1, h2 = TabulationFamily(seed=4).draw(2)
        disagreements = sum(1 for key in range(100) if h1(key) != h2(key))
        assert disagreements > 90

    def test_single_byte_change_changes_hash(self):
        h = TabulationFamily(seed=5).draw(1)[0]
        assert h(0x01) != h(0x0100)

    def test_xor_structure(self):
        """h(a) ^ h(b) ^ h(a^b) ^ h(0) == 0 when a, b touch disjoint bytes
        (the defining linearity of tabulation hashing)."""
        h = TabulationFamily(seed=6).draw(1)[0]
        a, b = 0xAB, 0xCD00  # disjoint byte positions
        assert h(a) ^ h(b) ^ h(a ^ b) ^ h(0) == 0


class TestBucketHash:
    def test_reduces_range(self):
        base = PolynomialHash((5, 3))
        h = BucketHash(base, buckets=10)
        assert h.range_size == 10
        for key in range(100):
            assert 0 <= h(key) < 10

    def test_matches_mod(self):
        base = PolynomialHash((5, 3))
        h = BucketHash(base, buckets=7)
        for key in (0, 1, 99, 12345):
            assert h(key) == base(key) % 7

    def test_bucket_count_validation(self):
        with pytest.raises(ValueError):
            BucketHash(PolynomialHash((1, 2)), buckets=0)

    def test_base_range_must_cover_buckets(self):
        tiny = BucketHash(PolynomialHash((1, 2)), buckets=2)  # fine
        assert tiny.range_size == 2
        with pytest.raises(ValueError):
            BucketHash(tiny, buckets=5)

    def test_equality(self):
        base = PolynomialHash((5, 3))
        assert BucketHash(base, 10) == BucketHash(base, 10)
        assert BucketHash(base, 10) != BucketHash(base, 11)

    def test_family_draws_distinct_functions(self):
        family = BucketHashFamily(KWiseFamily(seed=1), buckets=16)
        h1, h2 = family.draw(2)
        assert h1 != h2

    def test_family_bucket_validation(self):
        with pytest.raises(ValueError):
            BucketHashFamily(KWiseFamily(seed=1), buckets=0)

    def test_bucket_distribution_uniform(self):
        family = BucketHashFamily(KWiseFamily(seed=9), buckets=8)
        h = family.draw(1)[0]
        buckets = [0] * 8
        for key in range(8000):
            buckets[h(key)] += 1
        for count in buckets:
            assert abs(count - 1000) < 6 * 1000**0.5


class TestSignHash:
    def test_values_are_plus_minus_one(self):
        s = SignHashFamily(KWiseFamily(seed=1)).draw(1)[0]
        assert {s(key) for key in range(1000)} == {-1, 1}

    def test_deterministic(self):
        s = SignHashFamily(KWiseFamily(seed=2)).draw(1)[0]
        assert s(42) == s(42)

    def test_range_size(self):
        s = SignHash(PolynomialHash((1, 2)))
        assert s.range_size == 2

    def test_balance(self):
        """Signs should be roughly balanced over many keys."""
        s = SignHashFamily(KWiseFamily(seed=3)).draw(1)[0]
        total = sum(s(key) for key in range(10_000))
        assert abs(total) < 600  # ~6 sigma for fair signs

    def test_pairwise_balance_over_functions(self):
        """E[s(x)·s(y)] ≈ 0 for fixed x != y over random functions —
        the pairwise independence the variance analysis needs."""
        functions = SignHashFamily(KWiseFamily(seed=4)).draw(4000)
        total = sum(s(111) * s(222) for s in functions)
        assert abs(total) < 6 * 4000**0.5

    def test_equality(self):
        base = PolynomialHash((1, 2))
        assert SignHash(base) == SignHash(base)
        assert SignHash(base) != SignHash(PolynomialHash((1, 3)))

    def test_base_range_validation(self):
        constant = PolynomialHash((0,))

        class UnitRange:
            range_size = 1

            def __call__(self, key):
                return 0

        with pytest.raises(ValueError):
            SignHash(UnitRange())
        # A constant polynomial still has range p, so it is accepted.
        assert SignHash(constant)(5) in (-1, 1)
