"""Multi-tenant hardening: quotas, fair draining, connection caps.

The hardening contract (ISSUE 10): every limit is off by default, every
refusal is an explicit documented wire error (``quota_exceeded`` /
``overloaded``) and all-or-nothing — an acknowledged write is never
silently dropped, and estimates stay bit-equal to an offline summary
over the acknowledged prefix whatever the limits are doing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.observability.registry import MetricsRegistry
from repro.service.client import (
    AsyncServiceClient,
    OverloadedError,
    QuotaExceededError,
    ServiceError,
)
from repro.service.limits import (
    ServiceLimits,
    TableQuotaExceededError,
    TokenBucket,
    WeightedFairScheduler,
)
from repro.service.server import SketchServer
from repro.service.tables import TableSpec


def spec_for(name: str = "t") -> TableSpec:
    return TableSpec(name, kind="sketch", depth=4, width=128, seed=3)


def run(coro):
    return asyncio.run(coro)


class FakeClock:
    """Deterministic injectable clock for bucket tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_refuses_past_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        assert bucket.tokens == 5.0
        assert bucket.try_take(5)
        assert not bucket.try_take(1)

    def test_take_is_all_or_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        assert bucket.try_take(3)
        assert not bucket.try_take(3)  # only 2 left; nothing consumed
        assert bucket.try_take(2)

    def test_continuous_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        assert bucket.try_take(5)
        clock.advance(0.25)  # 2.5 tokens back
        assert not bucket.try_take(3)
        assert bucket.try_take(2)
        clock.advance(100.0)  # refill clamps at burst
        assert not bucket.try_take(6)
        assert bucket.try_take(5)

    def test_retry_after_is_exact_or_none(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 5.0, clock=clock)
        assert bucket.retry_after(5) == 0.0
        assert bucket.try_take(5)
        assert bucket.retry_after(3) == pytest.approx(0.3)
        # More than burst can never be granted: no finite retry time.
        assert bucket.retry_after(6) is None

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(0.0, 5.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(10.0, 0.0)


class TestWeightedFairScheduler:
    def test_budget_is_quantum_times_weight(self):
        scheduler = WeightedFairScheduler(64)
        scheduler.register("a", 1)
        scheduler.register("b", 3)
        assert scheduler.budget("a") == 64
        assert scheduler.budget("b") == 192

    def test_turns_granted_in_fifo_order(self):
        async def go():
            scheduler = WeightedFairScheduler(10)
            scheduler.register("a", 1)
            scheduler.register("b", 2)
            order: list[str] = []

            async def take(name: str) -> None:
                budget = await scheduler.acquire(name)
                order.append(name)
                assert budget == scheduler.budget(name)
                await asyncio.sleep(0)
                scheduler.release(name)

            first = asyncio.ensure_future(take("a"))
            await asyncio.sleep(0)  # "a" holds the turn
            second = asyncio.ensure_future(take("b"))
            third = asyncio.ensure_future(take("a"))
            await asyncio.gather(first, second, third)
            assert order == ["a", "b", "a"]

        run(go())

    def test_cancelled_waiter_wakes_the_next(self):
        async def go():
            scheduler = WeightedFairScheduler(10)
            scheduler.register("a", 1)
            scheduler.register("b", 1)
            await scheduler.acquire("a")
            waiter = asyncio.ensure_future(scheduler.acquire("b"))
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            scheduler.release("a")
            # The queue must not be wedged by the cancelled waiter.
            assert await asyncio.wait_for(
                scheduler.acquire("a"), timeout=1.0) == 10

        run(go())

    def test_forget_removes_queued_turn(self):
        async def go():
            scheduler = WeightedFairScheduler(10)
            scheduler.register("a", 1)
            scheduler.register("b", 1)
            await scheduler.acquire("a")
            scheduler.forget("b")
            scheduler.release("a")
            assert await asyncio.wait_for(
                scheduler.acquire("a"), timeout=1.0) == 10

        run(go())


class TestServiceLimits:
    def test_default_is_inert(self):
        limits = ServiceLimits()
        assert not limits.enabled
        assert limits.ingest_bucket() is None
        assert limits.query_bucket() is None

    def test_roundtrip_and_canonical_weights(self):
        limits = ServiceLimits(
            max_connections=8, ingest_rate=100.0, ingest_burst=200,
            query_rate=50.0, fair_quantum=64,
            weights=(("zz", 2), ("aa", 5)),
        )
        assert limits.enabled
        assert limits.weights == (("aa", 5), ("zz", 2))
        assert limits.weight_for("aa") == 5
        assert limits.weight_for("unlisted") == 1
        assert ServiceLimits.from_dict(limits.to_dict()) == limits

    def test_default_burst_is_one_second_of_rate(self):
        limits = ServiceLimits(ingest_rate=100.0)
        bucket = limits.ingest_bucket()
        assert bucket is not None
        assert bucket.burst == 100.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_connections"):
            ServiceLimits(max_connections=0)
        with pytest.raises(ValueError, match="ingest_rate"):
            ServiceLimits(ingest_rate=-1.0)
        with pytest.raises(ValueError, match="requires ingest_rate"):
            ServiceLimits(ingest_burst=10)
        with pytest.raises(ValueError, match="duplicate"):
            ServiceLimits(weights=(("a", 1), ("a", 2)))
        with pytest.raises(ValueError, match="unknown limits field"):
            ServiceLimits.from_dict({"velocity": 9})


class TestIngestQuota:
    def test_refusal_is_explicit_all_or_nothing_and_metered(self):
        async def go():
            registry = MetricsRegistry()
            limits = ServiceLimits(ingest_rate=1000.0, ingest_burst=10)
            server = SketchServer([spec_for()], limits=limits,
                                  registry=registry)
            client = AsyncServiceClient.in_process(server)
            await client.ingest("t", [(f"k{i}", 1) for i in range(10)])
            with pytest.raises(QuotaExceededError) as excinfo:
                await client.ingest(
                    "t", [(f"q{i}", 1) for i in range(8)])
            details = excinfo.value.details
            assert details["table"] == "t"
            assert details["op_kind"] == "ingest"
            assert details["retry_after"] > 0
            counter = registry.counter(
                "service_quota_t_ingest_refusals_total")
            assert counter.value == 1
            # The refused batch contributed nothing.
            estimates = await client.estimate(
                "t", [f"q{i}" for i in range(8)])
            offline = spec_for().build()
            for i in range(10):
                offline.update(f"k{i}", 1)
            assert estimates == [
                float(offline.estimate(f"q{i}")) for i in range(8)
            ]
            await server.stop()

        run(go())

    def test_batch_larger_than_burst_has_no_retry_after(self):
        async def go():
            limits = ServiceLimits(ingest_rate=1000.0, ingest_burst=4)
            server = SketchServer([spec_for()], limits=limits)
            client = AsyncServiceClient.in_process(server)
            with pytest.raises(QuotaExceededError) as excinfo:
                await client.ingest(
                    "t", [(f"k{i}", 1) for i in range(5)])
            assert "retry_after" not in excinfo.value.details
            assert "split the batch" in str(excinfo.value)
            await server.stop()

        run(go())

    def test_quota_refusal_is_not_retried_as_overloaded(self):
        async def go():
            limits = ServiceLimits(ingest_rate=1000.0, ingest_burst=4)
            server = SketchServer([spec_for()], limits=limits)
            client = AsyncServiceClient.in_process(server)
            batches = [[(f"k{i}", 1) for i in range(5)]]
            with pytest.raises(QuotaExceededError):
                await client.ingest_many("t", batches)
            await server.stop()

        run(go())


class TestQueryQuota:
    def test_queries_charged_and_refused(self):
        async def go():
            registry = MetricsRegistry()
            limits = ServiceLimits(query_rate=1000.0, query_burst=2)
            server = SketchServer([spec_for()], limits=limits,
                                  registry=registry)
            client = AsyncServiceClient.in_process(server)
            await client.estimate("t", ["a"])
            await client.estimate("t", ["b"])
            with pytest.raises(QuotaExceededError) as excinfo:
                await client.estimate("t", ["c"])
            assert excinfo.value.details["op_kind"] == "query"
            counter = registry.counter(
                "service_quota_t_query_refusals_total")
            assert counter.value == 1
            # Ingest is not charged against the query bucket.
            await client.ingest("t", [("a", 1)], wait=True)
            await server.stop()

        run(go())


class TestFairScheduling:
    def test_weighted_appliers_drain_everything_exactly(self):
        async def go():
            specs = [spec_for("a"), spec_for("b")]
            limits = ServiceLimits(fair_quantum=8, weights=(("b", 4),))
            registry = MetricsRegistry()
            server = SketchServer(specs, limits=limits,
                                  registry=registry)
            client = AsyncServiceClient.in_process(server)
            offline = {name: spec_for(name).build() for name in "ab"}
            for round_index in range(10):
                for name in "ab":
                    records = [
                        (f"{name}{round_index}-{i}", 1) for i in range(20)
                    ]
                    await client.ingest(name, records)
                    for item, count in records:
                        offline[name].update(item, count)
            for name in "ab":
                probes = [f"{name}0-{i}" for i in range(20)]
                live = await client.estimate(name, probes)
                assert live == [
                    float(offline[name].estimate(p)) for p in probes
                ]
                stats = await client.stats(name)
                assert stats["table"]["records_applied"] == 200
                turns = registry.counter(
                    f"service_quota_{name}_fair_turns_total")
                assert turns.value > 0
            await server.stop()

        run(go())


class TestConnectionCap:
    def test_excess_connection_gets_one_overloaded_frame(self):
        async def go():
            limits = ServiceLimits(max_connections=2)
            registry = MetricsRegistry()
            server = SketchServer([spec_for()], limits=limits,
                                  registry=registry)
            host, port = await server.start("127.0.0.1", 0)
            first = await AsyncServiceClient.connect(host, port)
            second = await AsyncServiceClient.connect(host, port)
            await first.ping()
            await second.ping()
            third = await AsyncServiceClient.connect(host, port)
            with pytest.raises(OverloadedError) as excinfo:
                await third.ping()
            assert excinfo.value.details["open_connections"] == 2
            await third.close()
            # Established connections are unaffected, and a freed slot
            # is reusable.
            await first.ping()
            await first.close()
            await asyncio.sleep(0.05)
            fourth = await AsyncServiceClient.connect(host, port)
            await fourth.ping()
            shed = registry.counter("service_shed_connections_total")
            assert shed.value == 1
            await fourth.close()
            await second.close()
            await server.stop()

        run(go())


class TestManifestPinning:
    def test_limits_pinned_and_adopted_on_resume(self, tmp_path):
        async def go():
            limits = ServiceLimits(ingest_rate=500.0, fair_quantum=32)
            server = SketchServer([spec_for()], limits=limits,
                                  checkpoint_dir=tmp_path)
            client = AsyncServiceClient.in_process(server)
            await client.ingest("t", [("a", 1)], wait=True)
            await server.stop()
            # None adopts the pinned limits.
            resumed = SketchServer(checkpoint_dir=tmp_path)
            assert resumed.limits == limits
            await resumed.stop()

        run(go())

    def test_explicit_limits_override_and_repin(self, tmp_path):
        async def go():
            server = SketchServer(
                [spec_for()],
                limits=ServiceLimits(ingest_rate=500.0),
                checkpoint_dir=tmp_path,
            )
            await server.stop()
            override = ServiceLimits(ingest_rate=900.0)
            tuned = SketchServer(checkpoint_dir=tmp_path,
                                 limits=override)
            assert tuned.limits == override
            await tuned.stop()
            adopted = SketchServer(checkpoint_dir=tmp_path)
            assert adopted.limits == override
            await adopted.stop()

        run(go())

    def test_unlimited_server_pins_nothing(self, tmp_path):
        async def go():
            server = SketchServer([spec_for()],
                                  checkpoint_dir=tmp_path)
            await server.stop()
            manifest = (tmp_path / "service.json").read_text()
            assert "limits" not in manifest
            resumed = SketchServer(checkpoint_dir=tmp_path)
            assert not resumed.limits.enabled
            await resumed.stop()

        run(go())

    def test_corrupt_pinned_limits_refused(self, tmp_path):
        import json

        from repro.store.format import StoreError

        async def go():
            server = SketchServer(
                [spec_for()],
                limits=ServiceLimits(ingest_rate=500.0),
                checkpoint_dir=tmp_path,
            )
            await server.stop()
            path = tmp_path / "service.json"
            manifest = json.loads(path.read_text())
            manifest["limits"] = {"velocity": 9}
            path.write_text(json.dumps(manifest))
            with pytest.raises(StoreError, match="limits"):
                SketchServer(checkpoint_dir=tmp_path)

        run(go())


class TestStatsExposure:
    def test_limits_and_quota_state_in_stats(self):
        async def go():
            limits = ServiceLimits(ingest_rate=100.0, query_rate=50.0,
                                   max_connections=4)
            server = SketchServer([spec_for()], limits=limits)
            client = AsyncServiceClient.in_process(server)
            stats = await client.stats()
            assert stats["server"]["limits"] == limits.to_dict()
            table = stats["tables"]["t"]
            assert table["ingest_quota"] == {"rate": 100.0,
                                             "burst": 100.0}
            assert table["query_quota"] == {"rate": 50.0, "burst": 50.0}
            await server.stop()

        run(go())

    def test_unlimited_stats_omit_limit_keys(self):
        async def go():
            server = SketchServer([spec_for()])
            client = AsyncServiceClient.in_process(server)
            stats = await client.stats()
            assert "limits" not in stats["server"]
            assert "ingest_quota" not in stats["tables"]["t"]
            await server.stop()

        run(go())


class TestTableQuotaExceededError:
    def test_message_carries_retry_guidance(self):
        error = TableQuotaExceededError("t", "ingest", 12, 0.5)
        assert error.retry_after == 0.5
        assert "retry" in str(error)
        hopeless = TableQuotaExceededError("t", "ingest", 1000, None)
        assert hopeless.retry_after is None
        assert "split the batch" in str(hopeless)
