"""Tests for repro.core.candidate_top — CANDIDATETOP via the tracker."""

import pytest

from repro.core.candidate_top import CandidateTopTracker, candidate_list_size


class TestCandidateListSize:
    def test_formula(self):
        # l = k / (1-eps)^(1/z), rounded up
        assert candidate_list_size(10, 0.5, 1.0) == 21  # 10/0.5 = 20 -> 21

    def test_at_least_k(self):
        assert candidate_list_size(10, 0.01, 2.0) >= 10

    def test_larger_epsilon_needs_longer_list(self):
        assert candidate_list_size(10, 0.5, 1.0) >= candidate_list_size(
            10, 0.1, 1.0
        )

    def test_smaller_z_needs_longer_list(self):
        assert candidate_list_size(10, 0.5, 0.5) >= candidate_list_size(
            10, 0.5, 2.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            candidate_list_size(0, 0.5, 1.0)
        with pytest.raises(ValueError):
            candidate_list_size(10, 0.0, 1.0)
        with pytest.raises(ValueError):
            candidate_list_size(10, 1.0, 1.0)
        with pytest.raises(ValueError):
            candidate_list_size(10, 0.5, 0.0)


class TestTracker:
    def test_default_l_is_2k(self):
        tracker = CandidateTopTracker(5, depth=3, width=64)
        assert tracker.l == 10

    def test_l_below_k_rejected(self):
        with pytest.raises(ValueError):
            CandidateTopTracker(5, l=4, depth=3, width=64)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CandidateTopTracker(0, depth=3, width=64)

    def test_candidates_has_l_entries(self, zipf_stream):
        tracker = CandidateTopTracker(5, l=15, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        assert len(tracker.candidates()) == 15
        assert tracker.items_stored() == 15

    def test_top_returns_k(self, zipf_stream):
        tracker = CandidateTopTracker(5, l=15, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        assert len(tracker.top()) == 5

    def test_candidates_contain_true_top_k(self, zipf_stream, zipf_stats):
        tracker = CandidateTopTracker(10, l=20, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        candidate_items = {item for item, __ in tracker.candidates()}
        assert zipf_stats.top_k_items(10) <= candidate_items

    def test_refine_returns_exact_top_k(self, zipf_stream, zipf_stats):
        tracker = CandidateTopTracker(10, l=20, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        refined = tracker.refine(zipf_stream)
        assert len(refined) == 10
        # Second pass yields exact counts and the true top k, in order.
        expected = zipf_stats.top_k(10)
        assert refined == expected

    def test_refine_counts_are_exact(self, zipf_stream, zipf_counts):
        tracker = CandidateTopTracker(5, l=10, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        for item, count in tracker.refine(zipf_stream):
            assert count == zipf_counts[item]

    def test_counters_used_includes_candidates(self):
        tracker = CandidateTopTracker(5, l=10, depth=2, width=16, seed=0)
        tracker.update("a")
        assert tracker.counters_used() == 2 * 16 + 1

    def test_sketch_property(self):
        tracker = CandidateTopTracker(5, depth=3, width=64, seed=0)
        assert tracker.sketch.depth == 3

    def test_repr(self):
        assert "k=5" in repr(CandidateTopTracker(5, depth=3, width=64))
