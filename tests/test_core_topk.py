"""Tests for repro.core.topk — the §3.2 APPROXTOP tracker."""

import pytest

from repro.analysis.metrics import recall_at_k
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker


class TestConstruction:
    def test_with_dimensions(self):
        tracker = TopKTracker(5, depth=3, width=32)
        assert tracker.k == 5
        assert tracker.sketch.depth == 3
        assert tracker.sketch.width == 32

    def test_with_explicit_sketch(self):
        sketch = CountSketch(3, 32, seed=1)
        tracker = TopKTracker(5, sketch=sketch)
        assert tracker.sketch is sketch

    def test_sketch_and_dimensions_mutually_exclusive(self):
        with pytest.raises(ValueError):
            TopKTracker(5, sketch=CountSketch(3, 32), depth=3)

    def test_missing_dimensions(self):
        with pytest.raises(ValueError):
            TopKTracker(5)
        with pytest.raises(ValueError):
            TopKTracker(5, depth=3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKTracker(0, depth=3, width=32)


class TestUpdates:
    def test_single_heavy_item(self):
        tracker = TopKTracker(3, depth=3, width=64, seed=0)
        for _ in range(50):
            tracker.update("heavy")
        top = tracker.top()
        assert top[0][0] == "heavy"
        assert top[0][1] == 50.0

    def test_heap_fills_up_to_k(self):
        tracker = TopKTracker(3, depth=3, width=64, seed=0)
        for item in ("a", "b", "c"):
            tracker.update(item)
        assert len(tracker.top()) == 3

    def test_heap_never_exceeds_k(self):
        tracker = TopKTracker(3, depth=3, width=64, seed=0)
        for item in range(20):
            tracker.update(item)
        assert tracker.items_stored() == 3
        assert len(tracker.top(100)) == 3

    def test_eviction_of_smallest(self):
        tracker = TopKTracker(2, depth=5, width=256, seed=0)
        for _ in range(10):
            tracker.update("big")
        for _ in range(5):
            tracker.update("mid")
        tracker.update("small")
        # 'small' (est 1) must not displace 'big' or 'mid'.
        items = [item for item, __ in tracker.top()]
        assert items == ["big", "mid"]

    def test_recurring_item_gets_exact_increments(self):
        tracker = TopKTracker(2, depth=5, width=256, seed=0)
        for _ in range(7):
            tracker.update("x")
        assert tracker.top()[0] == ("x", 7.0)

    def test_weighted_update(self):
        tracker = TopKTracker(2, depth=5, width=256, seed=0)
        tracker.update("x", 40)
        tracker.update("x", 2)
        assert tracker.top()[0] == ("x", 42.0)

    def test_nonpositive_count_rejected(self):
        tracker = TopKTracker(2, depth=3, width=32)
        with pytest.raises(ValueError):
            tracker.update("x", 0)
        with pytest.raises(ValueError):
            tracker.update("x", -1)

    def test_items_processed(self):
        tracker = TopKTracker(2, depth=3, width=32, seed=0)
        tracker.update("a")
        tracker.update("b", 4)
        assert tracker.items_processed == 5

    def test_contains(self):
        tracker = TopKTracker(2, depth=3, width=32, seed=0)
        tracker.update("a")
        assert "a" in tracker
        assert "b" not in tracker


class TestQueries:
    def test_top_sorted_descending(self):
        tracker = TopKTracker(5, depth=5, width=256, seed=0)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            tracker.update(item, count)
        counts = [c for __, c in tracker.top()]
        assert counts == sorted(counts, reverse=True)

    def test_top_prefix(self):
        tracker = TopKTracker(5, depth=5, width=256, seed=0)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            tracker.update(item, count)
        assert len(tracker.top(2)) == 2
        assert tracker.top(2)[0][0] == "a"

    def test_top_negative_rejected(self):
        tracker = TopKTracker(2, depth=3, width=32)
        with pytest.raises(ValueError):
            tracker.top(-1)

    def test_estimate_heap_member_is_tracked_count(self):
        tracker = TopKTracker(2, depth=5, width=256, seed=0)
        for _ in range(9):
            tracker.update("x")
        assert tracker.estimate("x") == 9.0

    def test_estimate_non_member_falls_back_to_sketch(self):
        tracker = TopKTracker(1, depth=5, width=256, seed=0)
        tracker.update("big", 100)
        tracker.update("small")  # not in heap (k=1)
        assert "small" not in tracker
        assert tracker.estimate("small") == pytest.approx(1.0)

    def test_counters_used(self):
        tracker = TopKTracker(3, depth=2, width=10, seed=0)
        tracker.update("a")
        assert tracker.counters_used() == 2 * 10 + 1


class TestEndToEnd:
    def test_recovers_true_top_k_on_zipf(self, zipf_stream, zipf_stats):
        tracker = TopKTracker(10, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, zipf_stats.top_k_items(10)) >= 0.9

    def test_tracked_counts_close_to_truth(self, zipf_stream, zipf_stats):
        tracker = TopKTracker(10, depth=5, width=256, seed=1)
        for item in zipf_stream:
            tracker.update(item)
        for item, count in tracker.top():
            true = zipf_stats.count(item)
            assert abs(count - true) <= 0.05 * true + 3

    def test_reestimate_policy_also_works(self, zipf_stream, zipf_stats):
        tracker = TopKTracker(
            10, depth=5, width=256, seed=1, exact_heap_counts=False
        )
        for item in zipf_stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, zipf_stats.top_k_items(10)) >= 0.8

    def test_deterministic_given_seed(self, zipf_stream):
        def run():
            tracker = TopKTracker(5, depth=5, width=128, seed=9)
            for item in zipf_stream:
                tracker.update(item)
            return tracker.top()

        assert run() == run()

    def test_order_independence_of_sketch_but_heap_sees_order(self):
        """The sketch is order-independent; the heap is deterministic
        given the order.  Same multiset, different order: the final sketch
        states agree exactly."""
        items = ["a"] * 5 + ["b"] * 3 + ["c"] * 2
        t1 = TopKTracker(2, depth=3, width=64, seed=4)
        t2 = TopKTracker(2, depth=3, width=64, seed=4)
        for item in items:
            t1.update(item)
        for item in reversed(items):
            t2.update(item)
        assert t1.sketch == t2.sketch
