"""Frame-level tests for the versioned snapshot container.

Everything here works on raw bytes: the ``RCSKETCH`` prologue, the
CRC-checked header and payload sections, atomic writes, and the JSON
item-coding wrappers used by heap entries and candidate lists.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.store.format import (
    FORMAT_VERSION,
    MAGIC,
    TYPE_CODES,
    SnapshotFormatError,
    UnsupportedVersionError,
    atomic_write_bytes,
    decode_frame,
    decode_item,
    encode_frame,
    encode_item,
)

HEADER = {"depth": 3, "width": 16, "seed": 7}
PAYLOAD = bytes(range(64)) * 6


def frame() -> bytes:
    return encode_frame(TYPE_CODES["dense"], HEADER, PAYLOAD)


class TestRoundTrip:
    def test_encode_decode(self):
        type_code, header, payload = decode_frame(frame())
        assert type_code == TYPE_CODES["dense"]
        assert header == HEADER
        assert payload == PAYLOAD

    def test_header_bytes_canonical(self):
        # Key insertion order must not leak into the bytes: snapshots are
        # a deterministic function of the state (the golden-fixture gate).
        shuffled = {"seed": 7, "width": 16, "depth": 3}
        assert encode_frame(1, shuffled, PAYLOAD) == frame()

    def test_empty_payload(self):
        data = encode_frame(TYPE_CODES["sparse"], {"rows": []}, b"")
        type_code, header, payload = decode_frame(data)
        assert type_code == TYPE_CODES["sparse"]
        assert payload == b""

    def test_every_type_code_accepted(self):
        for code in TYPE_CODES.values():
            assert decode_frame(encode_frame(code, {}, b"x"))[0] == code

    def test_unknown_type_code_refused_at_encode(self):
        with pytest.raises(ValueError, match="unknown snapshot type code"):
            encode_frame(99, HEADER, PAYLOAD)


class TestRejection:
    def test_too_short_for_prologue(self):
        with pytest.raises(SnapshotFormatError, match="too short"):
            decode_frame(frame()[:12])

    def test_bad_magic(self):
        data = b"NOTASKCH" + frame()[8:]
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            decode_frame(data)

    def test_future_version_refused(self):
        data = bytearray(frame())
        data[8:10] = struct.pack("<H", FORMAT_VERSION + 1)
        with pytest.raises(UnsupportedVersionError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_type_code(self):
        data = bytearray(frame())
        data[10:12] = struct.pack("<H", 99)
        with pytest.raises(SnapshotFormatError, match="type code"):
            decode_frame(bytes(data))

    def test_truncated_inside_header(self):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            decode_frame(frame()[:25])

    def test_truncated_inside_payload(self):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            decode_frame(frame()[:-1])

    def test_trailing_garbage(self):
        with pytest.raises(SnapshotFormatError, match="trailing"):
            decode_frame(frame() + b"\x00")

    def test_header_bit_flip_detected(self):
        data = bytearray(frame())
        data[21] ^= 0xFF  # inside the header JSON
        with pytest.raises(SnapshotFormatError, match="header CRC"):
            decode_frame(bytes(data))

    def test_payload_bit_flip_detected(self):
        data = bytearray(frame())
        data[-1] ^= 0xFF
        with pytest.raises(SnapshotFormatError, match="payload CRC"):
            decode_frame(bytes(data))

    def test_non_object_header_refused(self):
        header_bytes = b"[1,2]"
        data = (
            struct.Struct("<8sHHII").pack(
                MAGIC, FORMAT_VERSION, 1,
                len(header_bytes), zlib.crc32(header_bytes),
            )
            + header_bytes
            + struct.Struct("<QI").pack(0, zlib.crc32(b""))
        )
        with pytest.raises(SnapshotFormatError, match="JSON object"):
            decode_frame(data)


class TestAtomicWrite:
    def test_writes_and_returns_size(self, tmp_path):
        path = tmp_path / "out.bin"
        assert atomic_write_bytes(path, b"hello") == 5
        assert path.read_bytes() == b"hello"

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "out.bin"
        path.write_bytes(b"old")
        atomic_write_bytes(path, b"new contents")
        assert path.read_bytes() == b"new contents"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "out.bin"
        atomic_write_bytes(path, b"data")
        assert [entry.name for entry in tmp_path.iterdir()] == ["out.bin"]


class TestItemCoding:
    @pytest.mark.parametrize(
        "item",
        [
            "query",
            "",
            0,
            -12,
            3.5,
            True,
            b"\x00\xff raw",
            (1, "two", 3.0),
            ((1, 2), (3, (4, b"five"))),
        ],
    )
    def test_round_trip(self, item):
        decoded = decode_item(encode_item(item))
        assert decoded == item
        assert type(decoded) is type(item)

    def test_unsupported_type_refused(self):
        with pytest.raises(TypeError, match="cannot snapshot item"):
            encode_item(frozenset({1}))

    def test_encoded_values_are_json_scalars_or_wrappers(self):
        assert encode_item("q") == "q"
        assert encode_item(b"\x01") == {"__bytes__": "01"}
        assert encode_item((1,)) == {"__tuple__": [1]}

    @pytest.mark.parametrize(
        "value",
        [
            {"__tuple__": "not-a-list"},
            {"__bytes__": 42},
            {"unknown": 1},
            [1, 2],
            None,
        ],
    )
    def test_malformed_encodings_refused(self, value):
        with pytest.raises(SnapshotFormatError):
            decode_item(value)
