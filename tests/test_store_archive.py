"""The temporal sketch archive: exact range merges and historical diffs.

Two acceptance properties from the §3.2 linearity argument:

* ``range_sketch(i, j)`` equals the sketch one pass over the
  concatenated epoch streams would build (dyadic decomposition changes
  the file count, never the counters);
* ``diff(a, b)`` reports exactly the pass-1 estimated change the
  two-pass §4.2 algorithm computes on the raw streams.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch
from repro.core.maxchange import find_max_change
from repro.store import SketchArchive, StoreError
from repro.store.archive import ArchiveDiffEntry

DEPTH, WIDTH, SEED = 3, 64, 9


def epoch_stream(index, n=120):
    rng = random.Random(1000 + index)
    return [f"item-{rng.randint(0, 30)}" for __ in range(n)]


@pytest.fixture()
def archive(tmp_path):
    archive = SketchArchive(
        tmp_path / "archive", depth=DEPTH, width=WIDTH, seed=SEED
    )
    for index in range(6):
        archive.append_stream(epoch_stream(index), track_candidates=8)
    return archive


class TestLifecycle:
    def test_new_archive_requires_dimensions(self, tmp_path):
        with pytest.raises(ValueError, match="depth and width"):
            SketchArchive(tmp_path / "a")

    def test_reopen_recovers_parameters(self, archive):
        reopened = SketchArchive(archive.directory)
        assert (reopened.depth, reopened.width, reopened.seed) == (
            DEPTH, WIDTH, SEED,
        )
        assert len(reopened) == 6
        assert reopened.epoch(2) == archive.epoch(2)

    def test_reopen_with_wrong_parameters_refused(self, archive):
        with pytest.raises(StoreError, match="width"):
            SketchArchive(archive.directory, depth=DEPTH, width=WIDTH * 2)

    def test_incompatible_epoch_refused(self, archive):
        foreign = CountSketch(DEPTH, WIDTH, seed=SEED + 1)
        with pytest.raises(ValueError, match="not compatible"):
            archive.append(foreign)

    def test_epoch_index_bounds(self, archive):
        with pytest.raises(IndexError, match="out of range"):
            archive.epoch(6)
        with pytest.raises(IndexError):
            archive.range_sketch(4, 3)

    def test_candidates_round_trip(self, tmp_path):
        archive = SketchArchive(
            tmp_path / "a", depth=DEPTH, width=WIDTH, seed=SEED
        )
        sketch = archive.new_epoch_sketch()
        sketch.extend(["x", "y"])
        archive.append(sketch, candidates=["x", ("t", 2), b"\x01"])
        assert archive.candidates(0) == ["x", ("t", 2), b"\x01"]

    def test_describe(self, archive):
        info = archive.describe()
        assert info["epochs"] == 6
        assert info["depth"] == DEPTH
        assert len(info["epoch_weights"]) == 6
        assert all(weight == 120 for weight in info["epoch_weights"])


class TestDyadicDecomposition:
    @settings(max_examples=60, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=0, max_value=500),
            st.integers(min_value=1, max_value=500),
        )
    )
    def test_intervals_are_aligned_powers_of_two(self, span):
        start, length = span
        end = start + length
        pieces = SketchArchive._dyadic_intervals(start, end)
        # Exact cover, in order, no overlap.
        cursor = start
        for piece_start, piece_length in pieces:
            assert piece_start == cursor
            # Power of two...
            assert piece_length & (piece_length - 1) == 0
            # ...aligned to its own size.
            assert piece_start % piece_length == 0
            cursor += piece_length
        assert cursor == end
        # The Hokusai bound: at most ~2·log2 pieces.
        assert len(pieces) <= 2 * (math.floor(math.log2(end)) + 1)

    def test_range_merge_is_exact(self, archive):
        # Every [start, end) gives counters identical to a single sketch
        # over the concatenated epoch streams — linearity, not sampling.
        for start in range(6):
            for end in range(start + 1, 7):
                direct = archive.new_epoch_sketch()
                for index in range(start, end):
                    direct.extend(epoch_stream(index))
                assert archive.range_sketch(start, end) == direct

    def test_range_queries_populate_the_dyadic_cache(self, archive):
        assert archive.describe()["cached_dyadic_merges"] == 0
        first = archive.range_sketch(0, 4)
        assert archive.describe()["cached_dyadic_merges"] > 0
        # The cached answer is still the exact one.
        assert archive.range_sketch(0, 4) == first


class TestDiff:
    def test_matches_two_pass_max_change(self, tmp_path):
        # Plant a surge: "surge" jumps by +300 between the two epochs.
        base = [f"bg-{i % 25}" for i in range(500)]
        before_stream = base + ["surge"] * 20
        after_stream = base + ["surge"] * 320

        archive = SketchArchive(
            tmp_path / "a", depth=5, width=512, seed=0
        )
        archive.append_stream(before_stream, track_candidates=16)
        archive.append_stream(after_stream, track_candidates=16)

        [top] = archive.diff(0, 1, k=1)
        assert top.item == "surge"

        # find_max_change sketches the same streams with the same
        # (depth, width, seed), so its pass-1 estimate is the *same
        # number*, not merely close.
        [report] = find_max_change(
            before_stream, after_stream, 1, depth=5, width=512, seed=0
        )
        assert report.item == "surge"
        assert top.estimated_change == report.estimated_change
        assert top.estimate_after - top.estimate_before == pytest.approx(
            top.estimated_change
        )

    def test_explicit_probe_items(self, archive):
        entries = archive.diff(1, 4, items=["item-3", "item-7", "absent"])
        assert len(entries) == 3
        assert sorted(e.item for e in entries) == [
            "absent", "item-3", "item-7",
        ]
        # Ranked by |estimated change|, largest first.
        changes = [e.abs_change for e in entries]
        assert changes == sorted(changes, reverse=True)

    def test_default_probe_set_is_stored_candidates(self, archive):
        entries = archive.diff(0, 5, k=50)
        probe = set(archive.candidates(0)) | set(archive.candidates(5))
        assert {e.item for e in entries} <= probe
        assert entries  # the epochs did record candidates

    def test_k_zero_and_negative(self, archive):
        assert archive.diff(0, 1, k=0) == []
        with pytest.raises(ValueError, match="nonnegative"):
            archive.diff(0, 1, k=-1)

    def test_entry_repr(self):
        entry = ArchiveDiffEntry("q", 5.0, 1.0, 6.0)
        assert "q" in repr(entry)
        assert entry.abs_change == 5.0
