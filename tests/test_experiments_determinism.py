"""Determinism tests: experiments reproduce exactly at fixed seeds.

EXPERIMENTS.md promises that every number in the benchmark reports is
"re-derivable exactly" because all randomness is seeded.  These tests
enforce that promise mechanically: running an experiment twice with the
same configuration must return identical row objects (dataclass equality
covers every field, including floats).
"""

import pytest

from repro.experiments import (
    ablation_estimator,
    error_vs_b,
    relative_change_floor,
    sampling_space,
    space_accounting,
)


def small_error_vs_b():
    return error_vs_b.ErrorVsBConfig(
        m=500, n=5_000, zs=(1.0,), widths=(16, 64), sketch_seeds=(0,),
        query_top_ranks=20, query_tail_samples=20,
    )


def small_sampling_space():
    return sampling_space.SamplingSpaceConfig(
        m=500, n=5_000, zs=(0.5, 1.5), sampler_seeds=(0,)
    )


def small_ablation_estimator():
    return ablation_estimator.EstimatorAblationConfig(
        m=500, n=5_000, sketch_seeds=(0, 1), query_rank_lo=10,
        query_rank_hi=60,
    )


def small_space_accounting():
    return space_accounting.SpaceAccountingConfig(m=500, n=5_000, width=64)


CASES = [
    pytest.param(error_vs_b.run, small_error_vs_b, id="error_vs_b"),
    pytest.param(sampling_space.run, small_sampling_space,
                 id="sampling_space"),
    pytest.param(ablation_estimator.run, small_ablation_estimator,
                 id="ablation_estimator"),
]


@pytest.mark.parametrize("run,make_config", CASES)
def test_rows_identical_across_runs(run, make_config):
    config = make_config()
    assert run(config) == run(config)


def test_space_accounting_identical_across_runs():
    config = small_space_accounting()
    first = space_accounting.run(config)
    second = space_accounting.run(config)
    assert first.rows == second.rows
    assert first.cs_counters == second.cs_counters
    assert first.sampling_counters == second.sampling_counters


def test_relative_change_floor_identical_across_runs():
    config = relative_change_floor.FloorSweepConfig()
    assert relative_change_floor.run(config) == (
        relative_change_floor.run(config)
    )


def test_reports_identical_across_runs():
    """Formatted reports (the benchmark artifacts) also match exactly."""
    config = small_sampling_space()
    first = sampling_space.format_report(sampling_space.run(config), config)
    second = sampling_space.format_report(sampling_space.run(config), config)
    assert first == second


def test_different_seeds_change_results():
    """Sanity that the determinism is seed-driven, not accidental
    constant output: changing the stream seed changes the measurements."""
    base = sampling_space.SamplingSpaceConfig(
        m=500, n=5_000, zs=(1.0,), sampler_seeds=(0,), stream_seed=1
    )
    other = sampling_space.SamplingSpaceConfig(
        m=500, n=5_000, zs=(1.0,), sampler_seeds=(0,), stream_seed=2
    )
    assert sampling_space.run(base) != sampling_space.run(other)
