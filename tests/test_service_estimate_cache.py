"""The opt-in estimate cache must be invisible except for speed.

Cached answers are tagged with the table's enqueued sequence number and
served only while no newer ingest has been acknowledged, so every
response — hit or miss — is bit-equal to the offline summary over the
acknowledged prefix.  W-TinyLFU admission (``repro.cache``) decides
which keys are worth keeping.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.client import AsyncServiceClient
from repro.service.server import SketchServer
from repro.service.tables import TableSpec


def spec_for(name: str = "t") -> TableSpec:
    return TableSpec(name, kind="sketch", depth=4, width=128, seed=3)


def run(coro):
    return asyncio.run(coro)


class TestEstimateCache:
    def test_off_by_default(self):
        async def go():
            server = SketchServer([spec_for()])
            client = AsyncServiceClient.in_process(server)
            stats = await client.stats()
            assert "estimate_cache" not in stats["server"]
            await server.stop()

        run(go())

    def test_capacity_below_two_refused(self):
        with pytest.raises(ValueError, match="capacity"):
            SketchServer([spec_for()], estimate_cache=1)

    def test_repeat_queries_hit_and_stay_exact(self):
        async def go():
            server = SketchServer([spec_for()], estimate_cache=64)
            client = AsyncServiceClient.in_process(server)
            offline = spec_for().build()
            records = [(f"k{i}", i + 1) for i in range(16)]
            await client.ingest("t", records, wait=True)
            for item, count in records:
                offline.update(item, count)
            probes = [f"k{i}" for i in range(16)]
            expected = [float(offline.estimate(p)) for p in probes]
            first = await client.estimate("t", probes)
            second = await client.estimate("t", probes)
            assert first == expected
            assert second == expected
            stats = await client.stats()
            cache = stats["server"]["estimate_cache"]
            assert cache["capacity"] == 64
            assert cache["hits"] > 0
            assert 0.0 <= cache["hit_ratio"] <= 1.0
            await server.stop()

        run(go())

    def test_ingest_invalidates_cached_answers(self):
        async def go():
            server = SketchServer([spec_for()], estimate_cache=64)
            client = AsyncServiceClient.in_process(server)
            offline = spec_for().build()
            await client.ingest("t", [("a", 5)], wait=True)
            offline.update("a", 5)
            assert await client.estimate("t", ["a"]) == [
                float(offline.estimate("a"))
            ]
            # Cache is warm for "a"; the next write must invalidate it.
            await client.ingest("t", [("a", 7)], wait=True)
            offline.update("a", 7)
            assert await client.estimate("t", ["a"]) == [
                float(offline.estimate("a"))
            ]
            await server.stop()

        run(go())

    def test_interleaved_writes_never_serve_stale(self):
        async def go():
            server = SketchServer([spec_for()], estimate_cache=32)
            client = AsyncServiceClient.in_process(server)
            offline = spec_for().build()
            probes = [f"k{i}" for i in range(8)]
            for step in range(20):
                records = [(f"k{step % 8}", step + 1)]
                await client.ingest("t", records)
                for item, count in records:
                    offline.update(item, count)
                live = await client.estimate("t", probes)
                assert live == [
                    float(offline.estimate(p)) for p in probes
                ]
            await server.stop()

        run(go())

    def test_drop_and_recreate_purges_the_table(self):
        async def go():
            server = SketchServer([spec_for()], estimate_cache=64)
            client = AsyncServiceClient.in_process(server)
            await client.ingest("t", [("a", 9)], wait=True)
            assert (await client.estimate("t", ["a"]))[0] != 0.0
            await client.drop_table("t")
            await client.create_table(spec_for())
            # Fresh table, fresh sequence numbers: the old cached value
            # must not resurface.
            assert await client.estimate("t", ["a"]) == [0.0]
            await server.stop()

        run(go())
