"""Tests for the §4.1 closed forms and the §5 space model."""

import math

import pytest

from repro.analysis.space import SpaceModel
from repro.analysis.zipf_math import (
    count_sketch_space_order,
    count_sketch_width_order,
    harmonic_number,
    kps_space_order,
    sampling_distinct_order,
    sampling_expected_distinct,
    table1_orders,
    tail_second_moment_order,
    zipf_tail_second_moment,
)


class TestHarmonicNumber:
    def test_z_zero(self):
        assert harmonic_number(5, 0.0) == 5.0

    def test_z_one(self):
        assert harmonic_number(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            harmonic_number(0, 1.0)
        with pytest.raises(ValueError):
            harmonic_number(5, -1.0)


class TestTailSecondMoment:
    def test_exact_small_case(self):
        # z=1: sum over q=2..3 of 1/q^2 = 1/4 + 1/9
        assert zipf_tail_second_moment(3, 1, 1.0) == pytest.approx(
            0.25 + 1 / 9
        )

    def test_k_equals_m(self):
        assert zipf_tail_second_moment(5, 5, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_tail_second_moment(5, 6, 1.0)
        with pytest.raises(ValueError):
            zipf_tail_second_moment(5, -1, 1.0)

    def test_order_regimes(self):
        # z < 1/2: grows with m
        assert tail_second_moment_order(10_000, 10, 0.3) > (
            tail_second_moment_order(1_000, 10, 0.3)
        )
        # z = 1/2: log m
        assert tail_second_moment_order(10_000, 10, 0.5) == pytest.approx(
            math.log(10_000)
        )
        # z > 1/2: independent of m, shrinks with k
        assert tail_second_moment_order(10_000, 10, 0.8) == (
            tail_second_moment_order(99, 10, 0.8)
        )

    def test_exact_matches_order_scaling_small_z(self):
        """The exact sums should scale like the order formula in m."""
        z, k = 0.3, 10
        exact_ratio = zipf_tail_second_moment(16_000, k, z) / (
            zipf_tail_second_moment(2_000, k, z)
        )
        order_ratio = tail_second_moment_order(16_000, k, z) / (
            tail_second_moment_order(2_000, k, z)
        )
        assert exact_ratio == pytest.approx(order_ratio, rel=0.1)


class TestSpaceOrders:
    def test_count_sketch_cases(self):
        m, k = 10_000, 10
        assert count_sketch_width_order(m, k, 0.3) == pytest.approx(
            m**0.4 * k**0.6
        )
        assert count_sketch_width_order(m, k, 0.5) == pytest.approx(
            k * math.log(m)
        )
        assert count_sketch_width_order(m, k, 0.9) == k
        assert count_sketch_width_order(m, k, 1.5) == k

    def test_count_sketch_space_multiplies_log_n(self):
        assert count_sketch_space_order(100, 5, 1.0, 1000) == pytest.approx(
            5 * math.log(1000)
        )

    def test_kps_cases(self):
        m, k = 10_000, 10
        assert kps_space_order(m, k, 0.5) == pytest.approx(
            k**0.5 * m**0.5
        )
        assert kps_space_order(m, k, 1.0) == pytest.approx(k * math.log(m))
        assert kps_space_order(m, k, 2.0) == pytest.approx(k**2)

    def test_sampling_cases(self):
        m, k, delta = 10_000, 10, 0.05
        log_term = math.log(k / delta)
        assert sampling_distinct_order(m, k, 0.5, delta) == pytest.approx(
            math.sqrt(k * m) * log_term
        )
        assert sampling_distinct_order(m, k, 1.0, delta) == pytest.approx(
            k * math.log(m) * log_term
        )
        assert sampling_distinct_order(m, k, 2.0, delta) == pytest.approx(
            k * log_term**0.5
        )

    def test_sampling_order_decreases_with_z(self):
        values = [
            sampling_distinct_order(10_000, 10, z) for z in (0.3, 0.6, 1.5)
        ]
        assert values[0] > values[1] > values[2]

    def test_sampling_expected_distinct_bounds(self):
        expected = sampling_expected_distinct(1_000, 10, 1.0, 100_000)
        assert 0 < expected <= 1_000

    def test_sampling_expected_distinct_grows_with_m_small_z(self):
        a = sampling_expected_distinct(1_000, 10, 0.3, 100_000)
        b = sampling_expected_distinct(8_000, 10, 0.3, 100_000)
        assert b > a

    def test_table1_orders_rows(self):
        rows = table1_orders(10_000, 10, 100_000)
        assert len(rows) == 5
        assert [row.regime for row in rows] == [
            "z < 1/2", "z = 1/2", "1/2 < z < 1", "z = 1", "z > 1",
        ]
        for row in rows:
            assert row.sampling > 0
            assert row.kps > 0
            assert row.count_sketch > 0

    def test_table1_count_sketch_flat_above_half(self):
        """Table 1's key qualitative claim: the COUNT SKETCH column stops
        depending on m once z > 1/2."""
        rows_small = table1_orders(1_000, 10, 100_000, zs=(0.75, 1.0, 1.5))
        rows_large = table1_orders(64_000, 10, 100_000, zs=(0.75, 1.0, 1.5))
        for small, large in zip(rows_small, rows_large, strict=True):
            assert small.count_sketch == large.count_sketch
            assert large.sampling > small.sampling or small.z > 1


class TestSpaceModel:
    def test_total_bits(self):
        model = SpaceModel(counter_bits=32, object_bits=100)
        assert model.total_bits(10, 3) == 620

    def test_for_stream_counter_bits(self):
        model = SpaceModel.for_stream(n=1000, object_bits=64)
        assert model.counter_bits == 10
        assert model.object_bits == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceModel.for_stream(0, 10)
        with pytest.raises(ValueError):
            SpaceModel.for_stream(10, 0)
        with pytest.raises(ValueError):
            SpaceModel(8, 8).total_bits(-1, 0)

    def test_summary_bits_uses_accessors(self):
        class Fake:
            def counters_used(self):
                return 4

            def items_stored(self):
                return 2

        model = SpaceModel(counter_bits=10, object_bits=100)
        assert model.summary_bits(Fake()) == 240

    def test_section5_conclusion(self):
        """§5: large objects favour the sketch.  With l >> log n, a sketch
        holding k objects beats a sample holding many."""
        model = SpaceModel.for_stream(n=100_000, object_bits=4096)

        class SketchLike:
            def counters_used(self):
                return 2_000

            def items_stored(self):
                return 10

        class SampleLike:
            def counters_used(self):
                return 500

            def items_stored(self):
                return 500

        assert model.summary_bits(SketchLike()) < model.summary_bits(
            SampleLike()
        )
