"""Tests for the sparse-backed Count Sketch."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch

ITEMS = st.one_of(
    st.integers(min_value=0, max_value=500),
    st.sampled_from(["x", "y", "z"]),
)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseCountSketch(0, 10)
        with pytest.raises(ValueError):
            SparseCountSketch(3, 0)

    def test_roundtrip(self):
        sketch = SparseCountSketch(5, 1 << 16, seed=0)
        sketch.update("x", 9)
        assert sketch.estimate("x") == 9.0
        assert sketch.total_weight == 9

    def test_unseen_item_zero_ish(self):
        sketch = SparseCountSketch(5, 1 << 16, seed=0)
        sketch.update("x", 9)
        # With a huge width, an unseen item almost surely touches empty
        # buckets in a majority of rows.
        assert sketch.estimate("unseen") == 0.0

    def test_memory_scales_with_support_not_width(self):
        sketch = SparseCountSketch(5, 1 << 20, seed=1)
        for item in range(100):
            sketch.update(item)
        assert sketch.buckets_touched() <= 5 * 100
        assert sketch.counters_used() == sketch.buckets_touched()
        assert sketch.nominal_counters() == 5 * (1 << 20)

    def test_cancelled_buckets_are_freed(self):
        sketch = SparseCountSketch(3, 1 << 12, seed=2)
        sketch.update("x", 7)
        sketch.update("x", -7)
        assert sketch.buckets_touched() == 0
        assert sketch.estimate("x") == 0.0

    def test_update_counts_and_extend(self):
        a = SparseCountSketch(3, 64, seed=3)
        a.update_counts(Counter(["p", "q", "p"]))
        b = SparseCountSketch(3, 64, seed=3)
        b.extend(["p", "q", "p"])
        assert a == b

    def test_items_stored_zero(self):
        assert SparseCountSketch(2, 8).items_stored() == 0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(SparseCountSketch(2, 8))


class TestDenseEquivalence:
    """The headline property: identical estimates to the dense sketch."""

    def test_to_dense_equals_dense(self, zipf_counts):
        sparse = SparseCountSketch(5, 512, seed=4)
        sparse.update_counts(zipf_counts)
        dense = CountSketch(5, 512, seed=4)
        dense.update_counts(zipf_counts)
        assert sparse.to_dense() == dense

    def test_estimates_match_dense_exactly(self, zipf_counts):
        sparse = SparseCountSketch(5, 256, seed=5)
        dense = CountSketch(5, 256, seed=5)
        sparse.update_counts(zipf_counts)
        dense.update_counts(zipf_counts)
        for item in list(zipf_counts)[:100]:
            assert sparse.estimate(item) == dense.estimate(item)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ITEMS, max_size=60))
    def test_equivalence_property(self, items):
        sparse = SparseCountSketch(3, 32, seed=6)
        dense = CountSketch(3, 32, seed=6)
        sparse.extend(items)
        dense.extend(items)
        assert sparse.to_dense() == dense
        for item in set(items):
            assert sparse.estimate(item) == dense.estimate(item)


class TestLinearity:
    def test_merge(self):
        a = SparseCountSketch(3, 64, seed=7)
        b = SparseCountSketch(3, 64, seed=7)
        a.update("x", 2)
        b.update("x", 3)
        a.merge(b)
        assert a.estimate("x") == 5.0
        assert a.total_weight == 5

    def test_add_and_subtract(self):
        a = SparseCountSketch(3, 64, seed=8)
        b = SparseCountSketch(3, 64, seed=8)
        a.update("x", 10)
        b.update("x", 4)
        assert (a + b).estimate("x") == 14.0
        assert (a - b).estimate("x") == 6.0

    def test_subtraction_frees_cancelled_buckets(self):
        a = SparseCountSketch(3, 64, seed=9)
        b = SparseCountSketch(3, 64, seed=9)
        a.extend(["m", "n"])
        b.extend(["m", "n"])
        assert (a - b).buckets_touched() == 0

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            SparseCountSketch(3, 64, seed=1).merge(
                SparseCountSketch(3, 64, seed=2)
            )
        with pytest.raises(TypeError):
            SparseCountSketch(3, 64).merge("nope")
        with pytest.raises(TypeError):
            SparseCountSketch(3, 64) - "nope"

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ITEMS, max_size=40), st.lists(ITEMS, max_size=40))
    def test_linearity_property(self, items1, items2):
        a = SparseCountSketch(3, 32, seed=10)
        b = SparseCountSketch(3, 32, seed=10)
        a.extend(items1)
        b.extend(items2)
        whole = SparseCountSketch(3, 32, seed=10)
        whole.extend(items1 + items2)
        assert (a + b) == whole


class TestLemma5ScaleUseCase:
    def test_wide_sketch_is_cheap(self):
        """The motivating scenario: Lemma 5 demands b ~ 1e5, the stream
        has 2 000 distinct items — sparse memory stays ~ t·m."""
        from repro.streams.zipf import ZipfStreamGenerator

        stream = ZipfStreamGenerator(m=2_000, z=1.0, seed=11).generate(10_000)
        counts = stream.counts()
        sketch = SparseCountSketch(5, 131_072, seed=12)
        sketch.update_counts(counts)
        assert sketch.buckets_touched() <= 5 * len(counts)
        # And at this width estimates are essentially exact.
        for item, count in counts.most_common(20):
            assert abs(sketch.estimate(item) - count) <= 1


class TestParityWithConfidenceTools:
    def test_estimate_f2_matches_dense(self, zipf_counts):
        sparse = SparseCountSketch(5, 256, seed=13)
        dense = CountSketch(5, 256, seed=13)
        sparse.update_counts(zipf_counts)
        dense.update_counts(zipf_counts)
        assert sparse.estimate_f2() == dense.estimate_f2()

    def test_row_estimates_match_dense(self, zipf_counts):
        sparse = SparseCountSketch(5, 256, seed=14)
        dense = CountSketch(5, 256, seed=14)
        sparse.update_counts(zipf_counts)
        dense.update_counts(zipf_counts)
        assert sparse.row_estimates(1) == dense.row_estimates(1)

    def test_confidence_envelopes_work_on_sparse(self, zipf_counts):
        from repro.analysis.confidence import (
            estimate_with_f2_interval,
            estimate_with_spread_interval,
        )

        sparse = SparseCountSketch(5, 256, seed=15)
        sparse.update_counts(zipf_counts)
        interval = estimate_with_f2_interval(sparse, 1, multiplier=2.0)
        assert interval.low <= sparse.estimate(1) <= interval.high
        spread = estimate_with_spread_interval(sparse, 1)
        assert spread.estimate == sparse.estimate(1)
