"""Wire-protocol tests: frame codec, key round-trips, error shapes.

The service speaks length-prefixed ASCII JSON; stream keys reuse the
snapshot item codec after NumPy-scalar normalization.  The properties
here pin the two contracts that make mid-stream answers exact: any key
the sketches accept survives a wire round-trip unchanged (same
``encode_key`` hash), and malformed frames are refused loudly rather
than resynchronized silently.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.encode import encode_key
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    WireProtocolError,
    decode_wire_key,
    encode_wire_key,
    error_response,
    normalize_key,
    ok_response,
    pack_frame,
    read_frame,
    unpack_frame,
)

#: Lone low surrogates, exactly what ``errors="surrogateescape"``
#: produces when decoding byte-garbled query logs.
_SURROGATES = st.integers(min_value=0xDC80, max_value=0xDCFF).map(chr)

SURROGATE_TEXT = st.lists(
    st.one_of(st.text(max_size=12), _SURROGATES), max_size=6
).map("".join)

#: Every key shape the sketches accept.
KEYS = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.booleans(),
    SURROGATE_TEXT,
    st.binary(max_size=32),
    st.tuples(st.integers(), SURROGATE_TEXT),
)


def frame_roundtrip(message):
    return unpack_frame(pack_frame(message))


def read_from_bytes(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestKeyRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(KEYS)
    def test_wire_key_roundtrips_through_a_frame(self, key):
        message = {"op": "estimate", "keys": [encode_wire_key(key)]}
        decoded = decode_wire_key(frame_roundtrip(message)["keys"][0])
        assert decoded == normalize_key(key)
        assert encode_key(decoded) == encode_key(key)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=64))
    def test_surrogateescaped_strings_survive(self, raw):
        # Reading a garbled log line never raises and never changes the
        # key: the frame is ASCII (\uDCxx escapes) on the wire.
        text = raw.decode("utf-8", errors="surrogateescape")
        frame = pack_frame({"key": encode_wire_key(text)})
        frame[4:].decode("ascii")  # the JSON payload is plain ASCII
        assert decode_wire_key(unpack_frame(frame)["key"]) == text

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_np_int64_collapses_to_python_int(self, value):
        decoded = decode_wire_key(
            frame_roundtrip({"k": encode_wire_key(np.int64(value))})["k"]
        )
        assert decoded == value
        assert type(decoded) is int
        assert encode_key(decoded) == encode_key(np.int64(value))

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_np_uint64_collapses_to_python_int(self, value):
        decoded = decode_wire_key(
            frame_roundtrip({"k": encode_wire_key(np.uint64(value))})["k"]
        )
        assert decoded == value
        assert encode_key(decoded) == encode_key(np.uint64(value))

    def test_np_bool_and_bytearray_normalize(self):
        assert normalize_key(np.bool_(True)) is True
        assert normalize_key(bytearray(b"ab")) == b"ab"
        assert normalize_key((np.int64(3), np.bool_(False))) == (3, False)

    def test_decode_rejects_unknown_encodings(self):
        with pytest.raises(WireProtocolError):
            decode_wire_key({"__weird__": 1})
        with pytest.raises(WireProtocolError):
            decode_wire_key([1, 2])


class TestFrameCodec:
    def test_bytes_are_canonical(self):
        # sort_keys + compact separators: one message, one byte string.
        assert pack_frame({"b": 1, "a": 2}) == pack_frame({"a": 2, "b": 1})

    def test_header_is_big_endian_length(self):
        frame = pack_frame({"op": "ping"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_truncated_header_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            unpack_frame(b"\x00\x00")

    def test_length_mismatch_rejected(self):
        with pytest.raises(WireProtocolError, match="declares"):
            unpack_frame(pack_frame({"op": "ping"})[:-1])

    def test_oversize_declared_length_rejected(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            unpack_frame(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_non_json_payload_rejected(self):
        body = b"not json"
        with pytest.raises(WireProtocolError, match="not JSON"):
            unpack_frame(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        body = b"[1,2]"
        with pytest.raises(WireProtocolError, match="JSON object"):
            unpack_frame(struct.pack(">I", len(body)) + body)

    def test_oversize_message_refused_on_send(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            pack_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(
                st.integers(), SURROGATE_TEXT, st.booleans(), st.none()
            ),
            max_size=6,
        )
    )
    def test_arbitrary_objects_roundtrip(self, message):
        assert frame_roundtrip(message) == message


class TestReadFrame:
    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_reads_consecutive_frames(self):
        data = pack_frame({"a": 1}) + pack_frame({"b": 2})

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return [
                await read_frame(reader),
                await read_frame(reader),
                await read_frame(reader),
            ]

        assert asyncio.run(go()) == [{"a": 1}, {"b": 2}, None]

    def test_eof_mid_header_raises(self):
        with pytest.raises(WireProtocolError, match="mid-header"):
            read_from_bytes(b"\x00\x00\x01")

    def test_eof_mid_frame_raises(self):
        with pytest.raises(WireProtocolError, match="mid-frame"):
            read_from_bytes(pack_frame({"a": 1})[:-2])

    def test_oversize_length_raises_before_reading_body(self):
        data = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(WireProtocolError, match="exceeds"):
            read_from_bytes(data)


class TestResponseHelpers:
    def test_ok_response_echoes_id(self):
        assert ok_response(7, tables=2) == {"ok": True, "tables": 2, "id": 7}

    def test_ok_response_without_id(self):
        assert "id" not in ok_response(None, created=True)

    def test_error_response_shape(self):
        response = error_response(
            3, "overloaded", "queue full", queue_depth=9
        )
        assert response["ok"] is False
        assert response["id"] == 3
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["queue_depth"] == 9

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_response(None, "nope", "msg")
