"""Wire-protocol tests: frame codec, key round-trips, error shapes.

The service speaks length-prefixed ASCII JSON; stream keys reuse the
snapshot item codec after NumPy-scalar normalization.  The properties
here pin the two contracts that make mid-stream answers exact: any key
the sketches accept survives a wire round-trip unchanged (same
``encode_key`` hash), and malformed frames are refused loudly rather
than resynchronized silently.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.encode import encode_key
from repro.service.protocol import (
    BINARY_MAGIC,
    BINARY_VERSION,
    MAX_FRAME_BYTES,
    BinaryIngest,
    FrameTooLargeError,
    WireProtocolError,
    binary_ingest_capacity,
    decode_wire_key,
    encode_wire_key,
    error_response,
    normalize_key,
    ok_response,
    pack_binary_ingest,
    pack_frame,
    pack_key,
    read_frame,
    unpack_frame,
    unpack_key,
)

#: Lone low surrogates, exactly what ``errors="surrogateescape"``
#: produces when decoding byte-garbled query logs.
_SURROGATES = st.integers(min_value=0xDC80, max_value=0xDCFF).map(chr)

SURROGATE_TEXT = st.lists(
    st.one_of(st.text(max_size=12), _SURROGATES), max_size=6
).map("".join)

#: Every key shape the sketches accept.
KEYS = st.one_of(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.booleans(),
    SURROGATE_TEXT,
    st.binary(max_size=32),
    st.tuples(st.integers(), SURROGATE_TEXT),
)

#: The packed binary key codec additionally carries floats bit-exactly
#: (NaN and infinities included) and deeper tuple nesting.
PACKED_KEYS = st.one_of(
    KEYS,
    st.floats(allow_nan=True, allow_infinity=True),
    st.tuples(KEYS, st.floats(allow_nan=True), st.booleans()),
)


def keys_bit_equal(a, b):
    """Key equality with bit-exact float semantics (NaN == NaN)."""
    if isinstance(a, float) and isinstance(b, float):
        return struct.pack("<d", a) == struct.pack("<d", b)
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(map(keys_bit_equal, a, b))
    return type(a) is type(b) and a == b


def frame_roundtrip(message):
    return unpack_frame(pack_frame(message))


def read_from_bytes(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestKeyRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(KEYS)
    def test_wire_key_roundtrips_through_a_frame(self, key):
        message = {"op": "estimate", "keys": [encode_wire_key(key)]}
        decoded = decode_wire_key(frame_roundtrip(message)["keys"][0])
        assert decoded == normalize_key(key)
        assert encode_key(decoded) == encode_key(key)

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=64))
    def test_surrogateescaped_strings_survive(self, raw):
        # Reading a garbled log line never raises and never changes the
        # key: the frame is ASCII (\uDCxx escapes) on the wire.
        text = raw.decode("utf-8", errors="surrogateescape")
        frame = pack_frame({"key": encode_wire_key(text)})
        frame[4:].decode("ascii")  # the JSON payload is plain ASCII
        assert decode_wire_key(unpack_frame(frame)["key"]) == text

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_np_int64_collapses_to_python_int(self, value):
        decoded = decode_wire_key(
            frame_roundtrip({"k": encode_wire_key(np.int64(value))})["k"]
        )
        assert decoded == value
        assert type(decoded) is int
        assert encode_key(decoded) == encode_key(np.int64(value))

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_np_uint64_collapses_to_python_int(self, value):
        decoded = decode_wire_key(
            frame_roundtrip({"k": encode_wire_key(np.uint64(value))})["k"]
        )
        assert decoded == value
        assert encode_key(decoded) == encode_key(np.uint64(value))

    def test_np_bool_and_bytearray_normalize(self):
        assert normalize_key(np.bool_(True)) is True
        assert normalize_key(bytearray(b"ab")) == b"ab"
        assert normalize_key((np.int64(3), np.bool_(False))) == (3, False)

    def test_decode_rejects_unknown_encodings(self):
        with pytest.raises(WireProtocolError):
            decode_wire_key({"__weird__": 1})
        with pytest.raises(WireProtocolError):
            decode_wire_key([1, 2])


class TestFrameCodec:
    def test_bytes_are_canonical(self):
        # sort_keys + compact separators: one message, one byte string.
        assert pack_frame({"b": 1, "a": 2}) == pack_frame({"a": 2, "b": 1})

    def test_header_is_big_endian_length(self):
        frame = pack_frame({"op": "ping"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_truncated_header_rejected(self):
        with pytest.raises(WireProtocolError, match="truncated"):
            unpack_frame(b"\x00\x00")

    def test_length_mismatch_rejected(self):
        with pytest.raises(WireProtocolError, match="declares"):
            unpack_frame(pack_frame({"op": "ping"})[:-1])

    def test_oversize_declared_length_rejected(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            unpack_frame(struct.pack(">I", MAX_FRAME_BYTES + 1))

    def test_non_json_payload_rejected(self):
        body = b"not json"
        with pytest.raises(WireProtocolError, match="not JSON"):
            unpack_frame(struct.pack(">I", len(body)) + body)

    def test_non_object_payload_rejected(self):
        body = b"[1,2]"
        with pytest.raises(WireProtocolError, match="JSON object"):
            unpack_frame(struct.pack(">I", len(body)) + body)

    def test_oversize_message_refused_on_send(self):
        with pytest.raises(WireProtocolError, match="exceeds"):
            pack_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.one_of(
                st.integers(), SURROGATE_TEXT, st.booleans(), st.none()
            ),
            max_size=6,
        )
    )
    def test_arbitrary_objects_roundtrip(self, message):
        assert frame_roundtrip(message) == message


class TestReadFrame:
    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_reads_consecutive_frames(self):
        data = pack_frame({"a": 1}) + pack_frame({"b": 2})

        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return [
                await read_frame(reader),
                await read_frame(reader),
                await read_frame(reader),
            ]

        assert asyncio.run(go()) == [{"a": 1}, {"b": 2}, None]

    def test_eof_mid_header_raises(self):
        with pytest.raises(WireProtocolError, match="mid-header"):
            read_from_bytes(b"\x00\x00\x01")

    def test_eof_mid_frame_raises(self):
        with pytest.raises(WireProtocolError, match="mid-frame"):
            read_from_bytes(pack_frame({"a": 1})[:-2])

    def test_oversize_length_raises_before_reading_body(self):
        data = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"
        with pytest.raises(WireProtocolError, match="exceeds"):
            read_from_bytes(data)


class TestPackedKeyCodec:
    @settings(max_examples=200, deadline=None)
    @given(PACKED_KEYS)
    def test_pack_key_roundtrips_exactly(self, key):
        blob = pack_key(key)
        decoded, end = unpack_key(blob)
        assert end == len(blob)
        assert keys_bit_equal(decoded, normalize_key(key))
        assert encode_key(decoded) == encode_key(key)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(PACKED_KEYS, min_size=1, max_size=8))
    def test_concatenated_blobs_are_self_delimiting(self, keys):
        block = b"".join(pack_key(key) for key in keys)
        position = 0
        decoded = []
        while position < len(block):
            item, position = unpack_key(block, position)
            decoded.append(item)
        assert len(decoded) == len(keys)
        for got, want in zip(decoded, keys, strict=True):
            assert keys_bit_equal(got, normalize_key(want))

    def test_numpy_scalars_pack_like_python_twins(self):
        assert pack_key(np.int64(7)) == pack_key(7)
        assert pack_key(np.uint64(2**63)) == pack_key(2**63)
        assert pack_key(np.bool_(True)) == pack_key(True)
        assert pack_key(np.float64(2.5)) == pack_key(2.5)

    @settings(max_examples=100, deadline=None)
    @given(PACKED_KEYS, st.integers(min_value=1, max_value=4))
    def test_truncated_blob_rejected(self, key, cut):
        blob = pack_key(key)
        if cut >= len(blob):
            cut = len(blob)
        with pytest.raises(WireProtocolError, match="truncated"):
            unpack_key(blob[:-cut])

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireProtocolError, match="unknown packed key"):
            unpack_key(b"\xee\x00")

    def test_invalid_bool_byte_rejected(self):
        with pytest.raises(WireProtocolError, match="bool"):
            unpack_key(b"\x06\x02")

    def test_pathological_nesting_rejected_not_crash(self):
        # A tuple-of-tuple chain far deeper than any real key: the codec
        # must refuse it as a protocol error, not die on RecursionError.
        depth = 100_000
        blob = b"\x07\x01\x00\x00\x00" * depth + pack_key(1)
        with pytest.raises(WireProtocolError):
            unpack_key(blob)

    def test_unsupported_types_rejected_at_pack(self):
        for bad in (None, [1, 2], {"a": 1}, complex(1, 2), np.datetime64(7, "s")):
            with pytest.raises(WireProtocolError, match="unsupported key type"):
                pack_key(bad)


class TestBinaryIngestFrame:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**64 - 1),
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
            ),
            min_size=1,
            max_size=32,
        ),
        st.integers(min_value=0, max_value=2**64 - 1),
        st.booleans(),
    )
    def test_raw_frame_roundtrips(self, records, request_id, wait):
        keys = np.array([k for k, _ in records], dtype=np.uint64)
        weights = np.array([w for _, w in records], dtype=np.int64)
        frame = pack_binary_ingest(
            "queries", request_id, keys, weights, raw=True, wait=wait
        )
        parsed = unpack_frame(frame)
        assert isinstance(parsed, BinaryIngest)
        assert parsed.table == "queries"
        assert parsed.request_id == request_id
        assert parsed.wait is wait
        assert parsed.raw is True
        assert parsed.items is None
        np.testing.assert_array_equal(parsed.keys, keys)
        np.testing.assert_array_equal(parsed.weights, weights)
        assert len(parsed) == len(records)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(PACKED_KEYS, min_size=1, max_size=16),
        st.booleans(),
    )
    def test_packed_frame_roundtrips(self, keys, wait):
        blobs = [pack_key(key) for key in keys]
        weights = np.arange(1, len(keys) + 1, dtype=np.int64)
        frame = pack_binary_ingest(
            "tbl", 9, blobs, weights, raw=False, wait=wait
        )
        parsed = unpack_frame(frame)
        assert isinstance(parsed, BinaryIngest)
        assert parsed.raw is False
        assert parsed.keys is None
        np.testing.assert_array_equal(parsed.weights, weights)
        assert len(parsed.items) == len(keys)
        for got, want in zip(parsed.items, keys, strict=True):
            assert keys_bit_equal(got, normalize_key(want))
            assert encode_key(got) == encode_key(want)

    def test_payload_starts_with_magic_not_json(self):
        frame = pack_binary_ingest(
            "t", 1,
            np.array([3], dtype=np.uint64),
            np.array([1], dtype=np.int64),
            raw=True,
        )
        assert frame[4] == BINARY_MAGIC
        assert frame[4] != ord("{")  # JSON payloads start with '{'

    def test_utf8_table_names_roundtrip(self):
        frame = pack_binary_ingest(
            "requêtes-été", 1,
            np.array([3], dtype=np.uint64),
            np.array([1], dtype=np.int64),
            raw=True,
        )
        assert unpack_frame(frame).table == "requêtes-été"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(WireProtocolError, match="match in length"):
            pack_binary_ingest(
                "t", 1,
                np.array([1, 2], dtype=np.uint64),
                np.array([1], dtype=np.int64),
                raw=True,
            )

    def test_raw_mode_requires_uint64(self):
        with pytest.raises(WireProtocolError, match="uint64"):
            pack_binary_ingest(
                "t", 1,
                np.array([1], dtype=np.int64),
                np.array([1], dtype=np.int64),
                raw=True,
            )

    def test_unsupported_version_rejected(self):
        frame = bytearray(pack_binary_ingest(
            "t", 1,
            np.array([3], dtype=np.uint64),
            np.array([1], dtype=np.int64),
            raw=True,
        ))
        frame[5] = BINARY_VERSION + 1
        with pytest.raises(WireProtocolError, match="version"):
            unpack_frame(bytes(frame))

    def test_unknown_opcode_rejected(self):
        frame = bytearray(pack_binary_ingest(
            "t", 1,
            np.array([3], dtype=np.uint64),
            np.array([1], dtype=np.int64),
            raw=True,
        ))
        frame[6] = 0x7F
        with pytest.raises(WireProtocolError, match="opcode"):
            unpack_frame(bytes(frame))

    def test_truncated_and_padded_bodies_rejected(self):
        frame = pack_binary_ingest(
            "t", 1,
            np.array([3, 4], dtype=np.uint64),
            np.array([1, 1], dtype=np.int64),
            raw=True,
        )
        body = frame[4:]
        short = struct.pack(">I", len(body) - 8) + body[:-8]
        with pytest.raises(WireProtocolError, match="truncated"):
            unpack_frame(short)
        padded = struct.pack(">I", len(body) + 2) + body + b"\x00\x00"
        with pytest.raises(WireProtocolError, match="trailing"):
            unpack_frame(padded)

    def test_capacity_fills_but_never_exceeds_the_frame_limit(self):
        capacity = binary_ingest_capacity("queries")
        assert capacity * 16 <= MAX_FRAME_BYTES
        keys = np.zeros(capacity, dtype=np.uint64)
        weights = np.ones(capacity, dtype=np.int64)
        frame = pack_binary_ingest("queries", 1, keys, weights, raw=True)
        assert len(frame) - 4 <= MAX_FRAME_BYTES
        with pytest.raises(FrameTooLargeError):
            pack_binary_ingest(
                "queries", 1,
                np.zeros(capacity + 1, dtype=np.uint64),
                np.ones(capacity + 1, dtype=np.int64),
                raw=True,
            )


class TestNonFiniteJsonRegression:
    """pack_frame silently emitted NaN/Infinity tokens before the sweep."""

    def test_nan_payload_refused_on_send(self):
        with pytest.raises(WireProtocolError, match="NaN"):
            pack_frame({"estimate": float("nan")})

    def test_infinity_payload_refused_on_send(self):
        with pytest.raises(WireProtocolError, match="NaN"):
            pack_frame({"estimate": float("inf")})

    def test_nonfinite_tokens_refused_on_receive(self):
        body = b'{"estimate": NaN}'
        with pytest.raises(WireProtocolError, match="not JSON"):
            unpack_frame(struct.pack(">I", len(body)) + body)

    def test_finite_floats_still_roundtrip(self):
        assert frame_roundtrip({"estimate": 2.5}) == {"estimate": 2.5}


class TestStrictNormalizeKey:
    """normalize_key silently passed unhashable junk through before."""

    @pytest.mark.parametrize(
        "bad",
        [None, [1, 2], {"a": 1}, {3, 4}, complex(1, 2),
         np.datetime64(7, "s"), object()],
        ids=lambda value: type(value).__name__,
    )
    def test_unsupported_types_rejected(self, bad):
        with pytest.raises(WireProtocolError, match="unsupported key type"):
            normalize_key(bad)

    def test_nested_junk_inside_tuple_rejected(self):
        with pytest.raises(WireProtocolError, match="unsupported key type"):
            normalize_key((1, (2, None)))

    def test_supported_types_pass_through(self):
        for good in (7, -7, 2**70, "q", b"q", 2.5, True, (1, "a", b"b")):
            assert normalize_key(good) == good


class TestResponseHelpers:
    def test_ok_response_echoes_id(self):
        assert ok_response(7, tables=2) == {"ok": True, "tables": 2, "id": 7}

    def test_ok_response_without_id(self):
        assert "id" not in ok_response(None, created=True)

    def test_error_response_shape(self):
        response = error_response(
            3, "overloaded", "queue full", queue_depth=9
        )
        assert response["ok"] is False
        assert response["id"] == 3
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["queue_depth"] == 9

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            error_response(None, "nope", "msg")
