"""Trace generation and the replay harness: determinism and outcomes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import (
    POLICIES,
    TRACES,
    make_policy,
    make_trace,
    shifting_hotset_trace,
    simulate,
    zipf_trace,
)


class TestTraces:
    def test_zipf_trace_is_seeded_and_bounded(self):
        a = zipf_trace(10_000, 500, 1.1, seed=3)
        b = zipf_trace(10_000, 500, 1.1, seed=3)
        assert np.array_equal(a, b)
        assert a.dtype == np.int64
        assert a.min() >= 1 and a.max() <= 500

    def test_zipf_trace_seed_matters(self):
        a = zipf_trace(5_000, 500, 1.1, seed=3)
        b = zipf_trace(5_000, 500, 1.1, seed=4)
        assert not np.array_equal(a, b)

    def test_zipf_skew_concentrates_on_low_ranks(self):
        trace = zipf_trace(50_000, 1_000, 1.2, seed=5)
        head_share = np.mean(trace <= 10)
        assert head_share > 0.3

    def test_shifting_trace_rotates_the_hot_set(self):
        trace = shifting_hotset_trace(20_000, 1_000, 1.2, seed=5,
                                      phases=2)
        first, second = trace[:10_000], trace[10_000:]
        top_first = np.bincount(first, minlength=1_001).argmax()
        top_second = np.bincount(second, minlength=1_001).argmax()
        assert top_first != top_second

    def test_shifting_trace_is_seeded(self):
        a = shifting_hotset_trace(5_000, 300, 1.1, seed=9)
        b = shifting_hotset_trace(5_000, 300, 1.1, seed=9)
        assert np.array_equal(a, b)
        assert a.min() >= 1 and a.max() <= 300

    def test_make_trace_resolves_the_catalogue(self):
        for kind in TRACES:
            trace = make_trace(kind, 1_000, 100, 1.0, seed=1)
            assert len(trace) == 1_000

    def test_make_trace_rejects_unknown_kinds(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            make_trace("bogus", 10, 10, 1.0)

    def test_bad_trace_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            zipf_trace(-1, 10, 1.0)
        with pytest.raises(ValueError):
            shifting_hotset_trace(100, 10, 1.0, phases=0)


class TestSimulate:
    def test_result_accounting_is_consistent(self):
        trace = zipf_trace(5_000, 200, 1.1, seed=2)
        result = simulate(make_policy("lru", 50, seed=2), trace)
        assert result.policy == "lru"
        assert result.capacity == 50
        assert result.requests == 5_000
        assert result.hits + result.misses == result.requests
        assert result.hit_ratio == result.hits / result.requests
        payload = result.as_dict()
        assert payload["hits"] == result.hits
        assert payload["hit_ratio"] == result.hit_ratio

    def test_empty_trace_has_zero_hit_ratio(self):
        result = simulate(make_policy("lru", 10), [])
        assert result.requests == 0
        assert result.hit_ratio == 0.0

    def test_plain_iterables_are_accepted(self):
        result = simulate(make_policy("lru", 2), [1, 2, 1, 1])
        assert result.hits == 2

    def test_make_policy_resolves_the_catalogue(self):
        for name in POLICIES:
            policy = make_policy(name, 10, seed=1)
            assert type(policy).name == name

    def test_make_policy_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown cache policy"):
            make_policy("arc", 10)

    def test_simulation_is_deterministic(self):
        trace = zipf_trace(5_000, 500, 1.1, seed=6)
        first = simulate(make_policy("tinylfu", 100, seed=6), trace)
        second = simulate(make_policy("tinylfu", 100, seed=6), trace)
        assert first == second

    def test_tinylfu_beats_lru_on_a_seeded_zipf_trace(self):
        # The PR's headline claim, pinned at a fixed seed so the margin
        # is a constant, not a distribution.
        trace = zipf_trace(50_000, 20_000, 1.1, seed=7)
        lru = simulate(make_policy("lru", 500, seed=11), trace)
        tinylfu = simulate(make_policy("tinylfu", 500, seed=11), trace)
        assert tinylfu.hit_ratio > lru.hit_ratio + 0.03

    def test_tinylfu_survives_a_hot_set_shift_better_than_lfu(self):
        trace = shifting_hotset_trace(40_000, 10_000, 1.1, seed=7,
                                      phases=4)
        lfu = simulate(make_policy("lfu", 400, seed=11), trace)
        tinylfu = simulate(make_policy("tinylfu", 400, seed=11), trace)
        assert tinylfu.hit_ratio > lfu.hit_ratio
