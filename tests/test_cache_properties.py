"""Property tests for the TinyLFU aging step and admission determinism.

The halving bound is *derived*, not probabilistic: ``scale(0.5)``
floor-divides each counter, so every per-row readout of the halved
sketch sits within 0.5 of half the original readout, and the median of
values that each move by at most 0.5 itself moves by at most 0.5:

    |halved.estimate(q) - estimate(q) / 2| <= 0.5    for every q.

That makes it safe to assert under hypothesis on arbitrary streams and
seeds — no tolerance tuning, no flake hunting.  The paper's
probabilistic guarantee (estimates within the error term of true
counts, §3.2/§4) is asserted separately at fixed seeds in the exact
regime, where the sketch is wide enough that estimates equal true
counts and halving must land within rounding of half the true count.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.cache import TinyLFUCache
from repro.core.countsketch import CountSketch

ITEMS = st.one_of(
    st.integers(min_value=0, max_value=60),
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
)
STREAMS = st.lists(ITEMS, max_size=150)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestScaleHalfProperty:
    @settings(max_examples=40, deadline=None)
    @given(STREAMS, SEEDS)
    def test_halved_estimate_is_within_half_of_half(self, stream, seed):
        sketch = CountSketch(5, 32, seed=seed)
        sketch.extend(stream)
        halved = sketch.scale(0.5)
        for item in set(stream) | {"absent"}:
            assert abs(halved.estimate(item)
                       - sketch.estimate(item) / 2) <= 0.5

    @settings(max_examples=40, deadline=None)
    @given(STREAMS)
    def test_repeated_halving_decays_toward_zero(self, stream):
        sketch = CountSketch(5, 64, seed=3)
        sketch.extend(stream)
        for _ in range(12):
            sketch = sketch.scale(0.5)
        for item in set(stream):
            # Positive counters this small decay to 0; negative ones
            # floor to the -1 fixed point, whose signed readout is +-1.
            # Either way every per-row readout — hence the median —
            # ends within 1 of zero.
            assert abs(sketch.estimate(item)) <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(STREAMS)
    def test_halving_tracks_half_the_true_counts_in_the_exact_regime(
        self, stream
    ):
        # Width 512 >> 64 distinct items at depth 5: the paper's error
        # term is far below 1 here, and estimates are exact at these
        # fixed seeds.  Halving must then land within floor-rounding of
        # half the true count.
        sketch = CountSketch(5, 512, seed=11)
        sketch.extend(stream)
        counts: dict = {}
        for item in stream:
            counts[item] = counts.get(item, 0) + 1
        for item, count in counts.items():
            assert sketch.estimate(item) == count
        halved = sketch.scale(0.5)
        for item, count in counts.items():
            assert abs(halved.estimate(item) - count / 2) <= 0.5


class TestAdmissionDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(STREAMS, SEEDS)
    def test_seeded_replay_is_bit_identical(self, stream, seed):
        a = TinyLFUCache(4, sample_size=20, seed=seed)
        b = TinyLFUCache(4, sample_size=20, seed=seed)
        assert [a.request(key) for key in stream] == \
            [b.request(key) for key in stream]
        assert a.segment_sizes() == b.segment_sizes()
        assert a.frequency.sketch == b.frequency.sketch
        assert a.frequency.resets == b.frequency.resets
        for item in set(stream):
            assert a.contains(item) == b.contains(item)
            assert a.frequency.estimate(item) == \
                b.frequency.estimate(item)

    @settings(max_examples=25, deadline=None)
    @given(STREAMS, SEEDS)
    def test_resident_set_never_exceeds_capacity(self, stream, seed):
        cache = TinyLFUCache(4, sample_size=20, seed=seed)
        for key in stream:
            cache.request(key)
            assert len(cache) <= cache.capacity
            sizes = cache.segment_sizes()
            assert sizes["window"] <= cache.window_capacity
            assert (sizes["probation"] + sizes["protected"]
                    <= cache.main_capacity)
            assert sizes["protected"] <= cache.protected_capacity
