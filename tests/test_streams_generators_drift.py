"""Tests for the generator zoo and the drift-pair builder."""

from collections import Counter

import pytest

from repro.streams.drift import make_drift_pair
from repro.streams.generators import (
    adversarial_boundary_stream,
    planted_heavy_hitter_stream,
    uniform_stream,
)


class TestUniformStream:
    def test_length_and_range(self):
        stream = uniform_stream(m=20, n=1000, seed=0)
        assert len(stream) == 1000
        assert all(1 <= item <= 20 for item in stream)

    def test_roughly_uniform(self):
        stream = uniform_stream(m=10, n=50_000, seed=1)
        counts = stream.counts()
        for item in range(1, 11):
            assert abs(counts[item] - 5000) < 6 * 5000**0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_stream(0, 10)
        with pytest.raises(ValueError):
            uniform_stream(10, -1)

    def test_deterministic(self):
        assert list(uniform_stream(5, 100, seed=2)) == list(
            uniform_stream(5, 100, seed=2)
        )


class TestPlantedHeavyHitters:
    def test_heavy_items_labelled(self):
        stream = planted_heavy_hitter_stream(
            m=100, n=5000, heavy_items=3, heavy_fraction=0.5, seed=0
        )
        counts = stream.counts()
        assert counts["heavy-1"] > 0
        assert counts["heavy-2"] > 0
        assert counts["heavy-3"] > 0

    def test_heavy_fraction_respected(self):
        stream = planted_heavy_hitter_stream(
            m=500, n=40_000, heavy_items=4, heavy_fraction=0.4, seed=1
        )
        counts = stream.counts()
        heavy_total = sum(
            counts[f"heavy-{i}"] for i in range(1, 5)
        )
        assert abs(heavy_total / 40_000 - 0.4) < 0.02

    def test_heavy_items_dominate_background(self):
        stream = planted_heavy_hitter_stream(
            m=1000, n=20_000, heavy_items=2, heavy_fraction=0.5, seed=2
        )
        counts = stream.counts()
        background_max = max(
            count for item, count in counts.items() if isinstance(item, int)
        )
        assert counts["heavy-1"] > background_max

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(100, 100, 0, 0.5)
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(100, 100, 2, 0.0)
        with pytest.raises(ValueError):
            planted_heavy_hitter_stream(100, 100, 2, 1.0)


class TestAdversarialBoundary:
    def test_exact_counts(self):
        stream = adversarial_boundary_stream(k=2, l=4, scale=10, seed=0)
        counts = stream.counts()
        # Items 1..k occur scale+1 times; items k+1..l+1 occur scale times.
        assert counts[1] == 11
        assert counts[2] == 11
        for item in (3, 4, 5):
            assert counts[item] == 10

    def test_boundary_gap_is_one(self):
        stream = adversarial_boundary_stream(k=3, l=6, scale=100, seed=1)
        counts = Counter(stream.items)
        ranked = sorted(counts.values(), reverse=True)
        assert ranked[2] == ranked[3] + 1  # n_k = n_{k+1} + 1

    def test_padding_items_are_singletons(self):
        stream = adversarial_boundary_stream(
            k=1, l=2, scale=5, padding_items=7, seed=2
        )
        counts = stream.counts()
        singletons = [c for c in counts.values() if c == 1]
        assert len(singletons) == 7

    def test_shuffled(self):
        stream = adversarial_boundary_stream(k=2, l=4, scale=50, seed=3)
        # Not sorted: the first occurrences of distinct items interleave.
        first_half_distinct = len(set(list(stream)[: len(stream) // 2]))
        assert first_half_distinct >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            adversarial_boundary_stream(0, 2, 10)
        with pytest.raises(ValueError):
            adversarial_boundary_stream(3, 2, 10)
        with pytest.raises(ValueError):
            adversarial_boundary_stream(1, 2, 0)


class TestDriftPair:
    def test_shapes(self):
        pair = make_drift_pair(m=200, n=5000, seed=0)
        assert len(pair.before) == 5000
        assert len(pair.after) == 5000

    def test_risers_and_fallers_disjoint(self):
        pair = make_drift_pair(m=500, n=1000, num_risers=4, num_fallers=4,
                               seed=1)
        assert not set(pair.risers) & set(pair.fallers)

    def test_risers_rise_and_fallers_fall(self):
        pair = make_drift_pair(
            m=500, n=40_000, num_risers=3, num_fallers=3, boost=8.0, seed=2
        )
        changes = pair.true_changes()
        for riser in pair.risers:
            assert changes[riser] > 0
        for faller in pair.fallers:
            assert changes[faller] < 0

    def test_planted_items_dominate_top_changes(self):
        pair = make_drift_pair(
            m=500, n=40_000, num_risers=3, num_fallers=3, boost=10.0, seed=3
        )
        top = {item for item, __ in pair.top_changes(6)}
        planted = set(pair.risers) | set(pair.fallers)
        assert len(top & planted) >= 4

    def test_true_changes_sum_to_zero(self):
        """Both streams have equal length, so changes sum to zero."""
        pair = make_drift_pair(m=100, n=2000, seed=4)
        assert sum(pair.true_changes().values()) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_drift_pair(m=100, n=100, boost=1.0)
        with pytest.raises(ValueError):
            make_drift_pair(m=5, n=100, num_risers=4, num_fallers=4)

    def test_deterministic(self):
        a = make_drift_pair(m=100, n=500, seed=5)
        b = make_drift_pair(m=100, n=500, seed=5)
        assert list(a.before) == list(b.before)
        assert list(a.after) == list(b.after)
