"""Tests for the estimate error envelopes."""

import pytest

from repro.analysis.confidence import (
    EstimateInterval,
    estimate_with_f2_interval,
    estimate_with_spread_interval,
    f2_error_scale,
)
from repro.core.countsketch import CountSketch
from repro.core.params import gamma


class TestEstimateInterval:
    def test_contains(self):
        interval = EstimateInterval(10.0, 8.0, 12.0)
        assert 9.0 in interval
        assert 8.0 in interval
        assert 13.0 not in interval

    def test_half_width(self):
        assert EstimateInterval(10.0, 8.0, 12.0).half_width == 2.0


class TestF2Envelope:
    def test_scale_conservative_vs_true_gamma(self, zipf_counts, zipf_stats):
        sketch = CountSketch(5, 256, seed=1)
        sketch.update_counts(zipf_counts)
        observed = f2_error_scale(sketch)
        true_gamma = gamma(zipf_stats.tail_second_moment(10), 256)
        # F2 >= tail moment, so the observable scale dominates (allow
        # 20% F2-estimation noise).
        assert observed >= 0.8 * true_gamma

    def test_interval_centered_on_estimate(self, zipf_counts):
        sketch = CountSketch(5, 256, seed=1)
        sketch.update_counts(zipf_counts)
        interval = estimate_with_f2_interval(sketch, 1, multiplier=2.0)
        assert interval.estimate == sketch.estimate(1)
        assert interval.high - interval.estimate == pytest.approx(
            interval.estimate - interval.low
        )

    def test_multiplier_validation(self):
        sketch = CountSketch(3, 16, seed=0)
        with pytest.raises(ValueError):
            estimate_with_f2_interval(sketch, "x", multiplier=0)

    def test_empirical_coverage(self, zipf_counts, zipf_stats):
        """The 2γ̂ envelope covers ≥ 90% of mid-frequency items."""
        sketch = CountSketch(5, 256, seed=2)
        sketch.update_counts(zipf_counts)
        items = [item for item, __ in zipf_stats.top_k(200)]
        covered = sum(
            1
            for item in items
            if zipf_counts[item] in estimate_with_f2_interval(
                sketch, item, multiplier=2.0
            )
        )
        assert covered / len(items) >= 0.9

    def test_wider_multiplier_covers_more(self, zipf_counts):
        sketch = CountSketch(5, 64, seed=3)
        sketch.update_counts(zipf_counts)
        narrow = estimate_with_f2_interval(sketch, 50, multiplier=0.5)
        wide = estimate_with_f2_interval(sketch, 50, multiplier=4.0)
        assert wide.half_width > narrow.half_width

    def test_empty_sketch_zero_scale(self):
        assert f2_error_scale(CountSketch(3, 16, seed=0)) == 0.0


class TestSpreadEnvelope:
    def test_exact_rows_give_zero_radius(self):
        sketch = CountSketch(5, 4096, seed=4)
        sketch.update("only", 42)
        interval = estimate_with_spread_interval(sketch, "only",
                                                 drop_extremes=0)
        assert interval.half_width == 0.0
        assert 42.0 in interval

    def test_drop_extremes_validation(self):
        sketch = CountSketch(3, 16, seed=0)
        with pytest.raises(ValueError):
            estimate_with_spread_interval(sketch, "x", drop_extremes=3)
        with pytest.raises(ValueError):
            estimate_with_spread_interval(sketch, "x", drop_extremes=-1)

    def test_dropping_extremes_narrows(self, zipf_counts):
        sketch = CountSketch(5, 64, seed=5)
        sketch.update_counts(zipf_counts)
        keep_all = estimate_with_spread_interval(sketch, 30, drop_extremes=0)
        drop_two = estimate_with_spread_interval(sketch, 30, drop_extremes=2)
        assert drop_two.half_width <= keep_all.half_width

    def test_empirical_coverage(self, zipf_counts, zipf_stats):
        """The drop-1 spread envelope covers most mid-frequency items."""
        sketch = CountSketch(5, 256, seed=6)
        sketch.update_counts(zipf_counts)
        items = [item for item, __ in zipf_stats.top_k(200)]
        covered = sum(
            1
            for item in items
            if zipf_counts[item] in estimate_with_spread_interval(
                sketch, item, drop_extremes=1
            )
        )
        assert covered / len(items) >= 0.75
