"""Tests for repro.core.countsketch — the COUNT SKETCH data structure."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch

ITEMS = st.one_of(
    st.integers(min_value=0, max_value=10_000),
    st.text(min_size=1, max_size=8),
)


class TestConstruction:
    def test_shape(self):
        sketch = CountSketch(3, 10)
        assert sketch.depth == 3
        assert sketch.width == 10
        assert sketch.counters.shape == (3, 10)
        assert sketch.counters_used() == 30

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountSketch(0, 10)
        with pytest.raises(ValueError):
            CountSketch(3, 0)

    def test_fresh_sketch_is_zero(self):
        sketch = CountSketch(3, 10)
        assert sketch.total_weight == 0
        assert not sketch.counters.any()
        assert sketch.estimate("anything") == 0

    def test_counters_view_read_only(self):
        sketch = CountSketch(2, 4)
        with pytest.raises(ValueError):
            sketch.counters[0, 0] = 1  # repro: noqa-RS002 — asserts refusal

    def test_items_stored_zero(self):
        assert CountSketch(2, 4).items_stored() == 0

    def test_explicit_hashes_must_match_depth(self):
        donor = CountSketch(3, 10, seed=1)
        with pytest.raises(ValueError):
            CountSketch(2, 10, bucket_hashes=donor._bucket_hashes)

    def test_explicit_bucket_hash_range_checked(self):
        donor = CountSketch(3, 10, seed=1)
        with pytest.raises(ValueError):
            CountSketch(
                3,
                20,
                bucket_hashes=donor._bucket_hashes,
                sign_hashes=donor._sign_hashes,
            )


class TestAddEstimate:
    def test_single_item(self):
        sketch = CountSketch(5, 64, seed=0)
        sketch.update("x")
        assert sketch.estimate("x") == 1.0

    def test_repeated_item(self):
        sketch = CountSketch(5, 64, seed=0)
        for _ in range(100):
            sketch.update("x")
        assert sketch.estimate("x") == 100.0

    def test_weighted_update(self):
        sketch = CountSketch(5, 64, seed=0)
        sketch.update("x", 100)
        assert sketch.estimate("x") == 100.0

    def test_negative_update(self):
        sketch = CountSketch(5, 64, seed=0)
        sketch.update("x", 10)
        sketch.update("x", -4)
        assert sketch.estimate("x") == 6.0

    def test_total_weight_tracks_updates(self):
        sketch = CountSketch(3, 16, seed=0)
        sketch.update("a", 5)
        sketch.update("b", -2)
        assert sketch.total_weight == 3

    def test_isolated_items_exact_when_no_collisions(self):
        """Few items in a wide sketch: every estimate is exact."""
        sketch = CountSketch(5, 4096, seed=1)
        truth = {f"item-{i}": i + 1 for i in range(10)}
        sketch.update_counts(truth)
        for item, count in truth.items():
            assert sketch.estimate(item) == count

    def test_update_counts_matches_item_at_a_time(self):
        counts = Counter({"a": 3, "b": 5, "c": 2})
        one = CountSketch(3, 32, seed=4)
        one.update_counts(counts)
        two = CountSketch(3, 32, seed=4)
        for item, count in counts.items():
            for _ in range(count):
                two.update(item)
        assert one == two

    def test_extend(self):
        sketch = CountSketch(3, 32, seed=4)
        sketch.extend(["a", "b", "a"])
        assert sketch.estimate("a") == 2.0
        assert sketch.total_weight == 3

    def test_row_estimates_length(self):
        sketch = CountSketch(7, 32, seed=0)
        sketch.update("x", 3)
        rows = sketch.row_estimates("x")
        assert len(rows) == 7
        # With a single item there are no collisions: every row exact.
        assert all(r == 3.0 for r in rows)

    def test_median_of_row_estimates(self):
        import statistics

        sketch = CountSketch(5, 8, seed=2)
        for item in range(100):
            sketch.update(item)
        for item in (1, 5, 50):
            assert sketch.estimate(item) == statistics.median(
                sketch.row_estimates(item)
            )

    def test_estimate_mean_combiner(self):
        sketch = CountSketch(5, 64, seed=0)
        sketch.update("x", 10)
        assert sketch.estimate_mean("x") == 10.0

    def test_estimate_accuracy_on_real_stream(self, zipf_counts):
        sketch = CountSketch(5, 512, seed=3)
        sketch.update_counts(zipf_counts)
        top = zipf_counts.most_common(10)
        for item, count in top:
            assert abs(sketch.estimate(item) - count) <= 0.1 * count + 5


class TestUnbiasedness:
    def test_row_estimate_unbiased_over_seeds(self, zipf_counts):
        """Lemma 1: E[h_i[q]·s_i[q]] = n_q.  Average the (noisy) single-row
        estimates of a mid-frequency item over many independent sketches."""
        item, true = zipf_counts.most_common(50)[-1]
        total = 0.0
        trials = 200
        for seed in range(trials):
            sketch = CountSketch(1, 32, seed=seed)
            sketch.update_counts(zipf_counts)
            total += sketch.estimate(item)
        mean = total / trials
        # Standard error ~ gamma/sqrt(trials); be generous.
        assert abs(mean - true) < 0.25 * true + 30


class TestLinearity:
    def test_add_equals_concatenation(self):
        s1 = CountSketch(3, 64, seed=9)
        s2 = CountSketch(3, 64, seed=9)
        s1.extend(["a", "b", "a"])
        s2.extend(["b", "c"])
        combined = s1 + s2
        whole = CountSketch(3, 64, seed=9)
        whole.extend(["a", "b", "a", "b", "c"])
        assert combined == whole

    def test_subtract_estimates_difference(self):
        s1 = CountSketch(5, 256, seed=9)
        s2 = CountSketch(5, 256, seed=9)
        s1.update("a", 100)
        s2.update("a", 30)
        assert (s2 - s1).estimate("a") == -70.0

    def test_neg(self):
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        assert (-sketch).estimate("a") == -5.0
        assert (-sketch).total_weight == -5

    def test_scale(self):
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        assert sketch.scale(3).estimate("a") == 15.0

    def test_scale_preserves_int64_counters(self):
        # Regression: a float factor used to silently promote the counter
        # array to float64, breaking state_dict round-trips and equality.
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        scaled = sketch.scale(2.0)  # repro: noqa-RS005 — integral float OK
        assert scaled.counters.dtype == np.int64
        assert scaled == sketch.scale(2)
        assert scaled.total_weight == 10
        roundtrip = CountSketch.from_state_dict(scaled.state_dict())
        assert roundtrip == scaled

    def test_scale_rejects_non_reciprocal_fraction(self):
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        with pytest.raises(ValueError, match="integral"):
            sketch.scale(0.3)  # repro: noqa-RS005 — asserts the rejection
        with pytest.raises(ValueError, match="integral"):
            sketch.scale(np.float64(2.5))
        with pytest.raises(ValueError, match="integral"):
            sketch.scale(-0.5)  # repro: noqa-RS005 — asserts the rejection

    def test_scale_half_floor_divides_counters(self):
        # scale(0.5) is the TinyLFU reset: every counter floor-halves,
        # keeping int64 dtype.  Pin //-toward-negative-infinity semantics
        # for odd counters: 5 -> 2 but -5 -> -3.
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        sketch.update("b", -5)
        halved = sketch.scale(0.5)
        assert halved.counters.dtype == np.int64
        assert np.array_equal(halved.counters, sketch.counters // 2)
        assert halved.total_weight == sketch.total_weight // 2
        roundtrip = CountSketch.from_state_dict(halved.state_dict())
        assert roundtrip == halved

    def test_scale_half_negative_one_is_a_fixed_point(self):
        # Documented floor-semantics consequence: -1 // 2 == -1, so a -1
        # counter never decays to zero under repeated halving.
        sketch = CountSketch(1, 4, seed=0)
        sketch.update(0, -1)
        row = sketch.counters[0]
        assert row.sum() == -1 or row.sum() == 1  # sign hash may flip it
        twice = sketch.scale(0.5).scale(0.5)
        negatives = twice.counters[twice.counters < 0]
        assert all(value == -1 for value in negatives.tolist())

    def test_scale_quarter_is_two_halvings_of_even_counters(self):
        sketch = CountSketch(3, 16, seed=2)
        sketch.update("a", 8)
        sketch.update("b", 12)
        assert sketch.scale(0.25) == sketch.scale(0.5).scale(0.5)

    def test_scale_half_estimate_tracks_half_the_original(self):
        # Each per-row readout moves by at most 0.5 under floor-halving,
        # so the median estimate does too.
        sketch = CountSketch(5, 32, seed=3)
        for rank in range(1, 40):
            sketch.update(rank, 41 - rank)
        halved = sketch.scale(0.5)
        for rank in range(1, 40):
            drift = abs(halved.estimate(rank) - sketch.estimate(rank) / 2)
            assert drift <= 0.5

    def test_scale_rejects_non_numbers(self):
        sketch = CountSketch(3, 16, seed=1)
        with pytest.raises(TypeError):
            sketch.scale("3")
        with pytest.raises(TypeError):
            sketch.scale(True)

    def test_scale_accepts_np_integer(self):
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a", 5)
        scaled = sketch.scale(np.int64(3))
        assert scaled.counters.dtype == np.int64
        assert scaled.estimate("a") == 15.0

    def test_merge_in_place(self):
        s1 = CountSketch(3, 64, seed=9)
        s2 = CountSketch(3, 64, seed=9)
        s1.update("a", 2)
        s2.update("a", 3)
        s1.merge(s2)
        assert s1.estimate("a") == 5.0
        assert s1.total_weight == 5

    def test_add_then_subtract_roundtrip(self):
        s1 = CountSketch(3, 64, seed=9)
        s2 = CountSketch(3, 64, seed=9)
        s1.extend(["a", "b"])
        s2.extend(["c"])
        assert (s1 + s2) - s2 == s1

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValueError):
            CountSketch(3, 64, seed=9) + CountSketch(3, 32, seed=9)

    def test_incompatible_seeds_rejected(self):
        with pytest.raises(ValueError):
            CountSketch(3, 64, seed=9) + CountSketch(3, 64, seed=10)

    def test_non_sketch_rejected(self):
        with pytest.raises(TypeError):
            CountSketch(3, 64).merge("nope")

    def test_compatible_with(self):
        assert CountSketch(3, 64, seed=9).compatible_with(
            CountSketch(3, 64, seed=9)
        )
        assert not CountSketch(3, 64, seed=9).compatible_with(
            CountSketch(3, 64, seed=8)
        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ITEMS, max_size=30), st.lists(ITEMS, max_size=30))
    def test_linearity_property(self, items1, items2):
        """CS(S1) + CS(S2) == CS(S1 || S2) for arbitrary streams."""
        s1 = CountSketch(3, 16, seed=5)
        s2 = CountSketch(3, 16, seed=5)
        s1.extend(items1)
        s2.extend(items2)
        whole = CountSketch(3, 16, seed=5)
        whole.extend(items1 + items2)
        assert (s1 + s2) == whole

    @settings(max_examples=25, deadline=None)
    @given(st.lists(ITEMS, max_size=30))
    def test_self_subtraction_is_zero(self, items):
        sketch = CountSketch(3, 16, seed=5)
        sketch.extend(items)
        zero = sketch - sketch
        assert not zero.counters.any()
        assert zero.estimate("whatever") == 0.0


class TestMomentEstimation:
    def test_f2_exact_single_item(self):
        sketch = CountSketch(5, 64, seed=0)
        sketch.update("x", 10)
        assert sketch.estimate_f2() == 100.0

    def test_f2_close_on_stream(self, zipf_counts, zipf_stats):
        sketch = CountSketch(7, 1024, seed=2)
        sketch.update_counts(zipf_counts)
        true_f2 = zipf_stats.second_moment()
        assert abs(sketch.estimate_f2() - true_f2) < 0.15 * true_f2

    def test_inner_product_orthogonal_streams(self):
        s1 = CountSketch(7, 1024, seed=3)
        s2 = CountSketch(7, 1024, seed=3)
        s1.update("a", 50)
        s2.update("b", 70)
        # Disjoint supports: true inner product 0; estimate should be small.
        assert abs(s1.inner_product(s2)) < 500

    def test_inner_product_identical_streams_is_f2(self, zipf_counts):
        sketch = CountSketch(7, 1024, seed=4)
        sketch.update_counts(zipf_counts)
        assert sketch.inner_product(sketch) == sketch.estimate_f2()

    def test_inner_product_requires_compatible(self):
        with pytest.raises(ValueError):
            CountSketch(3, 16, seed=1).inner_product(CountSketch(3, 16, seed=2))


class TestCopyEqualitySerialization:
    def test_copy_independent(self):
        sketch = CountSketch(3, 16, seed=1)
        sketch.update("a")
        clone = sketch.copy()
        clone.update("a")
        assert sketch.estimate("a") == 1.0
        assert clone.estimate("a") == 2.0

    def test_equality(self):
        s1 = CountSketch(3, 16, seed=1)
        s2 = CountSketch(3, 16, seed=1)
        assert s1 == s2
        s1.update("a")
        assert s1 != s2

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(CountSketch(3, 16))

    def test_state_dict_roundtrip(self, zipf_counts):
        sketch = CountSketch(3, 32, seed=6)
        sketch.update_counts(zipf_counts)
        revived = CountSketch.from_state_dict(sketch.state_dict())
        assert revived == sketch
        assert revived.total_weight == sketch.total_weight
        assert revived.estimate(1) == sketch.estimate(1)

    def test_state_dict_counters_are_int64_array(self):
        # The counters travel as an independent int64 ndarray (no boxed
        # Python ints); mutating the copy must not alias the sketch.
        sketch = CountSketch(2, 8, seed=0)
        sketch.update("a", 3)
        state = sketch.state_dict()
        assert isinstance(state["counters"], np.ndarray)
        assert state["counters"].dtype == np.int64
        state["counters"][0, 0] += 99
        assert sketch.estimate("a") == 3.0

    def test_state_dict_listified_counters_still_load(self):
        # Older serializations carried nested lists; they must keep
        # loading (e.g. a state dict that went through JSON via tolist()).
        sketch = CountSketch(2, 8, seed=0)
        sketch.update("a", 3)
        state = sketch.state_dict()
        state["counters"] = state["counters"].tolist()
        assert CountSketch.from_state_dict(state) == sketch

    def test_from_state_dict_rejects_wrong_coefficient_count(self):
        sketch = CountSketch(3, 8, seed=0)
        for field in ("bucket_coefficients", "sign_coefficients"):
            state = sketch.state_dict()
            state[field] = state[field][:-1]  # one list short of depth
            with pytest.raises(ValueError, match="coefficient"):
                CountSketch.from_state_dict(state)

    def test_from_state_dict_rejects_non_integral_counters(self):
        sketch = CountSketch(2, 8, seed=0)
        state = sketch.state_dict()
        state["counters"] = state["counters"].astype(float) + 0.5
        with pytest.raises(ValueError, match="integral"):
            CountSketch.from_state_dict(state)

    def test_from_state_dict_accepts_integral_float_counters(self):
        # A float array with exactly-integer values (JSON damage) loads.
        sketch = CountSketch(2, 8, seed=0)
        sketch.update("a", 3)
        state = sketch.state_dict()
        state["counters"] = state["counters"].astype(float)
        assert CountSketch.from_state_dict(state) == sketch

    def test_state_dict_shape_validation(self):
        sketch = CountSketch(2, 8, seed=0)
        state = sketch.state_dict()
        state["counters"] = [[0] * 8]  # wrong depth
        with pytest.raises(ValueError):
            CountSketch.from_state_dict(state)

    def test_state_dict_rejects_custom_hashes(self):
        from repro.hashing.multiply_shift import MultiplyShiftFamily
        from repro.hashing.sign import SignHashFamily
        from repro.hashing.mersenne import KWiseFamily

        buckets = MultiplyShiftFamily(out_bits=4, seed=1).draw(2)
        signs = SignHashFamily(KWiseFamily(seed=2)).draw(2)
        sketch = CountSketch(2, 16, bucket_hashes=buckets, sign_hashes=signs)
        with pytest.raises(TypeError):
            sketch.state_dict()

    def test_l2_norm(self):
        sketch = CountSketch(1, 4, seed=0)
        sketch.update("x", 3)
        assert sketch.l2_norm() == 3.0

    def test_repr(self):
        text = repr(CountSketch(3, 16, seed=1))
        assert "depth=3" in text and "width=16" in text


class TestPositionCache:
    def test_cache_does_not_change_results(self):
        sketch = CountSketch(3, 32, seed=1)
        first = sketch.estimate("x")
        sketch.update("x", 5)
        assert first == 0.0
        assert sketch.estimate("x") == 5.0
        # Re-query through the cache path.
        assert sketch.estimate("x") == 5.0

    def test_cache_cap_eviction(self):
        from repro.core import countsketch as module

        original = module._POSITION_CACHE_LIMIT
        module._POSITION_CACHE_LIMIT = 4
        try:
            sketch = CountSketch(2, 16, seed=1)
            for item in range(20):
                sketch.update(item)
            for item in range(20):
                assert sketch.estimate(item) >= 0 or True  # no crash
            assert len(sketch._position_cache) <= 4
        finally:
            module._POSITION_CACHE_LIMIT = original

    def test_over_limit_evicts_batch_not_wholesale(self, monkeypatch):
        # Regression: the cache used to clear() wholesale when full, so a
        # high-cardinality stream thrashed (grow to the limit, drop every
        # entry, repeat).  Eviction must drop only a batch of old entries
        # and keep the rest.
        from repro.core import countsketch as module

        monkeypatch.setattr(module, "_POSITION_CACHE_LIMIT", 16)
        sketch = CountSketch(2, 32, seed=3)
        for item in range(200):  # every item distinct: worst case
            sketch.update(item)
        cache = sketch._position_cache
        assert len(cache) <= 16
        # A wholesale clear would leave exactly 1 entry right after an
        # over-limit insert; batch eviction keeps most of the cache warm.
        assert len(cache) > 8

    def test_eviction_keeps_results_correct(self, monkeypatch):
        from repro.core import countsketch as module

        monkeypatch.setattr(module, "_POSITION_CACHE_LIMIT", 8)
        cached = CountSketch(3, 64, seed=5)
        for item in range(100):
            cached.update(item, item + 1)
        fresh = CountSketch(3, 64, seed=5)
        fresh.update_counts({item: item + 1 for item in range(100)})
        assert cached == fresh
        for item in (0, 7, 50, 99):  # mix of evicted and cached keys
            assert cached.estimate(item) == fresh.estimate(item)

    def test_eviction_is_fifo_over_insertion_order(self, monkeypatch):
        from repro.core import countsketch as module

        monkeypatch.setattr(module, "_POSITION_CACHE_LIMIT", 8)
        monkeypatch.setattr(module, "_POSITION_CACHE_EVICT_SHIFT", 2)
        sketch = CountSketch(2, 16, seed=1)
        for item in range(8):
            sketch.update(item)
        sketch.update(100)  # over the limit: evicts the 2 oldest entries
        cache_keys = set(sketch._position_cache)
        from repro.hashing.encode import encode_key

        assert encode_key(0) not in cache_keys
        assert encode_key(1) not in cache_keys
        assert encode_key(7) in cache_keys
        assert encode_key(100) in cache_keys
