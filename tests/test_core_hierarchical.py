"""Tests for the hierarchical Count Sketch and one-pass max-change."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical import (
    HierarchicalCountSketch,
    heavy_change_items,
)


def make(domain_bits=12, depth=5, width=256, seed=0):
    return HierarchicalCountSketch(domain_bits, depth, width, seed)


class TestConstruction:
    def test_domain_bounds(self):
        with pytest.raises(ValueError):
            HierarchicalCountSketch(0)
        with pytest.raises(ValueError):
            HierarchicalCountSketch(63)

    def test_domain_size(self):
        assert make(domain_bits=10).domain_size == 1024

    def test_counters_used(self):
        sketch = make(domain_bits=8, depth=3, width=16)
        assert sketch.counters_used() == 8 * 3 * 16

    def test_items_stored_zero(self):
        assert make().items_stored() == 0


class TestUpdatesAndEstimates:
    def test_item_domain_enforced(self):
        sketch = make(domain_bits=8)
        with pytest.raises(ValueError):
            sketch.update(256)
        with pytest.raises(ValueError):
            sketch.update(-1)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            make().update("string")
        with pytest.raises(TypeError):
            make().update(True)

    def test_leaf_estimate(self):
        sketch = make()
        sketch.update(42, 17)
        assert sketch.estimate(42) == 17.0

    def test_negative_updates_turnstile(self):
        sketch = make()
        sketch.update(42, 10)
        sketch.update(42, -4)
        assert sketch.estimate(42) == 6.0
        assert sketch.total_weight == 6

    def test_prefix_estimates_aggregate(self):
        sketch = make(domain_bits=8)
        # Items 4 and 5 share every prefix above the lowest bit.
        sketch.update(4, 10)
        sketch.update(5, 20)
        assert sketch.prefix_estimate(4 >> 1, 1) == 30.0
        assert sketch.prefix_estimate(4 >> 2, 2) == 30.0

    def test_prefix_shift_bounds(self):
        sketch = make(domain_bits=8)
        with pytest.raises(ValueError):
            sketch.prefix_estimate(0, 8)

    def test_extend_aggregates(self):
        sketch = make()
        sketch.extend([7, 7, 9])
        assert sketch.estimate(7) == 2.0
        assert sketch.estimate(9) == 1.0


class TestHeavyHitters:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            make().heavy_hitters(0)

    def test_finds_planted_heavy_items(self):
        sketch = make(domain_bits=12, width=512, seed=1)
        heavy = {100: 500, 2000: 300, 3333: 200}
        for item, count in heavy.items():
            sketch.update(item, count)
        for item in range(4000):
            if item not in heavy:
                sketch.update(item, 1)
        found = dict(sketch.heavy_hitters(threshold=150))
        assert set(found) == set(heavy)
        for item, count in heavy.items():
            assert abs(found[item] - count) <= 0.15 * count

    def test_sorted_by_magnitude(self):
        sketch = make(seed=2)
        sketch.update(1, 100)
        sketch.update(2, 300)
        sketch.update(3, 200)
        items = [item for item, __ in sketch.heavy_hitters(50)]
        assert items == [2, 3, 1]

    def test_empty_when_nothing_heavy(self):
        sketch = make(seed=3)
        for item in range(200):
            sketch.update(item, 1)
        assert sketch.heavy_hitters(threshold=100) == []

    def test_absolute_mode_finds_negative_mass(self):
        sketch = make(seed=4)
        sketch.update(77, -400)
        assert sketch.heavy_hitters(200, absolute=True) == [(77, -400.0)]
        assert sketch.heavy_hitters(200, absolute=False) == []

    def test_query_count_logarithmic(self, monkeypatch):
        """The descent touches O(2^expand + heavy · domain_bits) nodes,
        not the 2^16 domain — measured by counting estimate calls."""
        from repro.core.countsketch import CountSketch

        sketch = make(domain_bits=16, width=512, seed=5)
        sketch.update(12345, 1000)
        for item in range(500):
            sketch.update(item, 1)

        calls = {"count": 0}
        original = CountSketch.estimate

        def wrapped(self, item):
            calls["count"] += 1
            return original(self, item)

        monkeypatch.setattr(CountSketch, "estimate", wrapped)
        sketch.heavy_hitters(threshold=500, expand_levels=8)
        # 2^8 unconditional nodes + 2 children per surviving node per
        # pruned level — far below the 2^16 domain.
        assert calls["count"] <= 2**8 + 8 * 16


class TestLinearity:
    def test_subtraction_estimates_change(self):
        a = make(seed=6)
        b = make(seed=6)
        a.update(10, 100)
        b.update(10, 30)
        b.update(11, 50)
        diff = b - a
        assert diff.estimate(10) == -70.0
        assert diff.estimate(11) == 50.0
        assert diff.total_weight == -20

    def test_addition(self):
        a = make(seed=7)
        b = make(seed=7)
        a.update(3, 4)
        b.update(3, 6)
        assert (a + b).estimate(3) == 10.0

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            make(seed=1) - make(seed=2)
        with pytest.raises(ValueError):
            make(domain_bits=10) - make(domain_bits=12)
        with pytest.raises(TypeError):
            make() - "nope"

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=255), max_size=60),
           st.lists(st.integers(min_value=0, max_value=255), max_size=60))
    def test_difference_of_identical_prefixes_cancels(self, s1, s2):
        a = HierarchicalCountSketch(8, 3, 32, seed=8)
        b = HierarchicalCountSketch(8, 3, 32, seed=8)
        a.extend(s1 + s2)
        b.extend(s2 + s1)
        diff = a - b
        for level in diff._levels:
            assert not level.counters.any()


class TestOnePassMaxChange:
    def test_finds_planted_changes(self):
        before = [5] * 300 + [9] * 100 + list(range(100, 400))
        after = [5] * 50 + [9] * 100 + [777] * 200 + list(range(100, 400))
        found = heavy_change_items(
            before, after, threshold=100, domain_bits=12, width=512, seed=9
        )
        found_items = {item for item, __ in found}
        assert found_items == {5, 777}
        changes = dict(found)
        assert changes[5] == pytest.approx(-250, abs=30)
        assert changes[777] == pytest.approx(200, abs=30)

    def test_no_changes_no_results(self):
        stream = list(range(100)) * 3
        assert heavy_change_items(
            stream, stream, threshold=10, domain_bits=10, seed=10
        ) == []

    def test_matches_two_pass_recall_on_drift(self):
        """The 1-pass hierarchical variant recovers the same planted
        drift as the paper's 2-pass algorithm."""
        from repro.streams.drift import make_drift_pair

        pair = make_drift_pair(m=1_000, n=20_000, boost=10.0, seed=11)
        truth = {item for item, __ in pair.top_changes(6)}
        threshold = abs(pair.top_changes(6)[-1][1]) * 0.7
        found = heavy_change_items(
            list(pair.before), list(pair.after),
            threshold=threshold, domain_bits=10, width=512, seed=12,
        )
        found_items = {item for item, __ in found}
        assert len(found_items & truth) >= 5
