"""Tests for the observability layer: registry primitives, the no-op
default, hot-path instrumentation capture, exporters, and the overhead
bench plumbing."""

import json
import math
import re
import sys
from pathlib import Path

import pytest

from repro.core.countsketch import CountSketch
from repro.core.maxchange import MaxChangeFinder
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    to_json,
    to_prometheus,
    use_registry,
    write_json,
    write_prometheus,
)
from repro.parallel import parallel_sketch, parallel_topk


class TestPrimitives:
    def test_counter(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge(self):
        gauge = Gauge("x")
        gauge.set(3.5)
        gauge.inc()
        gauge.dec(0.5)
        assert gauge.value == 4.0

    def test_histogram_exact_summaries(self):
        histogram = Histogram("x")
        for value in [5.0, 1.0, 3.0]:
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 9.0
        assert histogram.min == 1.0
        assert histogram.max == 5.0

    def test_histogram_quantiles_small_sample(self):
        histogram = Histogram("x")
        for value in range(1, 101):
            histogram.observe(float(value))
        # Reservoir (1024) holds everything: quantiles are exact.
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 100.0
        assert abs(histogram.quantile(0.5) - 50.5) < 1e-9
        pct = histogram.percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]

    def test_histogram_reservoir_bounded(self):
        histogram = Histogram("x", reservoir_size=32)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._reservoir) == 32
        # Quantiles remain within the observed range.
        assert 0.0 <= histogram.quantile(0.5) <= 9_999.0

    def test_histogram_empty_quantile_nan(self):
        assert math.isnan(Histogram("x").quantile(0.5))

    def test_histogram_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Histogram("x", reservoir_size=0)
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)


class TestRegistry:
    def test_handles_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["p50"] == 3.0

    def test_merge_counters(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        registry.merge_counters({"c": 4, "d": 2})
        assert registry.counter("c").value == 5
        assert registry.counter("d").value == 2

    def test_timed_context_manager(self):
        registry = MetricsRegistry()
        with registry.timed("t"):
            pass
        assert registry.histogram("t").count == 1
        assert registry.histogram("t").sum >= 0.0

    def test_timed_decorator(self):
        registry = MetricsRegistry()

        @registry.timed("t")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert registry.histogram("t").count == 2

    def test_global_default_is_null(self):
        registry = get_registry()
        assert isinstance(registry, NullRegistry)
        assert not metrics_enabled()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_null_registry_discards_everything(self):
        registry = NullRegistry()
        registry.counter("c").inc(10)
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        with registry.timed("t"):
            pass
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_use_registry_restores_previous(self):
        outer = get_registry()
        inner = MetricsRegistry()
        with use_registry(inner) as active:
            assert active is inner
            assert get_registry() is inner
            assert metrics_enabled()
        assert get_registry() is outer

    def test_set_registry_none_restores_null(self):
        previous = set_registry(MetricsRegistry())
        try:
            assert metrics_enabled()
        finally:
            set_registry(None)
        assert not metrics_enabled()
        assert isinstance(previous, NullRegistry)


class TestSketchInstrumentation:
    def test_dense_counts_updates_estimates_and_cache(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            sketch = CountSketch(3, 32, seed=0)
            sketch.update("a")
            sketch.update("a")
            sketch.update("b")
            sketch.estimate("a")
        counters = registry.snapshot()["counters"]
        assert counters["countsketch_updates_total"] == 3
        assert counters["countsketch_estimates_total"] == 1
        # First sight of "a" and "b" miss; the rest hit.
        assert counters["countsketch_position_cache_misses_total"] == 2
        assert counters["countsketch_position_cache_hits_total"] == 2

    def test_cache_evictions_counted(self, monkeypatch):
        import repro.core.countsketch as module

        monkeypatch.setattr(module, "_POSITION_CACHE_LIMIT", 8)
        registry = MetricsRegistry()
        with use_registry(registry):
            sketch = CountSketch(3, 32, seed=0)
            for value in range(20):
                sketch.update(value)
        counters = registry.snapshot()["counters"]
        assert counters["countsketch_position_cache_evictions_total"] > 0

    def test_disabled_sketch_records_nothing(self):
        sketch = CountSketch(3, 32, seed=0)
        assert sketch._metrics is None
        sketch.update("a")
        registry = MetricsRegistry()
        with use_registry(registry):
            # Built before enabling: still uninstrumented, by design.
            sketch.update("a")
        assert registry.snapshot()["counters"] == {}

    def test_sparse_counts(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            sketch = SparseCountSketch(3, 32, seed=0)
            sketch.update("a")
            sketch.estimate("a")
        counters = registry.snapshot()["counters"]
        assert counters["sparse_countsketch_updates_total"] == 1
        assert counters["sparse_countsketch_estimates_total"] == 1

    def test_vectorized_counts_items(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            sketch = VectorizedCountSketch(3, 32, seed=0)
            sketch.update_batch([1, 2, 3, 4])
            sketch.estimate_batch([1, 2])
        counters = registry.snapshot()["counters"]
        assert counters["vectorized_countsketch_update_batches_total"] == 1
        assert counters["vectorized_countsketch_update_items_total"] == 4
        assert counters["vectorized_countsketch_estimate_items_total"] == 2


class TestTrackerInstrumentation:
    def test_heap_churn_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            tracker = TopKTracker(2, depth=3, width=64, seed=0)
            for item in ["a"] * 5 + ["b"] * 3 + ["c"] * 2 + ["d"]:
                tracker.update(item)
        counters = registry.snapshot()["counters"]
        assert counters["topk_updates_total"] == 11
        # a, b admitted freely; c evicts someone; d may reject or evict.
        assert counters["topk_heap_admissions_total"] >= 2
        assert (
            counters["topk_heap_admissions_total"]
            - counters["topk_heap_evictions_total"]
            == 2  # final heap size
        )
        assert counters["topk_exact_increments_total"] >= 6
        churn = (
            counters["topk_heap_evictions_total"]
            + counters["topk_heap_rejections_total"]
        )
        assert churn >= 1

    def test_maxchange_churn_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            finder = MaxChangeFinder(2, depth=3, width=64, seed=0)
            before = ["a"] * 5 + ["b"] * 4 + ["c"] * 3 + ["d"]
            after = ["a"] * 1 + ["b"] * 9 + ["c"] * 3 + ["d"]
            finder.first_pass(before, after)
            finder.second_pass(before, after)
        counters = registry.snapshot()["counters"]
        assert counters["maxchange_admissions_total"] >= 2
        assert (
            counters["maxchange_admissions_total"]
            + counters["maxchange_rejections_total"]
            >= 4 - counters["maxchange_evictions_total"]
        )

    def test_window_rotation_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            window = JumpingWindowSketch(window=20, buckets=4, depth=3,
                                         width=32, seed=0)
            window.update("x", 100)
        counters = registry.snapshot()["counters"]
        assert counters["window_rotations_total"] == 100 // 5
        assert counters["window_buckets_expired_total"] > 0


class TestParallelInstrumentation:
    def test_serial_engine_metrics(self):
        registry = MetricsRegistry()
        stream = list(range(50)) * 4
        with use_registry(registry):
            __, summary = parallel_sketch(stream, 3, 64, seed=0,
                                          n_workers=1, chunk_size=32)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["parallel_shards_total"] == summary.n_shards
        assert counters["parallel_items_total"] == len(stream)
        # Worker-side sketch updates were folded into the parent registry.
        assert counters["countsketch_updates_total"] > 0
        merge = snapshot["histograms"]["parallel_merge_seconds"]
        assert merge["count"] == summary.n_shards
        assert snapshot["gauges"]["parallel_workers"] == 1.0

    def test_fork_engine_merges_worker_counters(self):
        from repro.parallel.engine import resolve_executor

        if resolve_executor(2) != "fork":
            pytest.skip("fork start method unavailable")
        registry = MetricsRegistry()
        stream = list(range(40)) * 5
        with use_registry(registry):
            top, summary = parallel_topk(stream, 5, 3, 64, seed=0,
                                         n_workers=2, chunk_size=25)
        counters = registry.snapshot()["counters"]
        assert summary.executor == "fork"
        assert counters["parallel_shards_total"] == summary.n_shards
        # Updates happened in forked children yet must be visible here.
        assert counters["countsketch_updates_total"] > 0
        assert counters["topk_updates_total"] > 0

    def test_engine_is_silent_by_default(self):
        registry = MetricsRegistry()
        parallel_sketch(list(range(100)), 3, 64, seed=0, n_workers=1,
                        chunk_size=32)
        assert registry.snapshot()["counters"] == {}


PROMETHEUS_LINE = re.compile(
    r"^(?:# (?:TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(?:\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" (?:[+-]?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|Inf)|NaN))$"
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("updates_total").inc(7)
    registry.gauge("workers").set(4)
    histogram = registry.histogram("merge_seconds")
    for value in [0.25, 0.5, 0.125]:
        histogram.observe(value)
    return registry


class TestExporters:
    def test_json_roundtrip(self):
        registry = _populated_registry()
        document = json.loads(to_json(registry))
        assert document["counters"]["updates_total"] == 7
        assert document["gauges"]["workers"] == 4.0
        assert document["histograms"]["merge_seconds"]["count"] == 3
        assert document["histograms"]["merge_seconds"]["sum"] == 0.875

    def test_write_json(self, tmp_path):
        path = tmp_path / "m.json"
        write_json(_populated_registry(), path)
        assert json.loads(path.read_text())["counters"]["updates_total"] == 7

    def test_prometheus_text_is_valid_exposition(self):
        text = to_prometheus(_populated_registry())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert PROMETHEUS_LINE.match(line), f"invalid line: {line!r}"

    def test_prometheus_families(self):
        text = to_prometheus(_populated_registry())
        assert "# TYPE updates_total counter" in text
        assert "updates_total 7" in text
        assert "# TYPE workers gauge" in text
        assert "# TYPE merge_seconds summary" in text
        assert 'merge_seconds{quantile="0.5"} 0.25' in text
        assert "merge_seconds_sum 0.875" in text
        assert "merge_seconds_count 3" in text

    def test_prometheus_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.counter("bad.name with-chars").inc()
        text = to_prometheus(registry)
        assert "bad_name_with_chars 1" in text
        for line in text.strip().splitlines():
            assert PROMETHEUS_LINE.match(line), f"invalid line: {line!r}"

    def test_write_prometheus(self, tmp_path):
        path = tmp_path / "m.prom"
        write_prometheus(_populated_registry(), path)
        assert "updates_total 7" in path.read_text()

    def test_empty_registry_exports(self):
        registry = MetricsRegistry()
        assert json.loads(to_json(registry)) == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert to_prometheus(registry) == ""


class TestOverheadBench:
    def test_bench_smoke_emits_json(self, tmp_path):
        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        sys.path.insert(0, str(bench_dir))
        try:
            import bench_overhead
        finally:
            sys.path.remove(str(bench_dir))
        out = tmp_path / "BENCH_overhead.json"
        code = bench_overhead.main([
            "--n", "4000", "--repeats", "1", "--json", str(out),
            # Tiny n is noisy; this test checks plumbing, not the gate.
            "--max-overhead-pct", "1000",
        ])
        assert code == 0
        record = json.loads(out.read_text())
        assert record["bench"] == "overhead"
        assert record["sketch_disabled_items_per_s"] > 0
        assert record["tracker_enabled_items_per_s"] > 0
        assert "sketch_overhead_pct" in record
