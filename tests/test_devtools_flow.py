"""Tests for the CFG builder and dataflow engine behind RS009-RS012.

Property tests generate random-but-valid function bodies from a small
statement grammar (terminators only in block-final position, so every
generated statement is live) and check the structural invariants the
flow rules rely on: every statement node reachable from entry, one
exit that every node can reach, no edges out of exit, deterministic
construction.  Targeted tests pin the try/finally edge shapes, and a
determinism test asserts two full runs over ``src/`` emit identical
JSON.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.flow import build_cfg, iter_function_cfgs
from repro.devtools.flow.cfg import CFG
from repro.devtools.lint import _ANALYSIS_CACHE, main

REPO_ROOT = Path(__file__).parent.parent

# -- statement grammar -------------------------------------------------------

_SIMPLE = ("x = 1", "y = x + call()", "call(x, y)", "pass")
_TERMINATORS = ("return x", "raise ValueError('boom')")
_MAX_DEPTH = 3


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


@st.composite
def _block(
    draw,
    depth: int = 0,
    in_loop: bool = False,
    allow_terminator: bool = True,
) -> list[str]:
    """A non-empty list of statement lines forming one valid block.

    Terminators (``return`` / ``raise`` / ``break`` / ``continue``)
    appear only in block-final position, and blocks whose termination
    would kill every path past the enclosing compound statement
    (``else`` branches, ``except`` handlers, ``finally`` bodies) never
    terminate — so no generated statement is dead code and full
    reachability must hold.
    """
    lines: list[str] = []
    for _ in range(draw(st.integers(1, 3))):
        choices = ["simple", "simple"]
        if depth < _MAX_DEPTH:
            choices += ["if", "while", "for", "try"]
        kind = draw(st.sampled_from(choices))
        if kind == "simple":
            lines.append(draw(st.sampled_from(_SIMPLE)))
        elif kind == "if":
            lines.append("if cond:")
            lines += _indent(draw(_block(depth + 1, in_loop)))
            if draw(st.booleans()):
                lines.append("else:")
                lines += _indent(
                    draw(_block(depth + 1, in_loop, False))
                )
        elif kind == "while":
            lines.append("while cond:")
            lines += _indent(draw(_block(depth + 1, True)))
        elif kind == "for":
            lines.append("for item in seq:")
            lines += _indent(draw(_block(depth + 1, True)))
        elif kind == "try":
            lines.append("try:")
            # Guarantee the body can raise so handler heads are live.
            lines += _indent(
                ["x = call()"] + draw(_block(depth + 1, in_loop))
            )
            with_handler = draw(st.booleans())
            if with_handler:
                lines.append("except ValueError:")
                lines += _indent(
                    draw(_block(depth + 1, in_loop, False))
                )
            if not with_handler or draw(st.booleans()):
                lines.append("finally:")
                lines += _indent(
                    draw(_block(depth + 1, in_loop, False))
                )
    # Optionally terminate the block (always in final position).
    terminators = list(_TERMINATORS)
    if in_loop:
        terminators += ["break", "continue"]
    if allow_terminator and draw(st.booleans()):
        lines.append(draw(st.sampled_from(terminators)))
    return lines


@st.composite
def _function_source(draw) -> str:
    body = draw(_block())
    return "\n".join(["def f(x, y, cond, seq, call):"] + _indent(body))


def _cfg_of(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


# -- property tests ----------------------------------------------------------


class TestCFGProperties:
    @settings(max_examples=200, deadline=None)
    @given(_function_source())
    def test_every_statement_reachable(self, source):
        cfg = _cfg_of(source)
        reachable = cfg.reachable()
        unreached = [
            node
            for node in cfg.statement_nodes()
            if node.index not in reachable
        ]
        assert not unreached, (source, [n.label for n in unreached])

    @settings(max_examples=200, deadline=None)
    @given(_function_source())
    def test_single_exit_reached_from_everywhere(self, source):
        cfg = _cfg_of(source)
        exits = [n for n in cfg.nodes if n.label == "exit"]
        assert len(exits) == 1
        assert not cfg.succs[CFG.EXIT]
        # Exit is reachable from every reachable node: walk backwards
        # from exit over predecessor edges.
        backwards = {CFG.EXIT}
        stack = [CFG.EXIT]
        while stack:
            for edge in cfg.preds[stack.pop()]:
                if edge.target not in backwards:
                    backwards.add(edge.target)
                    stack.append(edge.target)
        assert cfg.reachable() <= backwards, source

    @settings(max_examples=200, deadline=None)
    @given(_function_source())
    def test_entry_has_no_predecessors(self, source):
        cfg = _cfg_of(source)
        assert not cfg.preds[CFG.ENTRY]

    @settings(max_examples=100, deadline=None)
    @given(_function_source())
    def test_construction_deterministic(self, source):
        first = _cfg_of(source)
        second = _cfg_of(source)
        assert first.succs == second.succs
        assert first.preds == second.preds
        assert [n.label for n in first.nodes] == [
            n.label for n in second.nodes
        ]


# -- targeted edge-shape tests -----------------------------------------------


TRY_FINALLY = """
def f(path, handle=None):
    handle = acquire(path)
    try:
        data = handle.read()
    finally:
        handle.close()
    return data
"""


class TestTryFinallyEdges:
    def _nodes_by_label(self, cfg):
        by_label = {}
        for node in cfg.nodes:
            by_label.setdefault(node.label, []).append(node)
        return by_label

    def test_body_exception_routes_through_finally(self):
        cfg = _cfg_of(TRY_FINALLY)
        by_label = self._nodes_by_label(cfg)
        (finally_head,) = by_label["finally"]
        read_stmt = by_label["assign"][1]  # data = handle.read()
        exceptional = [
            edge.target
            for edge in cfg.succs[read_stmt.index]
            if edge.exceptional
        ]
        assert exceptional == [finally_head.index]

    def test_finally_exit_has_reraise_edge(self):
        cfg = _cfg_of(TRY_FINALLY)
        by_label = self._nodes_by_label(cfg)
        close_stmt = by_label["expr"][-1]  # handle.close()
        targets = {
            (edge.target, edge.exceptional)
            for edge in cfg.succs[close_stmt.index]
        }
        # Normal continuation to the return, re-raise continuation to
        # exit (an in-flight exception resumes after the finally runs).
        (return_stmt,) = by_label["return"]
        assert (return_stmt.index, False) in targets
        assert (CFG.EXIT, True) in targets

    def test_acquire_exception_bypasses_finally(self):
        # The acquire happens before the try: its exception must NOT
        # route through the finally (the handle was never bound).
        cfg = _cfg_of(TRY_FINALLY)
        by_label = self._nodes_by_label(cfg)
        acquire_stmt = by_label["assign"][0]
        exceptional = [
            edge.target
            for edge in cfg.succs[acquire_stmt.index]
            if edge.exceptional
        ]
        assert exceptional == [CFG.EXIT]


class TestAsyncAnnotations:
    def test_async_with_depth_marks_body(self):
        source = (
            "async def f(lock, table, key):\n"
            "    before = table.get(key)\n"
            "    async with lock:\n"
            "        inside = table.get(key)\n"
            "    after = table.get(key)\n"
        )
        tree = ast.parse(source)
        cfg = build_cfg(tree.body[0])
        depths = {
            ast.unparse(node.stmt.targets[0]): node.async_with_depth
            for node in cfg.statement_nodes()
            if isinstance(node.stmt, ast.Assign)
        }
        assert depths == {"before": 0, "inside": 1, "after": 0}

    def test_async_points_marked(self):
        source = (
            "async def f(lock, seq):\n"
            "    async with lock:\n"
            "        pass\n"
            "    async for item in seq:\n"
            "        pass\n"
        )
        tree = ast.parse(source)
        cfg = build_cfg(tree.body[0])
        flagged = sorted(
            node.label for node in cfg.nodes if node.is_async_point
        )
        assert flagged == ["asyncfor", "asyncwith"]


class TestModuleIteration:
    def test_nested_and_method_functions_found_in_order(self):
        source = (
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "    return inner\n"
            "class C:\n"
            "    def method(self):\n"
            "        pass\n"
        )
        names = [
            func.name for func, _ in iter_function_cfgs(ast.parse(source))
        ]
        assert names == ["outer", "inner", "method"]


# -- whole-repo determinism --------------------------------------------------


class TestDeterminism:
    def test_two_runs_over_src_emit_identical_json(self, capsys):
        outputs = []
        for _ in range(2):
            _ANALYSIS_CACHE.clear()  # force full re-analysis
            main(["--format", "json", str(REPO_ROOT / "src")])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        payload = json.loads(outputs[0])
        assert payload["files_checked"] > 50

    def test_fixture_findings_identical_across_runs(self, capsys):
        fixtures = REPO_ROOT / "tests" / "fixtures" / "lint"
        outputs = []
        for _ in range(2):
            _ANALYSIS_CACHE.clear()
            code = main(
                ["--format", "json", "--include-fixtures", str(fixtures)]
            )
            assert code == 1
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])["findings"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
