"""Tests for the group-testing heavy-hitter sketch."""

import random

import pytest

from repro.core.group_testing import GroupTestingSketch


def make(domain_bits=12, depth=3, width=256, seed=0):
    return GroupTestingSketch(domain_bits, depth, width, seed)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupTestingSketch(0)
        with pytest.raises(ValueError):
            GroupTestingSketch(63)
        with pytest.raises(ValueError):
            GroupTestingSketch(12, 0)
        with pytest.raises(ValueError):
            GroupTestingSketch(12, 3, 0)

    def test_counters_used(self):
        sketch = make(domain_bits=8, depth=3, width=16)
        assert sketch.counters_used() == 3 * 16 * 9

    def test_items_stored_zero(self):
        assert make().items_stored() == 0


class TestUpdatesEstimates:
    def test_item_validation(self):
        sketch = make(domain_bits=8)
        with pytest.raises(ValueError):
            sketch.update(256)
        with pytest.raises(TypeError):
            sketch.update("x")
        with pytest.raises(TypeError):
            sketch.update(True)

    def test_estimate_roundtrip(self):
        sketch = make()
        sketch.update(42, 17)
        assert sketch.estimate(42) == 17.0
        assert sketch.total_weight == 17

    def test_turnstile(self):
        sketch = make()
        sketch.update(42, 10)
        sketch.update(42, -3)
        assert sketch.estimate(42) == 7.0

    def test_extend(self):
        sketch = make()
        sketch.extend([7, 7, 9])
        assert sketch.estimate(7) == 2.0


class TestDecoding:
    def test_single_heavy_item_decoded(self):
        sketch = make(seed=1)
        sketch.update(1234, 500)
        assert sketch.heavy_hitters(100) == [(1234, 500.0)]

    def test_zero_bits_item_decoded(self):
        """Item 0 has no set bits; the decoder must still return it."""
        sketch = make(seed=2)
        sketch.update(0, 300)
        assert sketch.heavy_hitters(100) == [(0, 300.0)]

    def test_all_bits_item_decoded(self):
        sketch = make(domain_bits=10, seed=3)
        sketch.update(1023, 300)
        assert sketch.heavy_hitters(100) == [(1023, 300.0)]

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            make().heavy_hitters(0)

    def test_planted_heavy_items_found_in_noise(self):
        sketch = make(domain_bits=12, depth=3, width=512, seed=4)
        heavy = {100: 600, 2000: 400, 3333: 250}
        for item, count in heavy.items():
            sketch.update(item, count)
        rng = random.Random(5)
        for _ in range(3000):
            sketch.update(rng.randrange(4096))
        found = dict(sketch.heavy_hitters(150))
        assert set(found) == set(heavy)
        for item, count in heavy.items():
            assert abs(found[item] - count) <= 0.2 * count

    def test_no_heavy_items_empty(self):
        sketch = make(seed=6)
        for item in range(500):
            sketch.update(item)
        assert sketch.heavy_hitters(100) == []

    def test_garbage_decodes_filtered_by_verification(self):
        """Two comparable items in one cell decode to garbage; the
        verification step must not report items whose verified estimate
        misses the threshold."""
        sketch = make(domain_bits=12, depth=3, width=4, seed=7)  # collisions
        rng = random.Random(8)
        for _ in range(2000):
            sketch.update(rng.randrange(4096))
        for item, estimate in sketch.heavy_hitters(300):
            assert abs(sketch.estimate(item)) >= 300

    def test_absolute_mode_for_negative_mass(self):
        sketch = make(seed=9)
        sketch.update(77, -400)
        assert sketch.heavy_hitters(200, absolute=True) == [(77, -400.0)]
        assert sketch.heavy_hitters(200, absolute=False) == []


class TestDifferenceDecoding:
    def test_heavy_changes_via_subtraction(self):
        a = make(domain_bits=12, width=512, seed=10)
        b = make(domain_bits=12, width=512, seed=10)
        base = list(range(100, 400)) * 3
        a.extend(base + [5] * 300)
        b.extend(base + [5] * 40 + [777] * 250)
        diff = b - a
        found = dict(diff.heavy_hitters(150, absolute=True))
        assert set(found) == {5, 777}
        assert found[5] == pytest.approx(-260, abs=30)
        assert found[777] == pytest.approx(250, abs=30)

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            make(seed=1) - make(seed=2)
        with pytest.raises(TypeError):
            make() - "nope"


class TestAgainstHierarchy:
    def test_same_answers_as_hierarchical(self):
        """Both enumeration routes find the same planted heavy set."""
        from repro.core.hierarchical import HierarchicalCountSketch

        rng = random.Random(11)
        stream = [rng.randrange(4096) for _ in range(4000)]
        stream += [999] * 500 + [2222] * 350
        gt = make(domain_bits=12, depth=3, width=512, seed=12)
        hier = HierarchicalCountSketch(12, 5, 512, seed=12)
        for item in stream:
            gt.update(item)
            hier.update(item)
        gt_found = {item for item, __ in gt.heavy_hitters(200)}
        hier_found = {item for item, __ in hier.heavy_hitters(200)}
        assert gt_found == hier_found == {999, 2222}
