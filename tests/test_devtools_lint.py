"""Self-tests for the ``repro.devtools.lint`` AST + dataflow rule suite.

Each rule RS001-RS012 is demonstrated by a pair of fixture files under
``tests/fixtures/lint/``: a ``*_bad.py`` that must produce true
positives and a ``*_good.py`` that must lint clean.  Bad fixtures are
linted under a synthetic ``src/`` display path so the test-code
relaxations (RS001/RS003) do not apply to them; the RS007/RS008/RS009/
RS011/RS012 pairs are linted under a ``src/repro/service/`` path, a
package those rules patrol.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import (
    FAST_RULE_CODES,
    FLOW_RULE_CODES,
    RULES,
    RULES_BY_CODE,
    Finding,
    lint_paths,
    lint_source,
    main,
    parse_rule_spec,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).parent.parent

#: Display path under which fixtures are linted: library code, every
#: rule active.
SRC_PATH = "src/repro/under_test.py"

#: Display path for the RS007/RS008 pairs: those rules only patrol the
#: service package (async server code sharing one event loop).
SERVICE_PATH = "src/repro/service/under_test.py"

#: (code, bad fixture, expected true positives, good fixture).
CASES = [
    ("RS001", "rs001_bad.py", 6, "rs001_good.py"),
    ("RS002", "rs002_bad.py", 4, "rs002_good.py"),
    ("RS003", "rs003_bad.py", 5, "rs003_good.py"),
    ("RS004", "rs004_bad.py", 4, "rs004_good.py"),
    ("RS005", "rs005_bad.py", 6, "rs005_good.py"),
    ("RS006", "rs006_bad.py", 5, "rs006_good.py"),
    ("RS007", "rs007_bad.py", 5, "rs007_good.py"),
    ("RS008", "rs008_bad.py", 6, "rs008_good.py"),
    ("RS009", "rs009_bad.py", 4, "rs009_good.py"),
    ("RS010", "rs010_bad.py", 5, "rs010_good.py"),
    ("RS011", "rs011_bad.py", 4, "rs011_good.py"),
    ("RS012", "rs012_bad.py", 4, "rs012_good.py"),
]

#: Rules scoped to one package lint their fixtures under that path.
CASE_PATHS = {
    "RS007": SERVICE_PATH,
    "RS008": SERVICE_PATH,
    "RS009": SERVICE_PATH,
    "RS011": SERVICE_PATH,
    "RS012": SERVICE_PATH,
}


def lint_fixture(name: str, path: str = SRC_PATH) -> list[Finding]:
    return lint_source((FIXTURES / name).read_text(), path)


class TestRuleCatalogue:
    def test_twelve_rules_with_stable_codes(self):
        assert [rule.code for rule in RULES] == [
            "RS001", "RS002", "RS003", "RS004",
            "RS005", "RS006", "RS007", "RS008",
            "RS009", "RS010", "RS011", "RS012",
        ]

    def test_fast_flow_partition(self):
        assert tuple(FAST_RULE_CODES) + tuple(FLOW_RULE_CODES) == tuple(
            rule.code for rule in RULES
        )

    def test_every_rule_has_name_summary_hint(self):
        for rule in RULES:
            assert rule.name
            assert rule.summary
            assert rule.hint

    def test_every_rule_has_fixture_pair(self):
        codes = {code for code, *_ in CASES}
        assert codes == set(RULES_BY_CODE)
        for code, bad, _, good in CASES:
            assert (FIXTURES / bad).is_file(), bad
            assert (FIXTURES / good).is_file(), good


class TestFixtures:
    @pytest.mark.parametrize("code,bad,expected,good", CASES)
    def test_bad_fixture_true_positives(self, code, bad, expected, good):
        findings = lint_fixture(bad, path=CASE_PATHS.get(code, SRC_PATH))
        hits = [f for f in findings if f.code == code]
        assert len(hits) == expected, [f.format_human() for f in findings]

    @pytest.mark.parametrize("code,bad,expected,good", CASES)
    def test_good_fixture_clean(self, code, bad, expected, good):
        findings = lint_fixture(good, path=CASE_PATHS.get(code, SRC_PATH))
        assert findings == [], [f.format_human() for f in findings]

    def test_cross_rule_overlap_on_raw_merge(self):
        # `a._counters += b._counters` is both a mutation (RS002) and an
        # unchecked merge (RS004); the suite reports both.
        codes = {f.code for f in lint_fixture("rs004_bad.py")}
        assert {"RS002", "RS004"} <= codes


class TestTestCodeRelaxations:
    def test_rs001_skipped_in_test_files(self):
        findings = lint_fixture("rs001_bad.py", path="tests/test_x.py")
        assert [f for f in findings if f.code == "RS001"] == []

    def test_rs003_skipped_in_test_files(self):
        findings = lint_fixture("rs003_bad.py", path="tests/test_x.py")
        assert [f for f in findings if f.code == "RS003"] == []

    def test_rs002_still_active_in_test_files(self):
        findings = lint_fixture("rs002_bad.py", path="tests/test_x.py")
        assert any(f.code == "RS002" for f in findings)


class TestSuppression:
    def test_noqa_fixture_fully_suppressed(self):
        assert lint_fixture("noqa_suppressed.py") == []

    def test_single_code_noqa(self):
        source = "import random\nx = random.random()  # repro: noqa-RS001\n"
        assert lint_source(source, SRC_PATH) == []

    def test_noqa_for_other_code_does_not_suppress(self):
        source = "import random\nx = random.random()  # repro: noqa-RS005\n"
        findings = lint_source(source, SRC_PATH)
        assert [f.code for f in findings] == ["RS001"]

    def test_blanket_noqa(self):
        source = "import random\nx = random.random()  # repro: noqa\n"
        assert lint_source(source, SRC_PATH) == []

    def test_suppressed_count_reported(self):
        result = lint_paths([FIXTURES / "noqa_suppressed.py"])
        assert result.ok
        assert result.files_checked == 1
        assert result.suppressed == 7


class TestRS001Details:
    def test_seeded_constructors_pass(self):
        source = (
            "import random\nimport numpy as np\n"
            "a = random.Random(7)\n"
            "b = np.random.default_rng(7)\n"
        )
        assert lint_source(source, SRC_PATH) == []

    def test_unseeded_constructors_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(source, SRC_PATH)
        assert [f.code for f in findings] == ["RS001"]

    def test_aliased_numpy_import_detected(self):
        source = "import numpy\nx = numpy.random.randint(0, 5)\n"
        findings = lint_source(source, SRC_PATH)
        assert [f.code for f in findings] == ["RS001"]

    def test_from_import_detected(self):
        source = "from random import shuffle\nshuffle([1, 2])\n"
        findings = lint_source(source, SRC_PATH)
        assert [f.code for f in findings] == ["RS001"]


class TestRS004Details:
    def test_merge_implementation_exempt(self):
        source = (
            "class S:\n"
            "    def merge(self, other):\n"
            "        if self.width != other.width:\n"
            "            raise ValueError('incompatible')\n"
            "        self._counters += other._counters\n"
        )
        findings = lint_source(source, SRC_PATH)
        assert findings == [], [f.format_human() for f in findings]

    def test_core_modules_exempt(self):
        source = "def peek(sketch):\n    return sketch._counters\n"
        assert lint_source(source, "src/repro/core/x.py") == []
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS004"]


class TestRS006Details:
    def test_store_package_exempt(self):
        source = (
            "import json\n"
            "def snap(sketch):\n"
            "    return json.dumps(sketch.state_dict())\n"
        )
        assert lint_source(source, "src/repro/store/codec.py") == []
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS006"]

    def test_from_import_detected(self):
        source = (
            "from pickle import dumps as freeze\n"
            "def snap(sketch):\n"
            "    return freeze(sketch.state_dict())\n"
        )
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS006"]

    def test_serializing_plain_data_clean(self):
        source = (
            "import json\n"
            "def report(stats):\n"
            "    return json.dumps(stats, sort_keys=True)\n"
        )
        assert lint_source(source, SRC_PATH) == []

    def test_state_nested_in_argument_tree_detected(self):
        source = (
            "import json\n"
            "def snap(sketch):\n"
            "    return json.dumps({'c': sketch.counters.tolist()})\n"
        )
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS006"]

    def test_active_in_test_files(self):
        # Unlike RS001/RS003 there is no test relaxation: ad-hoc dumps in
        # tests would ossify an unversioned format just the same.
        findings = lint_fixture("rs006_bad.py", path="tests/test_x.py")
        assert [f.code for f in findings] == ["RS006"] * 5


class TestRS007Details:
    BLOCKING_ASYNC = (
        "import time\n"
        "async def apply_batch():\n"
        "    time.sleep(0.01)\n"
    )

    def test_active_only_under_repro_service(self):
        findings = lint_source(self.BLOCKING_ASYNC, SERVICE_PATH)
        assert [f.code for f in findings] == ["RS007"]
        assert lint_source(self.BLOCKING_ASYNC, SRC_PATH) == []

    def test_sync_functions_exempt(self):
        source = "import time\ndef flush():\n    time.sleep(0.01)\n"
        assert lint_source(source, SERVICE_PATH) == []

    def test_sync_helper_nested_in_async_exempt(self):
        # The innermost function decides: a sync closure's body runs
        # wherever it is later called, not on the awaiting coroutine.
        source = (
            "import time\n"
            "async def outer():\n"
            "    def helper():\n"
            "        time.sleep(0.01)\n"
            "    return helper\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_awaited_namesakes_exempt(self):
        # `await x.read_text()` is an async implementation (anyio-style),
        # not the blocking pathlib call.
        source = (
            "async def manifest(path):\n"
            "    return await path.read_text()\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_store_io_from_import_detected(self):
        source = (
            "from repro.store import save\n"
            "async def snap(summary, path):\n"
            "    save(summary, path)\n"
        )
        assert [f.code for f in lint_source(source, SERVICE_PATH)] == [
            "RS007"
        ]

    def test_builtin_open_detected(self):
        source = (
            "async def manifest():\n"
            "    with open('service.json') as handle:\n"
            "        return handle.read()\n"
        )
        assert [f.code for f in lint_source(source, SERVICE_PATH)] == [
            "RS007"
        ]

    def test_run_in_executor_handoff_clean(self):
        source = (
            "import asyncio\n"
            "from repro.store import save\n"
            "async def snap(summary, path):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, save, summary, path)\n"
        )
        assert lint_source(source, SERVICE_PATH) == []


class TestRS008Details:
    STRUCT_IN_HANDLER = (
        "import struct\n"
        "def decode(payload):\n"
        "    return struct.unpack_from('<I', payload)\n"
    )

    def test_active_only_under_repro_service(self):
        findings = lint_source(self.STRUCT_IN_HANDLER, SERVICE_PATH)
        assert [f.code for f in findings] == ["RS008"]
        assert lint_source(self.STRUCT_IN_HANDLER, SRC_PATH) == []

    def test_protocol_module_exempt(self):
        path = "src/repro/service/protocol.py"
        assert lint_source(self.STRUCT_IN_HANDLER, path) == []

    def test_frombuffer_detected_tolist_clean(self):
        source = (
            "import numpy as np\n"
            "def weights(buf):\n"
            "    return np.frombuffer(buf, dtype='<i8')\n"
        )
        assert [f.code for f in lint_source(source, SERVICE_PATH)] == [
            "RS008"
        ]
        clean = (
            "import numpy as np\n"
            "def weights(counts):\n"
            "    return np.asarray(counts, dtype=np.int64).tolist()\n"
        )
        assert lint_source(clean, SERVICE_PATH) == []

    def test_int_byte_methods_detected(self):
        source = (
            "def tag(request_id, payload):\n"
            "    head = request_id.to_bytes(8, 'little')\n"
            "    return head, int.from_bytes(payload[:4], 'little')\n"
        )
        findings = lint_source(source, SERVICE_PATH)
        assert [f.code for f in findings] == ["RS008", "RS008"]

    def test_delegating_to_protocol_clean(self):
        source = (
            "from repro.service.protocol import pack_frame\n"
            "def encode(message):\n"
            "    return pack_frame(message)\n"
        )
        assert lint_source(source, SERVICE_PATH) == []


class TestRS009Details:
    RACE = (
        "import asyncio\n"
        "class T:\n"
        "    async def bump(self, key):\n"
        "        cur = self._counters[key]\n"
        "        await asyncio.sleep(0)\n"
        "        self._counters[key] = cur + 1\n"
    )

    def test_active_only_in_async_tiers(self):
        assert [f.code for f in lint_source(self.RACE, SERVICE_PATH)] == [
            "RS009"
        ]
        cluster = "src/repro/cluster/under_test.py"
        assert [f.code for f in lint_source(self.RACE, cluster)] == [
            "RS009"
        ]
        assert lint_source(self.RACE, SRC_PATH) == []

    def test_sync_function_exempt(self):
        source = self.RACE.replace("async def", "def").replace(
            "await asyncio.sleep(0)", "asyncio.get_event_loop()"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_await_before_read_clean(self):
        source = (
            "import asyncio\n"
            "class T:\n"
            "    async def bump(self, key):\n"
            "        await asyncio.sleep(0)\n"
            "        cur = self._counters[key]\n"
            "        self._counters[key] = cur + 1\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_wait_applied_barrier_exempt(self):
        source = self.RACE.replace(
            "asyncio.sleep(0)", "self.wait_applied(seq)"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_async_with_lock_exempt(self):
        source = (
            "import asyncio\n"
            "class T:\n"
            "    async def bump(self, key):\n"
            "        async with self._lock:\n"
            "            cur = self._counters[key]\n"
            "            await asyncio.sleep(0)\n"
            "            self._counters[key] = cur + 1\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_race_on_one_branch_detected(self):
        source = (
            "import asyncio\n"
            "class T:\n"
            "    async def bump(self, key, slow):\n"
            "        cur = self._counters[key]\n"
            "        if slow:\n"
            "            await asyncio.sleep(0)\n"
            "        self._counters[key] = cur + 1\n"
        )
        assert [f.code for f in lint_source(source, SERVICE_PATH)] == [
            "RS009"
        ]


class TestRS010Details:
    def test_taint_through_rebinding_chain(self):
        source = (
            "def f(sketch, n):\n"
            "    a = n / 2\n"
            "    b = a\n"
            "    sketch.update('x', b)\n"
        )
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS010"]

    def test_int_cast_sanitizes(self):
        source = (
            "def f(sketch, n):\n"
            "    a = n / 2\n"
            "    sketch.update('x', int(a))\n"
        )
        assert lint_source(source, SRC_PATH) == []

    def test_literal_at_sink_is_rs005_not_rs010(self):
        source = "def f(sketch):\n    sketch.update('x', 1.5)\n"
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS005"]

    def test_numpy_alias_resolved(self):
        source = (
            "import numpy as xp\n"
            "def f(sketch):\n"
            "    c = xp.float64(2)\n"
            "    sketch.update('x', c)\n"
        )
        assert [f.code for f in lint_source(source, SRC_PATH)] == ["RS010"]

    def test_taint_cleared_by_loop_rebinding(self):
        source = (
            "def f(sketch, items):\n"
            "    count = 0.5\n"
            "    for count in items:\n"
            "        sketch.update('x', count)\n"
        )
        assert lint_source(source, SRC_PATH) == []

    def test_inactive_in_test_code(self):
        source = (
            "def f(sketch, n):\n"
            "    w = n / 2\n"
            "    sketch.update('x', w)\n"
        )
        assert lint_source(source, "tests/test_x.py") == []


class TestRS011Details:
    LEAK = (
        "def f(path):\n"
        "    handle = open(path)\n"
        "    data = handle.read()\n"
        "    handle.close()\n"
        "    return data\n"
    )

    def test_active_only_in_resource_tiers(self):
        for scoped in (
            SERVICE_PATH,
            "src/repro/cluster/under_test.py",
            "src/repro/store/under_test.py",
        ):
            assert [f.code for f in lint_source(self.LEAK, scoped)] == [
                "RS011"
            ], scoped
        assert lint_source(self.LEAK, SRC_PATH) == []

    def test_try_finally_clean(self):
        source = (
            "def f(path):\n"
            "    handle = open(path)\n"
            "    try:\n"
            "        return handle.read()\n"
            "    finally:\n"
            "        handle.close()\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_with_statement_clean(self):
        source = (
            "def f(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        )
        assert lint_source(source, SERVICE_PATH) == []

    def test_finding_reported_at_acquisition(self):
        findings = lint_source(self.LEAK, SERVICE_PATH)
        assert [f.line for f in findings] == [2]


class TestRS012Details:
    def test_dotted_exception_type_resolved(self):
        source = (
            "import errors\n"
            "class S:\n"
            "    def _op_drop(self, name):\n"
            "        raise errors.ShardFault(name)\n"
        )
        assert [f.code for f in lint_source(source, SERVICE_PATH)] == [
            "RS012"
        ]

    def test_inactive_outside_service_and_cluster(self):
        source = (
            "class S:\n"
            "    def _op_drop(self, name):\n"
            "        raise ValueError(name)\n"
        )
        assert lint_source(source, SRC_PATH) == []

    def test_raise_from_stays_in_vocabulary(self):
        source = (
            "class S:\n"
            "    def _op_drop(self, name):\n"
            "        try:\n"
            "            self._drop(name)\n"
            "        except KeyError as error:\n"
            "            raise _NoSuchTable(name) from error\n"
        )
        assert lint_source(source, SERVICE_PATH) == []


class TestRuleSelection:
    def test_parse_single_and_list(self):
        assert parse_rule_spec("RS005") == frozenset({"RS005"})
        assert parse_rule_spec("RS001,RS003") == frozenset(
            {"RS001", "RS003"}
        )

    def test_parse_range(self):
        assert parse_rule_spec("RS009-RS012") == frozenset(
            {"RS009", "RS010", "RS011", "RS012"}
        )

    def test_parse_rejects_unknown_and_malformed(self):
        with pytest.raises(ValueError):
            parse_rule_spec("RS099")
        with pytest.raises(ValueError):
            parse_rule_spec("bogus")
        with pytest.raises(ValueError):
            parse_rule_spec("")

    def test_select_filters_findings(self):
        bad = FIXTURES / "rs005_bad.py"
        selected = lint_paths([bad], select=frozenset({"RS001"}))
        assert selected.ok
        kept = lint_paths([bad], select=frozenset({"RS005"}))
        assert {f.code for f in kept.findings} == {"RS005"}

    def test_ignore_filters_findings(self):
        bad = FIXTURES / "rs005_bad.py"
        result = lint_paths([bad], ignore=frozenset({"RS005"}))
        assert result.ok

    def test_cli_select_and_ignore(self, capsys):
        bad = str(FIXTURES / "rs005_bad.py")
        assert main(["--select", "RS001-RS004", bad]) == 0
        assert main(["--ignore", "RS005", bad]) == 0
        assert main(["--select", "RS005", bad]) == 1
        capsys.readouterr()

    def test_cli_bad_spec_exits_two(self, capsys):
        assert main(["--select", "RS099", "src"]) == 2
        assert "unknown rule code" in capsys.readouterr().err


class TestBaseline:
    def test_baseline_allowlists_known_findings(self, capsys, tmp_path):
        bad = str(FIXTURES / "rs005_bad.py")
        assert main(["--format", "json", bad]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        code = main(["--baseline", str(baseline), bad])
        captured = capsys.readouterr()
        assert code == 0
        assert "baselined" in captured.err

    def test_baseline_does_not_hide_new_findings(self, capsys, tmp_path):
        assert main(["--format", "json", str(FIXTURES / "rs002_bad.py")]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        code = main(["--baseline", str(baseline),
                     str(FIXTURES / "rs005_bad.py")])
        capsys.readouterr()
        assert code == 1

    def test_bare_findings_array_accepted(self, capsys, tmp_path):
        bad = str(FIXTURES / "rs005_bad.py")
        assert main(["--format", "json", bad]) == 1
        payload = json.loads(capsys.readouterr().out)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(payload["findings"]))
        assert main(["--baseline", str(baseline), bad]) == 0
        capsys.readouterr()

    def test_invalid_baseline_exits_two(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        assert main(["--baseline", str(baseline), "src"]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_missing_baseline_exits_two(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["--baseline", str(missing), "src"]) == 2
        capsys.readouterr()


class TestRepoIsClean:
    """The acceptance gate, as a tier-1 test: the repo lints clean."""

    def test_src_and_tests_lint_clean(self):
        result = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert result.ok, "\n".join(
            f.format_human() for f in result.findings
        )
        assert result.files_checked > 100

    def test_flow_rules_clean_on_repo(self):
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests"],
            select=frozenset(FLOW_RULE_CODES),
        )
        assert result.ok, "\n".join(
            f.format_human() for f in result.findings
        )

    def test_fixtures_excluded_from_directory_walks(self):
        result = lint_paths([REPO_ROOT / "tests"])
        paths = {f.path for f in result.findings}
        assert not any("fixtures" in p for p in paths)
        included = lint_paths(
            [REPO_ROOT / "tests" / "fixtures" / "lint"],
            include_fixtures=True,
        )
        assert not included.ok


class TestCommandLine:
    def test_human_output_and_exit_code(self, capsys):
        code = main([str(FIXTURES / "rs005_bad.py")])
        captured = capsys.readouterr()
        assert code == 1
        assert "RS005" in captured.out
        assert "fix:" in captured.out
        assert "finding(s)" in captured.err

    def test_json_output(self, capsys):
        code = main(["--format", "json", str(FIXTURES / "rs005_bad.py")])
        captured = capsys.readouterr()
        assert code == 1
        payload = json.loads(captured.out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        findings = payload["findings"]
        assert findings and all(f["code"] == "RS005" for f in findings)
        for field in ("path", "line", "col", "rule", "message", "hint"):
            assert field in findings[0]

    def test_clean_run_exits_zero(self, capsys):
        code = main([str(FIXTURES / "rs005_good.py")])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule.code in out

    def test_module_invocation(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "src", "tests"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            check=False,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "RuntimeWarning" not in proc.stderr
