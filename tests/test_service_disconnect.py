"""A client vanishing mid-pipeline must not taint the server.

Regression suite for the connection-teardown path: the peer
disappearing while acknowledgements are still queued has to cancel the
response writer, drop the queued acks, release the connection slot
(gauge and writer set), and leave every other connection — and the
acknowledged records — untouched.
"""

from __future__ import annotations

import asyncio

from repro.observability.registry import MetricsRegistry
from repro.service.client import AsyncServiceClient
from repro.service.protocol import pack_frame
from repro.service.server import SketchServer
from repro.service.tables import TableSpec


def spec_for(name: str = "t") -> TableSpec:
    return TableSpec(name, kind="sketch", depth=4, width=128, seed=3)


def run(coro):
    return asyncio.run(coro)


async def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() >= deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


class TestClientDisconnect:
    def test_abort_mid_pipeline_leaves_server_healthy(self):
        async def go():
            registry = MetricsRegistry()
            server = SketchServer([spec_for()], registry=registry)
            host, port = await server.start("127.0.0.1", 0)
            gauge = registry.gauge("service_open_connections")

            survivor = await AsyncServiceClient.connect(host, port)
            await survivor.ping()
            assert gauge.value == 1

            # A raw peer that floods pipelined ingest frames and never
            # reads a single acknowledgement, then vanishes abruptly.
            reader, writer = await asyncio.open_connection(host, port)
            await _wait_for(lambda: gauge.value == 2)
            for index in range(200):
                frame = pack_frame({
                    "op": "ingest", "id": index, "table": "t",
                    "records": [[f"ghost-{index}-{i}", 1]
                                for i in range(10)],
                })
                writer.write(frame)
            await writer.drain()
            writer.transport.abort()

            # The slot must come back without the survivor doing
            # anything, and without the server logging internal faults.
            await _wait_for(lambda: gauge.value == 1)

            # The survivor's connection still answers, and answers
            # exactly: whatever prefix of the ghost's frames was
            # acknowledged server-side has been applied atomically.
            await survivor.ingest("t", [("alive", 3)], wait=True)
            # Ghost batches were 10 records each and all-or-nothing;
            # the survivor added exactly one more record.
            applied = server.tables["t"].records_applied
            assert applied % 10 == 1
            estimate = await survivor.estimate("t", ["alive"])
            assert estimate[0] != 0.0

            # A fresh connection takes the freed slot.
            replacement = await AsyncServiceClient.connect(host, port)
            await replacement.ping()
            await replacement.close()
            await survivor.close()
            await _wait_for(lambda: gauge.value == 0)
            await server.stop()

        run(go())

    def test_acknowledged_records_survive_the_abort(self):
        async def go():
            server = SketchServer([spec_for()])
            host, port = await server.start("127.0.0.1", 0)

            # The doomed client pipelines batches and reads the acks
            # for the first half, so those are acknowledged for sure.
            doomed = await AsyncServiceClient.connect(host, port)
            acknowledged = []
            for index in range(5):
                records = [(f"keep-{index}-{i}", 1) for i in range(8)]
                await doomed.ingest("t", records)
                acknowledged.extend(records)
            # Vanish without a goodbye.
            doomed._transport._writer.transport.abort()  # noqa: SLF001

            checker = await AsyncServiceClient.connect(host, port)
            offline = spec_for().build()
            for item, count in acknowledged:
                offline.update(item, count)
            probes = [item for item, _ in acknowledged[:16]]
            live = await checker.estimate("t", probes)
            assert live == [float(offline.estimate(p)) for p in probes]
            stats = await checker.stats("t")
            assert stats["table"]["records_applied"] == len(acknowledged)
            await checker.close()
            await server.stop()

        run(go())

    def test_many_churning_connections_leave_no_residue(self):
        async def go():
            registry = MetricsRegistry()
            server = SketchServer([spec_for()], registry=registry)
            host, port = await server.start("127.0.0.1", 0)
            gauge = registry.gauge("service_open_connections")
            for round_index in range(10):
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(pack_frame({
                    "op": "ingest", "id": 1, "table": "t",
                    "records": [[f"churn-{round_index}", 1]],
                }))
                await writer.drain()
                writer.transport.abort()
            await _wait_for(lambda: gauge.value == 0)
            assert len(server._writers) == 0  # noqa: SLF001
            await server.stop()

        run(go())
