"""Tests for the vectorized hashing rows and the batch Count Sketch."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch
from repro.core.vectorized import VectorizedCountSketch
from repro.hashing.vectorized import VectorizedRowHashes, encode_keys


class TestEncodeKeys:
    def test_int_fast_path(self):
        keys = encode_keys([1, 2, 3])
        assert keys.dtype == np.uint64
        assert keys.tolist() == [1, 2, 3]

    def test_negative_ints_wrap(self):
        assert encode_keys([-1])[0] == np.uint64((1 << 64) - 1)

    def test_string_path_matches_scalar_encoder(self):
        from repro.hashing.encode import encode_key

        keys = encode_keys(["a", "b"])
        assert keys[0] == np.uint64(encode_key("a"))
        assert keys[1] == np.uint64(encode_key("b"))

    def test_mixed_types(self):
        keys = encode_keys([1, "a", (2, 3)])
        assert len(keys) == 3
        assert len(set(keys.tolist())) == 3

    def test_bools_not_treated_as_int_fast_path(self):
        # bool is an int subclass; the encoder must still map it via
        # encode_key (False -> 0, True -> 1), not crash.
        keys = encode_keys([True, False])
        assert keys.tolist() == [1, 0]

    def test_empty(self):
        assert len(encode_keys([])) == 0


class TestEncodeKeysNumpyFastPath:
    """Regression: np.integer scalars and integer ndarrays must take the
    vectorized fast path (they used to fall through to encode_key one by
    one, which did not even accept them) and agree with encode_key."""

    def _assert_no_scalar_fallback(self, monkeypatch):
        # Prove the fast path: make the scalar encoder explode if touched.
        import repro.hashing.vectorized as module

        def _boom(item):
            raise AssertionError("encode_key called on the fast path")

        monkeypatch.setattr(module, "encode_key", _boom)

    def test_integer_ndarray_takes_fast_path(self, monkeypatch):
        from repro.hashing.encode import encode_key

        expected = [encode_key(int(v)) for v in range(1000)]
        self._assert_no_scalar_fallback(monkeypatch)
        keys = encode_keys(np.arange(1000))
        assert keys.dtype == np.uint64
        assert keys.tolist() == expected

    def test_np_integer_scalars_take_fast_path(self, monkeypatch):
        from repro.hashing.encode import encode_key

        expected = encode_key(5)
        self._assert_no_scalar_fallback(monkeypatch)
        keys = encode_keys([np.int64(5)])
        assert keys.dtype == np.uint64
        assert keys[0] == np.uint64(expected)

    @pytest.mark.parametrize("dtype", [np.int8, np.int16, np.int32,
                                       np.int64, np.uint8, np.uint32])
    def test_all_integer_dtypes_agree_with_encode_key(self, dtype):
        from repro.hashing.encode import encode_key

        info = np.iinfo(dtype)
        values = np.asarray([info.min, -1 if info.min < 0 else 0, 0, 1,
                             info.max], dtype=dtype)
        keys = encode_keys(values)
        assert keys.dtype == np.uint64
        assert keys.tolist() == [encode_key(int(v)) for v in values]

    def test_negative_ndarray_wraps_mod_2_64(self):
        keys = encode_keys(np.asarray([-1, -2], dtype=np.int64))
        assert keys.tolist() == [(1 << 64) - 1, (1 << 64) - 2]

    def test_uint64_ndarray_passthrough(self):
        arr = np.asarray([0, (1 << 64) - 1], dtype=np.uint64)
        assert encode_keys(arr) is arr

    def test_mixed_python_and_numpy_ints(self):
        from repro.hashing.encode import encode_key

        keys = encode_keys([1, np.int64(2), np.int32(-3)])
        assert keys.tolist() == [encode_key(1), encode_key(2),
                                 encode_key(-3)]

    def test_np_bool_not_conflated_with_fast_path(self):
        # np.bool_ is not an np.integer; it must encode like Python bool.
        keys = encode_keys([np.bool_(True), np.bool_(False)])
        assert keys.tolist() == [1, 0]

    def test_scalar_encoder_accepts_np_integer(self):
        from repro.hashing.encode import encode_key

        assert encode_key(np.int64(5)) == encode_key(5)
        assert encode_key(np.int64(-1)) == (1 << 64) - 1

    def test_sketch_updates_agree_across_key_representations(self):
        ints = VectorizedCountSketch(3, 64, seed=2)
        ints.update_batch([5, 6, 5])
        nps = VectorizedCountSketch(3, 64, seed=2)
        nps.update_batch(np.asarray([5, 6, 5], dtype=np.int32))
        assert ints == nps


class TestVectorizedRowHashes:
    def test_validation(self):
        with pytest.raises(ValueError):
            VectorizedRowHashes(0, 8)
        with pytest.raises(ValueError):
            VectorizedRowHashes(3, 0)

    def test_buckets_in_range(self):
        hashes = VectorizedRowHashes(3, 17, seed=1)
        keys = encode_keys(list(range(1000)))
        for row in range(3):
            buckets = hashes.buckets(keys, row)
            assert buckets.min() >= 0
            assert buckets.max() < 17

    def test_signs_plus_minus_one(self):
        hashes = VectorizedRowHashes(2, 8, seed=2)
        keys = encode_keys(list(range(1000)))
        signs = hashes.signs(keys, 0)
        assert set(np.unique(signs).tolist()) == {-1, 1}

    def test_signs_balanced(self):
        hashes = VectorizedRowHashes(1, 8, seed=3)
        keys = encode_keys(list(range(20_000)))
        assert abs(int(hashes.signs(keys, 0).sum())) < 900

    def test_bucket_distribution_uniform(self):
        hashes = VectorizedRowHashes(1, 16, seed=4)
        keys = encode_keys(list(range(32_000)))
        counts = np.bincount(hashes.buckets(keys, 0), minlength=16)
        assert (np.abs(counts - 2000) < 6 * 2000**0.5).all()

    def test_deterministic(self):
        a = VectorizedRowHashes(2, 8, seed=5)
        b = VectorizedRowHashes(2, 8, seed=5)
        keys = encode_keys([10, 20, 30])
        assert np.array_equal(a.buckets(keys, 1), b.buckets(keys, 1))
        assert a.same_functions(b)

    def test_different_seeds_differ(self):
        a = VectorizedRowHashes(2, 8, seed=5)
        b = VectorizedRowHashes(2, 8, seed=6)
        assert not a.same_functions(b)

    def test_rows_are_independent_functions(self):
        hashes = VectorizedRowHashes(2, 64, seed=7)
        keys = encode_keys(list(range(500)))
        assert not np.array_equal(
            hashes.buckets(keys, 0), hashes.buckets(keys, 1)
        )


class TestVectorizedCountSketch:
    def test_single_item_roundtrip(self):
        sketch = VectorizedCountSketch(5, 64, seed=0)
        sketch.update("x", 7)
        assert sketch.estimate("x") == 7.0

    def test_batch_matches_item_at_a_time(self):
        items = ["a", "b", "a", "c", "b", "a"]
        batch = VectorizedCountSketch(3, 32, seed=1)
        batch.update_batch(items)
        single = VectorizedCountSketch(3, 32, seed=1)
        for item in items:
            single.update(item)
        assert batch == single

    def test_update_counts_matches_extend(self):
        items = ["a", "b", "a", "c"]
        a = VectorizedCountSketch(3, 32, seed=2)
        a.update_counts(Counter(items))
        b = VectorizedCountSketch(3, 32, seed=2)
        b.extend(items)
        assert a == b

    def test_weights_validation(self):
        sketch = VectorizedCountSketch(2, 16, seed=0)
        with pytest.raises(ValueError):
            sketch.update_batch([1, 2], weights=[1])

    def test_empty_batch_noop(self):
        sketch = VectorizedCountSketch(2, 16, seed=0)
        sketch.update_batch([])
        assert sketch.total_weight == 0
        assert len(sketch.estimate_batch([])) == 0

    def test_negative_weights_delete(self):
        sketch = VectorizedCountSketch(3, 32, seed=3)
        sketch.update_batch(["a", "b"], weights=[5, 3])
        sketch.update_batch(["a", "b"], weights=[-5, -3])
        assert not sketch.counters.any()

    def test_estimate_batch_matches_scalar_estimates(self):
        sketch = VectorizedCountSketch(5, 64, seed=4)
        sketch.update_batch(list(range(200)))
        queries = [0, 5, 50, 199]
        batch = sketch.estimate_batch(queries)
        for query, value in zip(queries, batch, strict=True):
            assert sketch.estimate(query) == value

    def test_accuracy_on_zipf(self, zipf_counts):
        sketch = VectorizedCountSketch(5, 512, seed=5)
        sketch.update_counts(zipf_counts)
        for item, count in zipf_counts.most_common(10):
            assert abs(sketch.estimate(item) - count) <= 0.1 * count + 5

    def test_accuracy_comparable_to_scalar_sketch(self, zipf_counts):
        """The multiply-shift family should not degrade accuracy
        measurably vs the polynomial family at equal dimensions."""
        scalar = CountSketch(5, 128, seed=6)
        scalar.update_counts(zipf_counts)
        vectorized = VectorizedCountSketch(5, 128, seed=6)
        vectorized.update_counts(zipf_counts)
        top = zipf_counts.most_common(50)

        def mean_error(sketch):
            return sum(
                abs(sketch.estimate(item) - count) for item, count in top
            ) / len(top)

        assert mean_error(vectorized) <= 3 * mean_error(scalar) + 5

    def test_linearity(self):
        a = VectorizedCountSketch(3, 32, seed=7)
        b = VectorizedCountSketch(3, 32, seed=7)
        a.update_batch(["x"] * 3)
        b.update_batch(["x", "y"])
        whole = VectorizedCountSketch(3, 32, seed=7)
        whole.update_batch(["x"] * 4 + ["y"])
        assert a + b == whole
        assert (whole - b) == a

    def test_merge(self):
        a = VectorizedCountSketch(3, 32, seed=8)
        b = VectorizedCountSketch(3, 32, seed=8)
        a.update("q", 2)
        b.update("q", 5)
        a.merge(b)
        assert a.estimate("q") == 7.0
        assert a.total_weight == 7

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            VectorizedCountSketch(3, 32, seed=8) + VectorizedCountSketch(
                3, 32, seed=9
            )
        with pytest.raises(TypeError):
            VectorizedCountSketch(3, 32).merge("nope")

    def test_copy_independent(self):
        sketch = VectorizedCountSketch(2, 16, seed=0)
        sketch.update("a")
        clone = sketch.copy()
        clone.update("a")
        assert sketch.estimate("a") == 1.0
        assert clone.estimate("a") == 2.0

    def test_f2_estimate(self, zipf_counts, zipf_stats):
        sketch = VectorizedCountSketch(7, 1024, seed=9)
        sketch.update_counts(zipf_counts)
        true_f2 = zipf_stats.second_moment()
        assert abs(sketch.estimate_f2() - true_f2) < 0.15 * true_f2

    def test_counters_view_read_only(self):
        sketch = VectorizedCountSketch(2, 4)
        with pytest.raises(ValueError):
            sketch.counters[0, 0] = 1  # repro: noqa-RS002 — asserts refusal

    def test_space_accessors(self):
        sketch = VectorizedCountSketch(3, 32)
        assert sketch.counters_used() == 96
        assert sketch.items_stored() == 0

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorizedCountSketch(2, 4))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=60),
           st.lists(st.integers(min_value=0, max_value=100), max_size=60))
    def test_linearity_property(self, items1, items2):
        a = VectorizedCountSketch(3, 16, seed=10)
        b = VectorizedCountSketch(3, 16, seed=10)
        a.update_batch(items1)
        b.update_batch(items2)
        whole = VectorizedCountSketch(3, 16, seed=10)
        whole.update_batch(items1 + items2)
        assert (a + b) == whole


class TestSerialization:
    def test_roundtrip_exact(self, zipf_counts):
        sketch = VectorizedCountSketch(3, 64, seed=11)
        sketch.update_counts(zipf_counts)
        state = sketch.state_dict()
        assert isinstance(state["counters"], np.ndarray)
        assert state["counters"].dtype == np.int64
        revived = VectorizedCountSketch.from_state_dict(state)
        assert revived == sketch
        assert revived.total_weight == sketch.total_weight
        assert revived.estimate(1) == sketch.estimate(1)

    def test_roundtrip_via_listified_counters(self, zipf_counts):
        # The nested-list (JSON-era) counter form must keep loading.
        sketch = VectorizedCountSketch(3, 64, seed=11)
        sketch.update_counts(zipf_counts)
        state = sketch.state_dict()
        state["counters"] = state["counters"].tolist()
        assert VectorizedCountSketch.from_state_dict(state) == sketch

    def test_from_state_dict_rejects_non_integral_counters(self):
        sketch = VectorizedCountSketch(2, 8, seed=0)
        state = sketch.state_dict()
        state["counters"] = state["counters"].astype(float) + 0.25
        import pytest as _pytest

        with _pytest.raises(ValueError, match="integral"):
            VectorizedCountSketch.from_state_dict(state)

    def test_shape_validation(self):
        sketch = VectorizedCountSketch(2, 8, seed=0)
        state = sketch.state_dict()
        state["counters"] = [[0] * 8]
        import pytest as _pytest

        with _pytest.raises(ValueError):
            VectorizedCountSketch.from_state_dict(state)

    def test_revived_sketch_still_merges(self):
        a = VectorizedCountSketch(3, 32, seed=12)
        b = VectorizedCountSketch(3, 32, seed=12)
        a.update("x", 3)
        b.update("x", 4)
        revived = VectorizedCountSketch.from_state_dict(a.state_dict())
        revived.merge(b)
        assert revived.estimate("x") == 7.0
