"""Property-based overload invariants for the hardened service tier.

Three promises the multi-tenant hardening makes, checked under
hypothesis-generated schedules rather than hand-picked ones:

* **Determinism** — quota decisions are a pure function of the
  configured limits and the request sequence (plus the clock, injected
  here).  Replaying a sequence yields the identical admit/refuse
  pattern and identical ``retry_after`` hints.
* **No silent drops** — whatever interleaving of pauses, overloads, and
  refusals occurs, every *acknowledged* ingest is applied: the final
  ``records_applied`` equals exactly the acknowledged record count.
* **Read-your-acknowledged-writes** — after a read barrier, estimates
  are bit-equal to an offline summary fed exactly the acknowledged
  records (§3.2: the summary is a function of the frequency vector).
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import (
    AsyncServiceClient,
    OverloadedError,
    QuotaExceededError,
    ServiceLimits,
    SketchServer,
    TokenBucket,
)
from repro.service.tables import TableSpec


def spec_for(name: str = "t") -> TableSpec:
    return TableSpec(name, kind="sketch", depth=4, width=128, seed=3)


def run(coro):
    return asyncio.run(coro)


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


#: One bucket interaction: take ``n`` tokens after advancing ``dt``.
BUCKET_OPS = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=0.0, max_value=2.0,
                  allow_nan=False, allow_infinity=False),
    ),
    max_size=40,
)


class TestTokenBucketDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(BUCKET_OPS)
    def test_replay_gives_identical_decisions(self, ops):
        def trace():
            clock = _FakeClock()
            bucket = TokenBucket(5.0, 12.0, clock=clock)
            out = []
            for n, dt in ops:
                clock.now += dt
                out.append((bucket.try_take(n), bucket.retry_after(n)))
            return out

        assert trace() == trace()

    @settings(max_examples=50, deadline=None)
    @given(BUCKET_OPS)
    def test_refusal_never_consumes_tokens(self, ops):
        clock = _FakeClock()
        bucket = TokenBucket(5.0, 12.0, clock=clock)
        spent = 0.0
        for n, dt in ops:
            clock.now += dt
            if bucket.try_take(n):
                spent += n
        # All-or-nothing: admitted tokens never exceed burst plus what
        # the clock refilled; a refusal costs nothing.
        assert spent <= 12.0 + 5.0 * clock.now + 1e-9


#: Batch sizes small enough that a slow-rate bucket never refills one
#: whole token mid-test, so server-side decisions are reproducible.
BATCH_SIZES = st.lists(st.integers(min_value=1, max_value=30),
                       min_size=1, max_size=20)


class TestServerQuotaDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(BATCH_SIZES)
    def test_same_sequence_same_refusal_pattern(self, sizes):
        async def pattern():
            limits = ServiceLimits(ingest_rate=0.5, ingest_burst=40.0)
            server = SketchServer([spec_for()], limits=limits)
            client = AsyncServiceClient.in_process(server)
            admitted = []
            try:
                for index, size in enumerate(sizes):
                    records = [(f"k{index}-{i}", 1) for i in range(size)]
                    try:
                        await client.ingest("t", records, wait=True)
                        admitted.append(True)
                    except QuotaExceededError as error:
                        admitted.append(
                            (False, error.details["retry_after"] is None))
            finally:
                await server.stop()
            return admitted

        first = run(pattern())
        second = run(pattern())
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(BATCH_SIZES)
    def test_refused_batches_leave_no_trace(self, sizes):
        async def go():
            limits = ServiceLimits(ingest_rate=0.5, ingest_burst=40.0)
            server = SketchServer([spec_for()], limits=limits)
            client = AsyncServiceClient.in_process(server)
            offline = spec_for().build()
            acknowledged = 0
            try:
                for index, size in enumerate(sizes):
                    records = [(f"k{index}-{i}", 1) for i in range(size)]
                    try:
                        await client.ingest("t", records, wait=True)
                    except QuotaExceededError:
                        continue
                    acknowledged += len(records)
                    for item, count in records:
                        offline.update(item, count)
                stats = await client.stats("t")
                assert stats["table"]["records_applied"] == acknowledged
                probes = [f"k{i}-0" for i in range(len(sizes))]
                live = await client.estimate("t", probes)
                assert live == [float(offline.estimate(p)) for p in probes]
            finally:
                await server.stop()

        run(go())


#: A pause/ingest/resume schedule: each step ingests one generated
#: batch, optionally toggling the applier around it.
STEPS = st.lists(
    st.tuples(
        st.lists(st.sampled_from("abcdef"), min_size=1, max_size=5),
        st.sampled_from(["none", "pause", "resume"]),
    ),
    min_size=1,
    max_size=15,
)


class TestNoSilentDropsUnderShedding:
    @settings(max_examples=20, deadline=None)
    @given(STEPS)
    def test_acknowledged_writes_survive_any_schedule(self, steps):
        """Queue capacity 1 plus arbitrary pause/resume toggling: some
        ingests are refused ``overloaded``, and every acknowledged one
        must be applied and readable, bit-equal, after the barrier."""

        async def go():
            server = SketchServer([spec_for()], queue_capacity=1)
            client = AsyncServiceClient.in_process(server)
            table = server.tables["t"]
            offline = spec_for().build()
            acknowledged = 0
            overloads = 0
            try:
                for items, toggle in steps:
                    if toggle == "pause":
                        table.pause()
                    elif toggle == "resume":
                        table.resume()
                    # Let the applier park or drain before the ingest
                    # so queue occupancy is schedule-driven.
                    for _ in range(3):
                        await asyncio.sleep(0)
                    records = [(item, 1) for item in items]
                    try:
                        await client.ingest("t", records)
                    except OverloadedError:
                        overloads += 1
                        continue
                    acknowledged += len(records)
                    for item, count in records:
                        offline.update(item, count)
                table.resume()
                # Read barrier: wait=True only returns once everything
                # enqueued before it (all acknowledged batches) applied.
                # The queue may still be full right after resume; a
                # refusal here is the documented retry signal.
                while True:
                    try:
                        await client.ingest(
                            "t", [("sentinel", 1)], wait=True)
                        break
                    except OverloadedError:
                        await asyncio.sleep(0.001)
                offline.update("sentinel", 1)
                acknowledged += 1
                stats = await client.stats("t")
                assert stats["table"]["records_applied"] == acknowledged
                probes = [*"abcdef", "sentinel", "never-sent"]
                live = await client.estimate("t", probes)
                assert live == [float(offline.estimate(p)) for p in probes]
            finally:
                await server.stop()
            return overloads

        run(go())
