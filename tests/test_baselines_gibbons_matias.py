"""Tests for the Gibbons–Matias concise samples and counting samples."""

import pytest

from repro.baselines.concise_samples import ConciseSamples
from repro.baselines.counting_samples import CountingSamples


class TestConciseSamples:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConciseSamples(1)
        with pytest.raises(ValueError):
            ConciseSamples(10, shrink=0.0)
        with pytest.raises(ValueError):
            ConciseSamples(10, shrink=1.0)

    def test_starts_at_threshold_one(self):
        sample = ConciseSamples(100)
        assert sample.threshold == 1.0

    def test_under_capacity_keeps_everything(self):
        sample = ConciseSamples(100, seed=0)
        for item in ["a", "b", "a", "c"]:
            sample.update(item)
        assert sample.estimate("a") == 2.0
        assert sample.estimate("b") == 1.0
        assert sample.threshold == 1.0

    def test_footprint_accounting(self):
        sample = ConciseSamples(100, seed=0)
        sample.update("a")  # singleton: 1 slot
        assert sample.footprint() == 1
        sample.update("a")  # now a pair: 2 slots
        assert sample.footprint() == 2
        sample.update("b")
        assert sample.footprint() == 3

    def test_overflow_lowers_threshold(self):
        sample = ConciseSamples(10, shrink=0.5, seed=1)
        for item in range(100):
            sample.update(item)
        assert sample.threshold < 1.0
        assert sample.footprint() <= 10

    def test_capacity_respected_throughout(self):
        sample = ConciseSamples(20, seed=2)
        for i in range(2000):
            sample.update(i % 300)
            assert sample.footprint() <= 20

    def test_heavy_item_survives_thinning(self):
        sample = ConciseSamples(30, seed=3)
        stream = (["heavy"] * 5 + list(range(10_000, 10_010))) * 40
        for item in stream:
            sample.update(item)
        assert "heavy" in sample

    def test_estimate_scales_by_threshold(self):
        sample = ConciseSamples(10, shrink=0.5, seed=4)
        for i in range(200):
            sample.update(i % 5)
        for item in range(5):
            if item in sample:
                raw = sample._sample[item]
                assert sample.estimate(item) == raw / sample.threshold

    def test_estimate_roughly_unbiased(self):
        totals = 0.0
        trials = 60
        for seed in range(trials):
            sample = ConciseSamples(50, shrink=0.7, seed=seed)
            for _ in range(300):
                sample.update("x")
            for i in range(300):
                sample.update(i + 1000)
            totals += sample.estimate("x")
        assert abs(totals / trials - 300) < 60

    def test_top_ranked_by_sampled_count(self):
        sample = ConciseSamples(100, seed=5)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            sample.update(item, count)
        assert [item for item, __ in sample.top(3)] == ["a", "b", "c"]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ConciseSamples(10).update("a", -1)

    def test_space_accessors(self):
        sample = ConciseSamples(100, seed=0)
        sample.update("a", 2)
        sample.update("b", 1)
        assert sample.items_stored() == 2
        assert sample.counters_used() == 1  # only 'a' is a pair


class TestCountingSamples:
    def test_validation(self):
        with pytest.raises(ValueError):
            CountingSamples(0)
        with pytest.raises(ValueError):
            CountingSamples(10, shrink=1.5)

    def test_exact_counting_after_entry(self):
        sample = CountingSamples(10, seed=0)
        for _ in range(50):
            sample.update("x")
        # Threshold still 1.0 (no overflow): count is exact.
        assert sample.threshold == 1.0
        assert sample._sample["x"] == 50

    def test_capacity_respected(self):
        sample = CountingSamples(15, seed=1)
        for i in range(3000):
            sample.update(i % 200)
            assert len(sample._sample) <= 15

    def test_overflow_lowers_threshold(self):
        sample = CountingSamples(5, shrink=0.5, seed=2)
        for i in range(100):
            sample.update(i)
        assert sample.threshold < 1.0

    def test_heavy_item_retained_with_large_count(self):
        sample = CountingSamples(10, seed=3)
        stream = []
        for round_ in range(50):
            stream.extend(["heavy"] * 10)
            stream.extend(range(round_ * 100, round_ * 100 + 20))
        for item in stream:
            sample.update(item)
        assert "heavy" in sample
        # Exact-after-entry: the count must be large (most occurrences).
        assert sample._sample["heavy"] > 300

    def test_estimate_includes_compensation(self):
        sample = CountingSamples(5, shrink=0.5, seed=4)
        for i in range(200):
            sample.update(i % 40)
        threshold = sample.threshold
        assert threshold < 1.0
        for item, count in sample._sample.items():
            assert sample.estimate(item) == pytest.approx(
                count + 1.0 / threshold - 1.0
            )

    def test_estimate_zero_for_absent(self):
        assert CountingSamples(5).estimate("missing") == 0.0

    def test_top_order(self):
        sample = CountingSamples(10, seed=5)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            sample.update(item, count)
        assert [item for item, __ in sample.top(3)] == ["a", "b", "c"]

    def test_space_accessors(self):
        sample = CountingSamples(10, seed=0)
        sample.update("a", 3)
        assert sample.counters_used() == 1
        assert sample.items_stored() == 1

    def test_more_accurate_than_concise_for_members(self):
        """The GM claim: counting samples' counts are more accurate.

        Compare the mean absolute estimate error of a heavy item across
        seeds under identical pressure."""
        concise_err = 0.0
        counting_err = 0.0
        trials = 40
        true = 200
        for seed in range(trials):
            stream = (["x"] * 5 + [f"noise-{seed}-{i}" for i in range(25)]) * 40
            concise = ConciseSamples(60, shrink=0.7, seed=seed)
            counting = CountingSamples(30, shrink=0.7, seed=seed)
            for item in stream:
                concise.update(item)
                counting.update(item)
            concise_err += abs(concise.estimate("x") - true)
            counting_err += abs(counting.estimate("x") - true)
        assert counting_err <= concise_err
