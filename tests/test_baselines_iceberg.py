"""Tests for the Fang et al. multiple-hash iceberg scheme."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.iceberg import MultiHashIceberg


def skewed_stream(seed, n=5_000):
    rng = random.Random(seed)
    stream = []
    for item in range(6):
        stream.extend([f"heavy-{item}"] * (n // (10 * (item + 1))))
    while len(stream) < n:
        stream.append(rng.randrange(20_000))
    rng.shuffle(stream)
    return stream[:n]


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiHashIceberg(0, 10)
        with pytest.raises(ValueError):
            MultiHashIceberg(3, 0)
        with pytest.raises(ValueError):
            MultiHashIceberg().update("a", 0)
        with pytest.raises(ValueError):
            MultiHashIceberg().passes_filter("a", 0)

    def test_min_counter_dominates_count(self):
        filter_ = MultiHashIceberg(3, 64, seed=0)
        for _ in range(25):
            filter_.update("x")
        assert filter_.min_counter("x") >= 25

    def test_counts_accumulate(self):
        filter_ = MultiHashIceberg(3, 1024, seed=0)
        filter_.update("x", 10)
        assert filter_.min_counter("x") == 10
        assert filter_.total == 10

    def test_space_accessors(self):
        filter_ = MultiHashIceberg(3, 64)
        assert filter_.counters_used() == 192
        assert filter_.items_stored() == 0


class TestSoundness:
    """The defining property: no false negatives, ever."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_false_negatives(self, seed):
        stream = skewed_stream(seed)
        counts = Counter(stream)
        filter_ = MultiHashIceberg(3, 256, seed=seed)
        for item in stream:
            filter_.update(item)
        threshold = 50
        for item, count in counts.items():
            if count >= threshold:
                assert filter_.passes_filter(item, threshold)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=200),
           st.integers(min_value=1, max_value=20))
    def test_no_false_negatives_property(self, items, threshold):
        counts = Counter(items)
        filter_ = MultiHashIceberg(2, 16, seed=3)
        for item in items:
            filter_.update(item)
        for item, count in counts.items():
            if count >= threshold:
                assert filter_.passes_filter(item, threshold)

    def test_filter_rejects_most_light_items(self):
        """Heuristic completeness: with adequate width, most singletons
        are filtered out."""
        stream = skewed_stream(4)
        counts = Counter(stream)
        filter_ = MultiHashIceberg(3, 2048, seed=4)
        for item in stream:
            filter_.update(item)
        singletons = [item for item, c in counts.items() if c == 1]
        leaked = sum(
            1 for item in singletons if filter_.passes_filter(item, 50)
        )
        assert leaked <= len(singletons) * 0.2


class TestTwoPassQuery:
    def test_exact_answer(self):
        stream = skewed_stream(5)
        counts = Counter(stream)
        filter_ = MultiHashIceberg(3, 512, seed=5)
        for item in stream:
            filter_.update(item)
        threshold = 60
        answer = filter_.iceberg_query(stream, threshold)
        expected = sorted(
            ((item, c) for item, c in counts.items() if c >= threshold),
            key=lambda pair: pair[1],
            reverse=True,
        )
        assert answer == expected

    def test_candidates_superset(self):
        stream = skewed_stream(6)
        counts = Counter(stream)
        filter_ = MultiHashIceberg(3, 512, seed=6)
        for item in stream:
            filter_.update(item)
        threshold = 60
        candidates = set(filter_.candidates(stream, threshold))
        for item, count in counts.items():
            if count >= threshold:
                assert item in candidates

    def test_candidates_deduplicated(self):
        filter_ = MultiHashIceberg(2, 64, seed=7)
        for _ in range(5):
            filter_.update("x")
        assert filter_.candidates(["x", "x", "x"], 3) == ["x"]
