"""Documentation quality gate: every public item carries a docstring.

"Doc comments on every public item" is a release requirement, so it is
enforced mechanically: walk every module under ``repro``, and for each
public (non-underscore) module, class, function, and method defined in
this package, assert a non-trivial docstring exists.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", None) == module.__name__:
                yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{module.__name__} lacks a meaningful module docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    missing = []
    for name, obj in public_members(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_") and method_name not in (
                    "__init__",
                ):
                    continue
                if inspect.isfunction(method) and not (
                    method.__doc__ and method.__doc__.strip()
                ):
                    # __init__ may document itself via the class docstring.
                    if method_name == "__init__":
                        continue
                    missing.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not missing, f"undocumented public items: {missing}"


def test_all_exports_resolve():
    """Every name in every __all__ must actually exist."""
    for module in MODULES:
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), (
                f"{module.__name__}.__all__ lists missing name {name!r}"
            )


def test_top_level_all_is_sorted_sanity():
    """The top-level export list stays deduplicated."""
    assert len(repro.__all__) == len(set(repro.__all__))
