"""Randomized cross-validation stress tests.

Each trial draws a random workload configuration (distribution, skew,
universe, length — all from a seeded RNG, so failures reproduce), runs
*every* summary on the same stream, and checks the invariants each one
promises.  This is the closest thing to a fuzzer the library has: any
violation of a one-sided error bound, a capacity limit, or sketch
linearity on any of the sampled configurations fails loudly with its
trial seed.
"""

import random
from collections import Counter

import pytest

from repro.baselines.countmin import CountMinSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.kps import KPSFrequent
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.space_saving import SpaceSaving
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.streams.generators import (
    planted_heavy_hitter_stream,
    uniform_stream,
)
from repro.streams.zipf import ZipfStreamGenerator


def random_workload(trial: int):
    """A random stream drawn from a trial-seeded configuration."""
    rng = random.Random(trial * 7919)
    kind = rng.choice(["zipf", "uniform", "planted"])
    m = rng.choice([50, 300, 1_500])
    n = rng.choice([500, 3_000, 8_000])
    if kind == "zipf":
        z = rng.choice([0.4, 0.8, 1.2, 1.8])
        return ZipfStreamGenerator(m, z, seed=trial).generate(n)
    if kind == "uniform":
        return uniform_stream(m, n, seed=trial)
    return planted_heavy_hitter_stream(
        m, n, heavy_items=rng.choice([1, 3, 8]),
        heavy_fraction=rng.choice([0.2, 0.5]),
        seed=trial,
    )


TRIALS = list(range(12))


@pytest.mark.parametrize("trial", TRIALS)
def test_invariants_across_random_workloads(trial):
    stream = random_workload(trial)
    items = list(stream)
    counts = Counter(items)
    n = len(items)

    exact = ExactCounter()
    kps = KPSFrequent(64)
    space_saving = SpaceSaving(64)
    lossy = LossyCounting(1 / 64)
    count_min = CountMinSketch(3, 128, seed=trial)
    count_sketch = CountSketch(5, 128, seed=trial)
    tracker = TopKTracker(8, depth=5, width=128, seed=trial)

    for item in items:
        exact.update(item)
        kps.update(item)
        space_saving.update(item)
        lossy.update(item)
        count_min.update(item)
        count_sketch.update(item)
        tracker.update(item)

    # Exact is exact.
    for item, count in counts.items():
        assert exact.count(item) == count

    # One-sided bounds.
    for item, count in counts.items():
        assert kps.estimate(item) <= count
        assert kps.estimate(item) >= count - n / 65
        assert lossy.estimate(item) <= count
        assert lossy.estimate(item) >= count - n / 64 - 1
        assert count_min.estimate(item) >= count
        if item in space_saving:
            assert space_saving.estimate(item) >= count

    # Capacity limits.
    assert kps.counters_used() <= 64
    assert space_saving.items_stored() <= 64
    assert tracker.items_stored() <= 8

    # Count Sketch estimates are bounded by the stream weight and the
    # tracker's reported list is sorted.
    for item in list(counts)[:20]:
        assert abs(count_sketch.estimate(item)) <= n
    reported = tracker.top()
    values = [v for __, v in reported]
    assert values == sorted(values, reverse=True)


@pytest.mark.parametrize("trial", TRIALS[:6])
def test_sketch_linearity_on_random_splits(trial):
    """Splitting any stream at a random point and merging the halves'
    sketches reproduces the whole-stream sketch exactly."""
    stream = random_workload(trial)
    items = list(stream)
    rng = random.Random(trial)
    cut = rng.randrange(len(items) + 1)

    whole = CountSketch(3, 64, seed=trial)
    whole.extend(items)
    left = CountSketch(3, 64, seed=trial)
    left.extend(items[:cut])
    right = CountSketch(3, 64, seed=trial)
    right.extend(items[cut:])
    assert left + right == whole

    v_whole = VectorizedCountSketch(3, 64, seed=trial)
    v_whole.update_batch(items)
    v_left = VectorizedCountSketch(3, 64, seed=trial)
    v_left.update_batch(items[:cut])
    v_right = VectorizedCountSketch(3, 64, seed=trial)
    v_right.update_batch(items[cut:])
    assert v_left + v_right == v_whole


@pytest.mark.parametrize("trial", TRIALS[:6])
def test_turnstile_deletion_roundtrip(trial):
    """Inserting a random stream and then deleting a random sub-multiset
    leaves exactly the residual counts (up to sketch error ~ 0 here
    because the sketch is wide relative to the residual support)."""
    stream = random_workload(trial)
    counts = Counter(stream)
    rng = random.Random(trial + 99)
    sketch = CountSketch(7, 8192, seed=trial)
    sketch.update_counts(counts)
    residual = Counter(counts)
    for item in list(counts):
        remove = rng.randint(0, counts[item])
        if remove:
            sketch.update(item, -remove)
            residual[item] -= remove
    for item, count in residual.items():
        # Wide sketch: estimates are exact w.h.p.; allow minimal noise.
        assert abs(sketch.estimate(item) - count) <= 2
