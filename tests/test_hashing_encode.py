"""Tests for repro.hashing.encode — canonical key encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.encode import encode_key
from repro.hashing.vectorized import encode_keys


class TestIntegers:
    def test_small_int_passthrough(self):
        assert encode_key(42) == 42

    def test_zero(self):
        assert encode_key(0) == 0

    def test_negative_wraps_mod_2_64(self):
        assert encode_key(-1) == (1 << 64) - 1

    def test_large_int_reduced_mod_2_64(self):
        assert encode_key(1 << 64) == 0
        assert encode_key((1 << 64) + 7) == 7

    @given(st.integers())
    def test_always_in_range(self, value):
        encoded = encode_key(value)
        assert 0 <= encoded < (1 << 64)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_in_range_ints_are_fixed_points(self, value):
        assert encode_key(value) == value


class TestBooleans:
    def test_false_is_zero(self):
        assert encode_key(False) == 0

    def test_true_is_one(self):
        assert encode_key(True) == 1


class TestStrings:
    def test_deterministic(self):
        assert encode_key("hello") == encode_key("hello")

    def test_distinct_strings_differ(self):
        assert encode_key("hello") != encode_key("world")

    def test_unicode(self):
        assert 0 <= encode_key("héllo wörld ∑") < (1 << 64)

    def test_empty_string_ok(self):
        assert 0 <= encode_key("") < (1 << 64)

    def test_string_differs_from_equal_looking_int(self):
        # "42" and 42 must not collide by construction.
        assert encode_key("42") != encode_key(42)

    @given(st.text())
    def test_in_range(self, text):
        assert 0 <= encode_key(text) < (1 << 64)

    @given(st.text(), st.text())
    def test_equality_consistent(self, a, b):
        if a == b:
            assert encode_key(a) == encode_key(b)


class TestBytes:
    def test_bytes_deterministic(self):
        assert encode_key(b"abc") == encode_key(b"abc")

    def test_bytearray_matches_bytes(self):
        assert encode_key(bytearray(b"abc")) == encode_key(b"abc")


class TestFloats:
    def test_float_deterministic(self):
        assert encode_key(3.14) == encode_key(3.14)

    def test_distinct_floats_differ(self):
        assert encode_key(3.14) != encode_key(2.71)

    def test_float_not_conflated_with_int(self):
        # 1.0 encodes via its hex repr, not as the int 1.
        assert encode_key(1.0) != encode_key(1)


class TestTuples:
    def test_flow_tuple(self):
        flow = ("10.0.0.1", "10.0.0.2", 1234, 80, "tcp")
        assert encode_key(flow) == encode_key(flow)

    def test_order_matters(self):
        assert encode_key((1, 2)) != encode_key((2, 1))

    def test_nested_tuples(self):
        assert encode_key(((1, 2), 3)) != encode_key((1, (2, 3)))

    def test_empty_tuple_ok(self):
        assert 0 <= encode_key(()) < (1 << 64)

    @given(st.tuples(st.integers(), st.text()))
    def test_in_range(self, value):
        assert 0 <= encode_key(value) < (1 << 64)


class TestUnsupported:
    def test_list_rejected(self):
        with pytest.raises(TypeError, match="cannot encode"):
            encode_key([1, 2, 3])

    def test_none_rejected(self):
        with pytest.raises(TypeError):
            encode_key(None)

    def test_dict_rejected(self):
        with pytest.raises(TypeError):
            encode_key({})


class TestCollisionResistance:
    def test_no_collisions_over_many_strings(self):
        keys = {encode_key(f"query-{i}") for i in range(20_000)}
        assert len(keys) == 20_000

    def test_no_collisions_over_mixed_types(self):
        values = [f"s{i}" for i in range(1000)]
        values += [(i, i + 1) for i in range(1000)]
        values += [float(i) + 0.5 for i in range(1000)]
        keys = {encode_key(v) for v in values}
        assert len(keys) == 3000


class TestEdgeCasesSurfacedByTyping:
    """Boundary cases surfaced while annotating the encode path."""

    def test_empty_bytes_ok(self):
        key = encode_key(b"")
        assert 0 <= key < (1 << 64)
        assert key == encode_key(bytearray())

    def test_empty_bytes_differ_from_empty_string(self):
        # Both digest through BLAKE2b but from distinct inputs is NOT
        # guaranteed — document the actual behavior: identical payloads
        # (no bytes) produce identical digests.
        assert encode_key(b"") == encode_key("")

    def test_surrogate_escape_string_hashes(self):
        # Reading a byte-garbled log with errors="surrogateescape" yields
        # lone surrogates; encode_key must hash them, not raise.
        garbled = "caf\udce9"
        key = encode_key(garbled)
        assert 0 <= key < (1 << 64)
        assert key == encode_key(garbled)
        assert key != encode_key("caf\xe9")

    def test_distinct_surrogates_differ(self):
        assert encode_key("x\udc80") != encode_key("x\udc81")

    def test_np_int64_boundaries(self):
        assert encode_key(np.int64(2**63 - 1)) == 2**63 - 1
        # int64 min wraps mod 2**64 exactly like the Python int.
        assert encode_key(np.int64(-(2**63))) == encode_key(-(2**63)) == 2**63

    def test_np_uint64_max(self):
        assert encode_key(np.uint64(2**64 - 1)) == 2**64 - 1

    def test_np_integer_matches_python_int(self):
        for value in (0, 1, -1, 2**31, -(2**31), 2**62):
            assert encode_key(np.int64(value)) == encode_key(value)

    def test_np_float64_matches_python_float(self):
        # np.float64 subclasses float, so it takes the float path.
        assert encode_key(np.float64(1.5)) == encode_key(1.5)

    def test_np_float32_rejected(self):
        # np.float32 is NOT a float subclass; silently conflating it with
        # its (inexact) float() widening would be a correctness trap.
        with pytest.raises(TypeError, match="cannot encode"):
            encode_key(np.float32(1.5))


class TestEncodeKeysBatch:
    """repro.hashing.vectorized.encode_keys edge cases."""

    def test_int64_array_wraps_like_scalar(self):
        values = np.array([-1, 0, 2**62, -(2**63)], dtype=np.int64)
        keys = encode_keys(values)
        assert keys.dtype == np.uint64
        assert [int(k) for k in keys] == [
            encode_key(int(v)) for v in values
        ]

    def test_uint64_array_passthrough(self):
        values = np.array([0, 2**64 - 1], dtype=np.uint64)
        assert encode_keys(values) is values

    def test_mixed_dtype_object_array_falls_back(self):
        values = np.array([1, "a", (2, 3)], dtype=object)
        keys = encode_keys(values)
        assert keys.dtype == np.uint64
        assert [int(k) for k in keys] == [
            encode_key(1), encode_key("a"), encode_key((2, 3)),
        ]

    def test_float_array_matches_scalar_path(self):
        values = np.array([0.5, 1.5], dtype=np.float64)
        keys = encode_keys(values)
        assert [int(k) for k in keys] == [
            encode_key(0.5), encode_key(1.5),
        ]

    def test_empty_iterable(self):
        keys = encode_keys([])
        assert keys.dtype == np.uint64
        assert keys.size == 0

    def test_oversized_python_ints_wrap(self):
        keys = encode_keys([2**64 + 3, -5])
        assert [int(k) for k in keys] == [3, encode_key(-5)]

    def test_bool_items_take_scalar_path(self):
        # Booleans encode as 0/1 via encode_key, not the int fast path
        # (the fast path excludes them deliberately).
        assert [int(k) for k in encode_keys([True, False])] == [1, 0]
