"""End-to-end smoke: ``repro serve`` + ``repro query`` round trip.

This is the CI ``service-smoke`` target: one real server process, the
stock client CLI against it — create a table, stream a file in, read
top-k and estimates back, scrape metrics, stop gracefully.  Fast and
self-contained; everything else about the service has deeper tests.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.streams.io import write_stream_text

REPO_ROOT = Path(__file__).parent.parent

STREAM = (["deep learning"] * 12 + ["sketch"] * 8 + ["stream"] * 5
          + ["rare query"])


@pytest.fixture()
def live_server():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--table", "queries:topk:k=5,depth=4,width=256,seed=5",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("serving on "):
            break
        if proc.poll() is not None:
            raise AssertionError(
                f"server exited early: {proc.communicate()[1]}")
    else:
        proc.kill()
        raise AssertionError("server did not report its port in time")
    port = line.rsplit(":", 1)[1].strip()
    try:
        yield proc, port
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate(timeout=10)


def query(port, verb, *argv):
    return main(["query", verb, "--port", port, "--timeout", "15", *argv])


class TestServiceSmoke:
    def test_serve_ingest_query_shutdown(self, live_server, tmp_path,
                                         capsys):
        proc, port = live_server
        stream_file = tmp_path / "stream.txt"
        write_stream_text(stream_file, STREAM)

        assert query(port, "ping") == 0
        assert '"version": 1' in capsys.readouterr().out

        assert query(port, "create",
                     "--table", "flows:sketch:depth=4,width=64") == 0
        capsys.readouterr()

        assert query(port, "ingest", "--table", "queries",
                     "--input", str(stream_file)) == 0
        out = capsys.readouterr().out
        assert f"ingested {len(STREAM)} records" in out

        assert query(port, "topk", "--table", "queries") == 0
        out = capsys.readouterr().out
        assert "deep learning" in out
        assert "12" in out

        assert query(port, "estimate", "--table", "queries",
                     "deep learning", "absent") == 0
        out = capsys.readouterr().out
        assert "deep learning" in out

        assert query(port, "stats") == 0
        out = capsys.readouterr().out
        assert '"records_applied"' in out
        assert '"flows"' in out and '"queries"' in out

        assert query(port, "metrics") == 0
        out = capsys.readouterr().out
        assert "service_requests_total" in out
        assert "service_table_queries_applied_records_total" in out

        assert query(port, "shutdown") == 0
        capsys.readouterr()
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "graceful stop complete" in out

    def test_binary_wire_session(self, live_server, tmp_path, capsys):
        proc, port = live_server
        stream_file = tmp_path / "stream.txt"
        write_stream_text(stream_file, STREAM)

        assert query(port, "ping") == 0
        assert "binary-ingest-v1" in capsys.readouterr().out

        assert query(port, "create",
                     "--table", "flows:sketch:depth=4,width=64") == 0
        capsys.readouterr()

        # topk table → lossless packed keys on the wire.
        assert query(port, "ingest", "--wire", "binary",
                     "--table", "queries", "--input", str(stream_file)) == 0
        assert f"ingested {len(STREAM)} records" in capsys.readouterr().out

        # linear sketch → raw pre-encoded 64-bit keys.
        assert query(port, "ingest", "--wire", "binary",
                     "--table", "flows", "--input", str(stream_file)) == 0
        capsys.readouterr()

        assert query(port, "topk", "--table", "queries") == 0
        out = capsys.readouterr().out
        assert "deep learning" in out
        assert "12" in out

        assert query(port, "estimate", "--table", "flows",
                     "deep learning", "absent") == 0
        assert "deep learning" in capsys.readouterr().out

        assert query(port, "shutdown") == 0
        capsys.readouterr()
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "graceful stop complete" in out
