"""Cache policy behavior: LRU recency, LFU frequency, TinyLFU admission."""

from __future__ import annotations

import pytest

from repro.cache import LFUCache, LRUCache, TinyLFUCache


class TestLRU:
    def test_misses_fill_then_recency_evicts(self):
        cache = LRUCache(2)
        assert cache.request("a") is False
        assert cache.request("b") is False
        assert cache.request("a") is True  # refreshes a
        assert cache.request("c") is False  # evicts b, the LRU
        assert cache.contains("a") and cache.contains("c")
        assert not cache.contains("b")
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_dunder_contains_matches_contains(self):
        cache = LRUCache(2)
        cache.request("a")
        assert "a" in cache and "b" not in cache


class TestLFU:
    def test_evicts_the_least_frequent(self):
        cache = LFUCache(2)
        for _ in range(3):
            cache.request("hot")
        cache.request("cold")
        cache.request("new")  # evicts cold (freq 1), never hot (freq 3)
        assert cache.contains("hot")
        assert cache.contains("new")
        assert not cache.contains("cold")

    def test_ties_break_by_recency(self):
        cache = LFUCache(2)
        cache.request("first")
        cache.request("second")  # both freq 1; first is older
        cache.request("third")
        assert not cache.contains("first")
        assert cache.contains("second") and cache.contains("third")

    def test_frequency_survives_between_evictions(self):
        cache = LFUCache(2)
        for _ in range(5):
            cache.request("a")
        for _ in range(3):
            cache.request("b")
        for fresh in range(10):
            cache.request(("fresh", fresh))
        # The first fresh key evicts b (freq 3, the coldest resident);
        # after that every fresh key enters at freq 1 and is itself the
        # next eviction victim, so a (freq 5) never leaves.  This
        # no-decay fossilisation is precisely the LFU pathology the
        # shifting-hot-set benchmark shows and TinyLFU's aging fixes.
        assert cache.contains("a")
        assert not cache.contains("b")
        assert len(cache) == 2

    def test_hits_and_misses_are_reported(self):
        cache = LFUCache(4)
        assert cache.request("x") is False
        assert cache.request("x") is True


class TestTinyLFUGeometry:
    def test_segment_capacities_partition_the_total(self):
        cache = TinyLFUCache(1000, sample_size=100)
        assert cache.window_capacity == 10  # ~1%
        assert cache.main_capacity == 990
        assert cache.window_capacity + cache.main_capacity == 1000
        assert cache.protected_capacity == 792  # ~80% of main

    def test_tiny_capacities_keep_both_areas_nonempty(self):
        cache = TinyLFUCache(2, sample_size=10)
        assert cache.window_capacity == 1
        assert cache.main_capacity == 1

    def test_capacity_below_two_is_rejected(self):
        with pytest.raises(ValueError):
            TinyLFUCache(1)


class TestTinyLFUAdmission:
    def test_request_reports_hits_across_all_segments(self):
        cache = TinyLFUCache(10, sample_size=1000)
        assert cache.request("a") is False
        assert cache.request("a") is True  # window hit

    def test_window_overflow_fills_spare_main_unconditionally(self):
        cache = TinyLFUCache(10, sample_size=1000)
        for key in range(5):
            cache.request(key)
        # window holds 1; the other keys flowed into probation.
        assert len(cache) == 5
        sizes = cache.segment_sizes()
        assert sizes["window"] == 1
        assert sizes["probation"] == 4

    def test_probation_rereference_promotes_to_protected(self):
        cache = TinyLFUCache(10, sample_size=1000)
        for key in range(3):
            cache.request(key)
        victim_segments = cache.segment_sizes()
        assert victim_segments["protected"] == 0
        # key 0 left the window into probation; touching it promotes.
        assert cache.request(0) is True
        assert cache.segment_sizes()["protected"] == 1

    def test_cold_candidate_cannot_displace_a_hot_victim(self):
        cache = TinyLFUCache(4, sample_size=10_000)
        # Fill main (3 slots) with keys the oracle has seen often.
        for _ in range(5):
            for key in ("h1", "h2", "h3"):
                cache.request(key)
        resident = [key for key in ("h1", "h2", "h3") if key in cache]
        # A one-shot stranger churns through the window: its estimate
        # (1) never strictly beats the hot victims'.
        for stranger in range(100):
            cache.request(("cold", stranger))
        assert all(key in cache for key in resident)

    def test_frequent_candidate_is_admitted_over_a_cold_victim(self):
        cache = TinyLFUCache(4, sample_size=10_000, seed=5)
        for key in ("c1", "c2", "c3", "c4"):
            cache.request(key)  # cold residents, one touch each
        for _ in range(6):
            cache.request("riser")  # builds frequency while churning
        assert "riser" in cache

    def test_identical_seeds_replay_identically(self):
        trace = [key % 17 for key in range(500)] + \
                [key % 5 for key in range(300)]
        a = TinyLFUCache(8, sample_size=100, seed=21)
        b = TinyLFUCache(8, sample_size=100, seed=21)
        hits_a = [a.request(key) for key in trace]
        hits_b = [b.request(key) for key in trace]
        assert hits_a == hits_b
        assert a.segment_sizes() == b.segment_sizes()
        assert a.frequency.sketch == b.frequency.sketch

    def test_len_and_repr_cover_all_segments(self):
        cache = TinyLFUCache(10, sample_size=1000)
        for key in range(6):
            cache.request(key)
        assert len(cache) == sum(cache.segment_sizes().values())
        assert "TinyLFUCache" in repr(cache)

    def test_oracle_sees_non_resident_keys_too(self):
        cache = TinyLFUCache(4, sample_size=10_000)
        for _ in range(5):
            cache.request("ghost")
        # Frequency accrues even while the key bounces around; the
        # oracle's estimate reflects all five touches.
        assert cache.frequency.estimate("ghost") >= 4
