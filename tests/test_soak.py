"""Scale soak tests (marked slow): million-item streams end to end.

The unit suite runs at small scales for speed; these tests push realistic
volumes through the hot paths once, catching anything that only breaks at
scale (overflow, cache blowups, quadratic slips).
"""

import pytest

from repro.analysis.ground_truth import StreamStatistics
from repro.analysis.metrics import recall_at_k
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.hashing.vectorized import encode_keys
from repro.streams.zipf import ZipfStreamGenerator


@pytest.mark.slow
class TestMillionItemStream:
    @pytest.fixture(scope="class")
    def workload(self):
        generator = ZipfStreamGenerator(m=100_000, z=1.0, seed=99)
        stream = generator.generate(1_000_000)
        return stream, stream.counts()

    def test_vectorized_sketch_accuracy_at_scale(self, workload):
        stream, counts = workload
        sketch = VectorizedCountSketch(5, 4096, seed=1)
        sketch.update_batch(encode_keys(list(stream)))
        assert sketch.total_weight == 1_000_000
        for item, count in StreamStatistics(counts=counts).top_k(20):
            assert abs(sketch.estimate(item) - count) <= 0.05 * count + 50

    def test_batch_estimate_many_keys(self, workload):
        __, counts = workload
        sketch = VectorizedCountSketch(5, 4096, seed=1)
        sketch.update_counts(counts)
        queries = encode_keys(list(range(1, 50_001)))
        estimates = sketch.estimate_batch(queries)
        assert len(estimates) == 50_000
        assert abs(estimates[0] - counts[1]) <= 0.05 * counts[1] + 50

    def test_tracker_at_scale(self, workload):
        """The scalar tracker processes 1M items in bounded time and
        recovers the top 10 (the position cache keeps hashing amortized)."""
        stream, counts = workload
        stats = StreamStatistics(counts=counts)
        tracker = TopKTracker(10, depth=5, width=1024, seed=2)
        for item in stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, stats.top_k_items(10)) >= 0.9

    def test_counter_values_exact_no_overflow(self, workload):
        """int64 counters hold 1M-weight streams without overflow; the
        total weight and the top item's estimate are consistent."""
        __, counts = workload
        sketch = VectorizedCountSketch(3, 64, seed=3)  # heavy collisions
        sketch.update_counts(counts)
        assert sketch.total_weight == 1_000_000
        assert abs(sketch.estimate(1)) <= 1_000_000
