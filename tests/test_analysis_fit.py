"""Tests for workload fitting and automatic configuration."""

from collections import Counter

import pytest

from repro.analysis.fit import (
    extrapolated_tail_second_moment,
    fit_zipf_parameter,
    profile_stream,
    recommend_parameters,
)
from repro.analysis.ground_truth import StreamStatistics
from repro.streams.zipf import ZipfStreamGenerator


class TestFitZipfParameter:
    def test_exact_zipf_counts(self):
        # Counts literally 1000/r^z: the fit must recover z closely.
        for z in (0.5, 1.0, 1.5):
            counts = Counter(
                {f"item-{r}": max(1, int(1000 / r**z)) for r in range(1, 200)}
            )
            assert abs(fit_zipf_parameter(counts) - z) < 0.1

    def test_uniform_counts_give_zero(self):
        counts = Counter({f"item-{i}": 50 for i in range(100)})
        assert fit_zipf_parameter(counts) == pytest.approx(0.0)

    def test_sampled_zipf_stream(self):
        stream = ZipfStreamGenerator(m=2_000, z=1.0, seed=1).generate(50_000)
        fitted = fit_zipf_parameter(stream.counts())
        assert abs(fitted - 1.0) < 0.25

    def test_negative_slope_clamped(self):
        # Increasing "counts" (impossible for sorted input, but the rank
        # sort makes them decreasing anyway) — clamp guards z >= 0.
        counts = Counter({"a": 5, "b": 5, "c": 5})
        assert fit_zipf_parameter(counts) >= 0.0

    def test_too_few_ranks(self):
        with pytest.raises(ValueError):
            fit_zipf_parameter(Counter({"a": 5}))

    def test_rank_window(self):
        counts = Counter({f"i{r}": int(1000 / r) for r in range(1, 100)})
        full = fit_zipf_parameter(counts)
        head = fit_zipf_parameter(counts, min_rank=1, max_rank=20)
        assert abs(full - head) < 0.2


class TestExtrapolatedTail:
    def test_quadratic_scaling(self):
        stats = StreamStatistics(stream=["a"] * 6 + ["b"] * 4)
        sample_tail = stats.tail_second_moment(1)  # 16
        assert extrapolated_tail_second_moment(stats, 1, 20) == (
            pytest.approx(sample_tail * 4)
        )

    def test_full_length_validation(self):
        stats = StreamStatistics(stream=["a"] * 10)
        with pytest.raises(ValueError):
            extrapolated_tail_second_moment(stats, 1, 5)

    def test_prediction_close_on_real_stream(self):
        generator = ZipfStreamGenerator(m=1_000, z=1.0, seed=2)
        full = generator.generate(40_000)
        sample = list(full)[:4_000]
        sample_stats = StreamStatistics(stream=sample)
        predicted = extrapolated_tail_second_moment(sample_stats, 10, 40_000)
        actual = StreamStatistics(counts=full.counts()).tail_second_moment(10)
        assert 0.4 * actual <= predicted <= 2.0 * actual


class TestProfileStream:
    def test_fields(self):
        stream = ZipfStreamGenerator(m=500, z=1.0, seed=3).generate(5_000)
        profile = profile_stream(list(stream), k=10)
        assert profile.sample_length == 5_000
        assert profile.distinct_items <= 500
        assert 0.5 < profile.zipf_z < 1.5
        assert profile.nk_sample > 0
        assert profile.tail_second_moment_sample > 0


class TestRecommendParameters:
    def test_guarantee_holds_with_recommended_parameters(self):
        from repro.analysis.metrics import approxtop_weak_ok
        from repro.core.topk import TopKTracker

        generator = ZipfStreamGenerator(m=1_000, z=1.0, seed=4)
        stream = generator.generate(20_000)
        sample = list(stream)[:2_000]
        params = recommend_parameters(sample, k=10, epsilon=0.5,
                                      full_length=20_000)
        tracker = TopKTracker(10, depth=params.depth, width=params.width,
                              seed=1)
        for item in stream:
            tracker.update(item)
        stats = StreamStatistics(counts=stream.counts())
        reported = [item for item, __ in tracker.top()]
        assert approxtop_weak_ok(reported, stats, 10, 0.5)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            recommend_parameters([], k=5, epsilon=0.5, full_length=100)

    def test_sample_without_k_items_rejected(self):
        with pytest.raises(ValueError, match="fewer than k"):
            recommend_parameters(["a", "b"], k=5, epsilon=0.5,
                                 full_length=100)

    def test_width_scales_with_tighter_epsilon(self):
        sample = ZipfStreamGenerator(m=500, z=1.0, seed=5).generate(5_000)
        tight = recommend_parameters(list(sample), 10, 0.1, 50_000)
        loose = recommend_parameters(list(sample), 10, 0.5, 50_000)
        assert tight.width > loose.width

    def test_depth_from_full_length(self):
        from repro.core.params import suggest_depth

        sample = ZipfStreamGenerator(m=500, z=1.0, seed=6).generate(5_000)
        params = recommend_parameters(list(sample), 10, 0.5, 80_000,
                                      delta=0.01, depth_constant=1.0)
        assert params.depth == suggest_depth(80_000, 0.01, 1.0)
