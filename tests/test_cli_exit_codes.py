"""Exit-code contract: 0 success, 1 usage error, 2 data/runtime error.

One parametrized matrix touching every subcommand — ``topk``,
``estimate``, ``maxchange``, ``percent-change``, ``experiment``,
``store`` (inspect/merge/diff), ``serve``, ``query``, ``cluster``,
and ``cache`` (simulate/stats).  The
``serve``/``query`` success paths need a live server and are exercised
end-to-end by ``test_service_smoke.py`` / ``test_service_resume.py``;
here they contribute their usage and connection failures.
"""

from __future__ import annotations

import pytest

from repro.cache import FrequencySketch
from repro.cli import EXIT_DATA, EXIT_OK, EXIT_USAGE, main
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.store import save
from repro.streams.io import write_stream_text

ITEMS = ["apple"] * 12 + ["banana"] * 7 + ["cherry"] * 3


@pytest.fixture(scope="module")
def paths(tmp_path_factory):
    root = tmp_path_factory.mktemp("exitcodes")
    stream = root / "stream.txt"
    write_stream_text(stream, ITEMS)
    sketch_a = CountSketch(4, 64, seed=3)
    sketch_b = CountSketch(4, 64, seed=3)
    topk = TopKTracker(5, depth=4, width=64, seed=3)
    for item in ITEMS:
        sketch_a.update(item)
        sketch_b.update(item, 2)
        topk.update(item)
    save(sketch_a, root / "a.rcs")
    save(sketch_b, root / "b.rcs")
    save(topk, root / "top.rcs")
    oracle = FrequencySketch(64, seed=3)
    for item in ITEMS:
        oracle.touch(item)
    oracle.save(root / "admission.rcs")
    return {
        "stream": str(stream),
        "snap_a": str(root / "a.rcs"),
        "snap_b": str(root / "b.rcs"),
        "snap_top": str(root / "top.rcs"),
        "snap_cache": str(root / "admission.rcs"),
        "out": str(root / "merged.rcs"),
        "missing": str(root / "nope" / "missing.rcs"),
    }


def exit_code(argv, capsys):
    try:
        code = main(argv)
    except SystemExit as error:
        code = error.code
    capsys.readouterr()
    return code


SUCCESS = [
    pytest.param(["topk", "--input", "{stream}"], id="topk"),
    pytest.param(["estimate", "--input", "{stream}", "apple"],
                 id="estimate-stream"),
    pytest.param(["estimate", "--sketch", "{snap_a}", "apple"],
                 id="estimate-snapshot"),
    pytest.param(["maxchange", "--before", "{stream}",
                  "--after", "{stream}"], id="maxchange"),
    pytest.param(["percent-change", "--before", "{stream}",
                  "--after", "{stream}"], id="percent-change"),
    pytest.param(["store", "inspect", "{snap_a}"], id="store-inspect"),
    pytest.param(["store", "merge", "--out", "{out}", "{snap_a}",
                  "{snap_b}"], id="store-merge"),
    pytest.param(["store", "diff", "{snap_a}", "{snap_b}",
                  "--items", "apple"], id="store-diff"),
    pytest.param(["cache", "simulate", "--requests", "2000",
                  "--keys", "500", "--capacity", "50"],
                 id="cache-simulate"),
    pytest.param(["cache", "simulate", "--policy", "tinylfu",
                  "--trace", "shifting", "--requests", "2000",
                  "--keys", "500", "--capacity", "50"],
                 id="cache-simulate-shifting"),
    pytest.param(["cache", "stats", "--sketch", "{snap_cache}", "apple"],
                 id="cache-stats"),
]

USAGE = [
    pytest.param([], id="no-subcommand"),
    pytest.param(["topk"], id="topk-missing-input"),
    pytest.param(["estimate", "apple"], id="estimate-no-source"),
    pytest.param(["estimate", "--input", "{stream}",
                  "--sketch", "{snap_a}", "apple"],
                 id="estimate-conflicting-sources"),
    pytest.param(["maxchange", "--before", "{stream}"],
                 id="maxchange-missing-after"),
    pytest.param(["percent-change"], id="percent-change-missing-args"),
    pytest.param(["experiment", "bogus"], id="experiment-bad-name"),
    pytest.param(["store"], id="store-missing-verb"),
    pytest.param(["store", "merge", "--out", "{out}", "{snap_a}"],
                 id="store-merge-needs-two"),
    pytest.param(["store", "diff", "{snap_a}", "{snap_b}"],
                 id="store-diff-needs-items"),
    pytest.param(["serve"], id="serve-no-table"),
    pytest.param(["serve", "--table", "q:bogus"], id="serve-bad-kind"),
    pytest.param(["serve", "--table", "q:sketch:depth=zero"],
                 id="serve-bad-option-value"),
    pytest.param(["serve", "--table", "q", "--checkpoint-every", "5"],
                 id="serve-trigger-without-dir"),
    pytest.param(["query"], id="query-missing-verb"),
    pytest.param(["query", "explode"], id="query-bad-verb"),
    pytest.param(["query", "create"], id="query-create-missing-table"),
    pytest.param(["cluster"], id="cluster-missing-verb"),
    pytest.param(["cluster", "serve"], id="cluster-serve-no-table"),
    pytest.param(["cluster", "serve", "--table", "q", "--shards", "0"],
                 id="cluster-serve-bad-shards"),
    pytest.param(["cluster", "serve",
                  "--table", "w:window:window=32,buckets=4"],
                 id="cluster-serve-window-table"),
    pytest.param(["cluster", "serve", "--table", "q",
                  "--checkpoint-every", "5"],
                 id="cluster-serve-trigger-without-dir"),
    pytest.param(["cluster", "rebalance", "--src", "a", "--out", "b"],
                 id="cluster-rebalance-missing-shards"),
    pytest.param(["cache"], id="cache-missing-verb"),
    pytest.param(["cache", "simulate", "--policy", "bogus"],
                 id="cache-simulate-bad-policy"),
    pytest.param(["cache", "simulate", "--requests", "0"],
                 id="cache-simulate-zero-requests"),
    pytest.param(["cache", "simulate", "--policy", "lru",
                  "--requests", "100", "--keys", "50",
                  "--save-sketch", "{out}"],
                 id="cache-save-sketch-needs-tinylfu"),
    pytest.param(["cache", "simulate", "--policy", "tinylfu",
                  "--requests", "100", "--keys", "50",
                  "--capacity", "10", "--capacity", "20",
                  "--save-sketch", "{out}"],
                 id="cache-save-sketch-one-capacity"),
    pytest.param(["cache", "stats"], id="cache-stats-missing-sketch"),
    pytest.param(["serve", "--table", "q", "--table-weight", "q"],
                 id="serve-malformed-table-weight"),
    pytest.param(["serve", "--table", "q", "--table-weight", "q=zero"],
                 id="serve-non-integer-table-weight"),
    pytest.param(["serve", "--table", "q", "--ingest-burst", "8"],
                 id="serve-burst-without-rate"),
    pytest.param(["serve", "--table", "q", "--estimate-cache", "1"],
                 id="serve-estimate-cache-too-small"),
    pytest.param(["traffic", "--arrival", "poisson"],
                 id="traffic-open-loop-needs-rate"),
    pytest.param(["traffic", "--tenants", "0"],
                 id="traffic-zero-tenants"),
    pytest.param(["traffic", "--query-fraction", "1.5"],
                 id="traffic-query-fraction-out-of-range"),
    pytest.param(["traffic", "--clients", "0"],
                 id="traffic-zero-clients"),
    pytest.param(["traffic", "--arrival", "staircase"],
                 id="traffic-unknown-arrival"),
]

DATA = [
    pytest.param(["topk", "--input", "{missing}"], id="topk-missing-file"),
    pytest.param(["estimate", "--sketch", "{missing}", "apple"],
                 id="estimate-missing-snapshot"),
    pytest.param(["maxchange", "--before", "{missing}",
                  "--after", "{missing}"], id="maxchange-missing-files"),
    pytest.param(["store", "inspect", "{missing}"],
                 id="store-inspect-missing"),
    pytest.param(["store", "diff", "{snap_a}", "{snap_top}",
                  "--items", "apple"], id="store-diff-wrong-type"),
    pytest.param(["query", "ping", "--port", "1", "--timeout", "5"],
                 id="query-connection-refused"),
    pytest.param(["query", "ping", "--cluster", "{missing}"],
                 id="query-missing-cluster-spec"),
    pytest.param(["cluster", "rebalance", "--src", "{missing}",
                  "--out", "{out}.d", "--shards", "2"],
                 id="cluster-rebalance-no-manifest"),
    pytest.param(["cache", "stats", "--sketch", "{missing}"],
                 id="cache-stats-missing-snapshot"),
    pytest.param(["cache", "stats", "--sketch", "{snap_top}"],
                 id="cache-stats-wrong-type"),
    pytest.param(["cache", "simulate", "--policy", "tinylfu",
                  "--requests", "1000", "--keys", "200",
                  "--capacity", "50", "--load-sketch", "{snap_a}"],
                 id="cache-load-sketch-not-admission"),
    pytest.param(["traffic", "--port", "1", "--duration", "0.1"],
                 id="traffic-connection-refused"),
    pytest.param(["traffic", "--cluster", "{missing}",
                  "--duration", "0.1"],
                 id="traffic-missing-cluster-spec"),
]


def fill(argv, paths):
    return [part.format(**paths) for part in argv]


class TestExitCodes:
    @pytest.mark.parametrize("argv", SUCCESS)
    def test_success_is_zero(self, argv, paths, capsys):
        assert exit_code(fill(argv, paths), capsys) == EXIT_OK

    @pytest.mark.parametrize("argv", USAGE)
    def test_usage_errors_are_one(self, argv, paths, capsys):
        assert exit_code(fill(argv, paths), capsys) == EXIT_USAGE

    @pytest.mark.parametrize("argv", DATA)
    def test_data_errors_are_two(self, argv, paths, capsys):
        assert exit_code(fill(argv, paths), capsys) == EXIT_DATA

    def test_the_three_codes_are_distinct_and_stable(self):
        assert (EXIT_OK, EXIT_USAGE, EXIT_DATA) == (0, 1, 2)

    def test_usage_errors_explain_themselves(self, paths, capsys):
        code = main(["serve", "--table", "q", "--checkpoint-every", "5"])
        captured = capsys.readouterr()
        assert code == EXIT_USAGE
        assert "--checkpoint-dir" in captured.err

    def test_connection_refused_is_one_documented_line(self, capsys):
        code = main(["query", "ping", "--port", "1", "--timeout", "5"])
        captured = capsys.readouterr()
        assert code == EXIT_DATA
        assert "Traceback" not in captured.err
        assert captured.err.strip().count("\n") == 0
        assert "cannot connect" in captured.err


class TestLintExitCodes:
    """``repro lint`` passes the lint module's documented contract
    through unchanged: 0 clean, 1 findings, 2 syntax/argument error."""

    FIXTURES = "tests/fixtures/lint"

    def test_clean_paths_exit_zero(self, capsys):
        argv = ["lint", f"{self.FIXTURES}/rs005_good.py"]
        assert exit_code(argv, capsys) == 0

    def test_list_rules_exits_zero(self, capsys):
        assert exit_code(["lint", "--list-rules"], capsys) == 0

    def test_findings_exit_one(self, capsys):
        argv = ["lint", f"{self.FIXTURES}/rs005_bad.py"]
        assert exit_code(argv, capsys) == 1

    def test_flow_rule_findings_exit_one(self, tmp_path, capsys):
        # Flow rules scope by path: stage the file under a synthetic
        # src/repro/service/ tree (the real fixtures live under tests/,
        # where the flow rules are inactive by design).
        module = tmp_path / "src" / "repro" / "service" / "leaky.py"
        module.parent.mkdir(parents=True)
        module.write_text(
            '"""Leak."""\n'
            "def f(path):\n"
            "    handle = open(path)\n"
            "    data = handle.read()\n"
            "    handle.close()\n"
            "    return data\n"
        )
        code = main(["lint", "--select", "RS009-RS012", str(module)])
        captured = capsys.readouterr()
        assert code == 1
        assert "RS011" in captured.out

    def test_select_can_silence_findings(self, capsys):
        argv = ["lint", "--select", "RS001",
                f"{self.FIXTURES}/rs005_bad.py"]
        assert exit_code(argv, capsys) == 0

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert exit_code(["lint", str(broken)], capsys) == 2

    def test_bad_rule_spec_exits_two(self, capsys):
        assert exit_code(["lint", "--select", "RS099", "src"], capsys) == 2

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        argv = ["lint", "--baseline", missing,
                f"{self.FIXTURES}/rs005_good.py"]
        assert exit_code(argv, capsys) == 2

    def test_baseline_roundtrip_through_cli(self, tmp_path, capsys):
        bad = f"{self.FIXTURES}/rs005_bad.py"
        assert main(["lint", "--format", "json", bad]) == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        argv = ["lint", "--baseline", str(baseline), bad]
        assert exit_code(argv, capsys) == 0

    def test_bad_format_choice_is_usage_error(self, capsys):
        argv = ["lint", "--format", "yaml"]
        assert exit_code(argv, capsys) == EXIT_USAGE
