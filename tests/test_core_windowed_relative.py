"""Tests for the jumping-window sketch and the relative-change finder."""

import pytest

from repro.core.relative_change import (
    RelativeChangeFinder,
    RelativeChangeReport,
)
from repro.core.windowed import JumpingWindowSketch


class TestJumpingWindowSketch:
    def test_validation(self):
        with pytest.raises(ValueError):
            JumpingWindowSketch(0)
        with pytest.raises(ValueError):
            JumpingWindowSketch(10, buckets=0)
        with pytest.raises(ValueError):
            JumpingWindowSketch(10, buckets=20)
        with pytest.raises(ValueError):
            JumpingWindowSketch(10).update("x", 0)

    def test_within_window_counts_everything(self):
        window = JumpingWindowSketch(window=1000, buckets=4,
                                     depth=5, width=256, seed=0)
        for _ in range(100):
            window.update("x")
        assert window.estimate("x") == 100.0
        assert window.covered() == 100

    def test_old_items_expire(self):
        window = JumpingWindowSketch(window=1000, buckets=4,
                                     depth=3, width=256, seed=1)
        for _ in range(2500):
            window.update("old")
        for _ in range(2500):
            window.update("new")
        assert window.estimate("old") == 0.0
        assert window.estimate("new") > 0

    def test_covered_stays_in_band(self):
        window = JumpingWindowSketch(window=1000, buckets=4,
                                     depth=3, width=64, seed=2)
        for i in range(5000):
            window.update(i % 50)
            if i >= 1000:
                # Covered window in (W - 2*W/B, W] = (500, 1000]; never
                # overshoots W, dips after rotations.
                assert 500 < window.covered() <= 1000

    def test_sliding_mix(self):
        """A heavy item that stops appearing fades after one window."""
        window = JumpingWindowSketch(window=400, buckets=4,
                                     depth=5, width=256, seed=3)
        for i in range(400):
            window.update("early" if i % 2 == 0 else i)
        mid_estimate = window.estimate("early")
        assert mid_estimate > 100
        for i in range(800):
            window.update(i + 10_000)
        # Expired: only residual sketch noise remains (|est| ~ gamma of
        # the live window, far below the in-window estimate).
        assert abs(window.estimate("early")) < mid_estimate / 5

    def test_items_seen_counts_everything(self):
        window = JumpingWindowSketch(window=100, buckets=2, depth=3,
                                     width=32, seed=4)
        for i in range(321):
            window.update(i)
        assert window.items_seen == 321

    def test_counters_used_positive(self):
        window = JumpingWindowSketch(window=100, buckets=2, depth=3,
                                     width=32, seed=5)
        window.update("a")
        assert window.counters_used() >= 2 * 3 * 32
        assert window.items_stored() == 0

    def test_weighted_update(self):
        window = JumpingWindowSketch(window=1000, buckets=2, depth=3,
                                     width=64, seed=6)
        window.update("x", 5)
        assert window.estimate("x") == 5.0

    def test_repr(self):
        assert "window=100" in repr(JumpingWindowSketch(100))

    def test_aggregate_equals_sketch_of_trailing_items(self):
        """The strongest invariant: at any instant, the window's internal
        aggregate equals a fresh Count Sketch (same seed) over exactly the
        trailing ``covered()`` items — linearity makes the construction
        exact, not approximate."""
        from repro.core.countsketch import CountSketch
        from repro.streams.zipf import ZipfStreamGenerator

        stream = ZipfStreamGenerator(m=100, z=1.0, seed=7).generate(3_000)
        items = list(stream)
        window = JumpingWindowSketch(window=500, buckets=5, depth=3,
                                     width=64, seed=8)
        checkpoints = {750, 1_500, 2_999}
        for position, item in enumerate(items):
            window.update(item)
            if position in checkpoints:
                covered = window.covered()
                reference = CountSketch(3, 64, seed=8)
                reference.extend(items[position + 1 - covered:position + 1])
                assert window._aggregate == reference


class TestRelativeChangeReport:
    def test_ratio_and_percent(self):
        report = RelativeChangeReport("x", count_before=10, count_after=30)
        assert report.ratio == 3.0
        assert report.percent_change == 2.0

    def test_zero_before_smoothed(self):
        report = RelativeChangeReport("x", count_before=0, count_after=7)
        assert report.ratio == 7.0
        assert report.percent_change == 7.0


class TestRelativeChangeFinder:
    def test_validation(self):
        with pytest.raises(ValueError):
            RelativeChangeFinder(0)
        with pytest.raises(ValueError):
            RelativeChangeFinder(5, floor=0)
        with pytest.raises(ValueError):
            RelativeChangeFinder(5).report(-1)

    def run_small(self, before, after, l=8, k=3, **kwargs):
        finder = RelativeChangeFinder(l, depth=5, width=256, seed=0,
                                      **kwargs)
        finder.first_pass(before, after)
        finder.second_pass(before, after)
        return finder, finder.report(k)

    def test_finds_largest_percent_change(self):
        # 'b' grows 20x from a meaningful base; 'a' is stable and huge;
        # 'c' shrinks 5x.
        before = ["a"] * 1000 + ["b"] * 10 + ["c"] * 500
        after = ["a"] * 1000 + ["b"] * 200 + ["c"] * 100
        __, reports = self.run_small(before, after)
        assert reports[0].item == "b"
        assert reports[0].percent_change == pytest.approx(19.0)

    def test_exact_counts(self):
        before = ["a"] * 50 + ["b"] * 5
        after = ["a"] * 10 + ["b"] * 40
        __, reports = self.run_small(before, after, k=2)
        by = {r.item: r for r in reports}
        assert by["a"].count_before == 50
        assert by["a"].count_after == 10
        assert by["b"].count_before == 5
        assert by["b"].count_after == 40

    def test_min_after_filter(self):
        before = ["gone"] * 100 + ["grew"] * 10
        after = ["grew"] * 150
        finder, __ = self.run_small(before, after, k=3)
        growth_only = finder.report(3, min_after=1)
        assert all(r.count_after >= 1 for r in growth_only)
        assert growth_only[0].item == "grew"

    def test_floor_suppresses_noise(self):
        """With a high floor, a 1 -> 6 noise item loses to a 100 -> 400
        item; with floor 1 the noise item's ratio wins."""
        before = ["noise"] * 1 + ["real"] * 100 + ["pad"] * 500
        after = ["noise"] * 6 + ["real"] * 400 + ["pad"] * 500
        __, low_floor = self.run_small(before, after, k=1, floor=1.0)
        __, high_floor = self.run_small(before, after, k=1, floor=50.0)
        assert low_floor[0].item == "noise"
        assert high_floor[0].item == "real"

    def test_candidate_set_capped(self):
        before = []
        after = [item for item in range(50) for _ in range(item + 1)]
        finder, __ = self.run_small(before, after, l=5)
        assert finder.items_stored() <= 5

    def test_counters_used(self):
        finder = RelativeChangeFinder(4, depth=2, width=8, seed=0)
        finder.first_pass(["a"], ["a", "b"])
        finder.second_pass(["a"], ["a", "b"])
        assert finder.counters_used() == 2 * 2 * 8 + 2 * finder.items_stored()

    def test_repr(self):
        assert "l=4" in repr(RelativeChangeFinder(4))
