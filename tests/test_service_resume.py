"""Durability acceptance: a killed server resumes bit-for-bit.

Two levels.  In-process: stop a server mid-stream, rebuild it from the
checkpoint directory, finish the stream — the final snapshot bytes
equal an uninterrupted run's.  Subprocess: the same contract through
``repro serve`` and SIGTERM, the way an operator would actually hit it.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.server import MANIFEST_NAME, SketchServer
from repro.service.tables import TableSpec
from repro.store import CheckpointMismatchError

REPO_ROOT = Path(__file__).parent.parent

SPEC = TableSpec("q", kind="sketch", depth=4, width=128, seed=11)

RECORDS = [(f"query-{i % 37}", 1 + (i % 3)) for i in range(500)]


def serve_records(directory, records, *, resume_check=None):
    """Run one server lifetime over ``records``, then stop it."""

    async def go():
        server = SketchServer(
            [SPEC], checkpoint_dir=directory, checkpoint_every_items=64
        )
        client = AsyncServiceClient.in_process(server)
        if resume_check is not None:
            stats = await client.stats("q")
            assert stats["table"]["records_applied"] == resume_check
        if records:
            await client.ingest("q", records, wait=True)
        await server.stop()

    asyncio.run(go())


class TestInProcessResume:
    def test_interrupted_run_matches_uninterrupted_bit_for_bit(
        self, tmp_path
    ):
        full_dir = tmp_path / "full"
        cut_dir = tmp_path / "cut"
        serve_records(full_dir, RECORDS)
        serve_records(cut_dir, RECORDS[:300])
        serve_records(cut_dir, RECORDS[300:], resume_check=300)
        full = (full_dir / "q.rcs").read_bytes()
        resumed = (cut_dir / "q.rcs").read_bytes()
        assert full == resumed

    def test_manifest_pins_specs_across_restarts(self, tmp_path):
        serve_records(tmp_path, RECORDS[:50])
        assert (tmp_path / MANIFEST_NAME).is_file()
        # A different spec under the same name is refused, not coerced.
        with pytest.raises(CheckpointMismatchError, match="different"):
            SketchServer(
                [TableSpec("q", kind="sketch", depth=5, width=128,
                           seed=11)],
                checkpoint_dir=tmp_path,
                checkpoint_every_items=64,
            )

    def test_manifest_restores_undeclared_tables(self, tmp_path):
        serve_records(tmp_path, RECORDS[:80])

        async def go():
            # Start with NO specs: the manifest alone rebuilds the table.
            server = SketchServer(
                [], checkpoint_dir=tmp_path, checkpoint_every_items=64
            )
            client = AsyncServiceClient.in_process(server)
            stats = await client.stats("q")
            assert stats["table"]["spec"] == SPEC.to_dict()
            assert stats["table"]["records_applied"] == 80
            await server.stop()

        asyncio.run(go())

    def test_wrong_kind_against_existing_snapshot_refused(self, tmp_path):
        serve_records(tmp_path, RECORDS[:50])
        manifest = tmp_path / MANIFEST_NAME
        manifest.unlink()  # drop the pin; the snapshot itself still guards
        with pytest.raises(CheckpointMismatchError, match="declared"):
            SketchServer(
                [TableSpec("q", kind="topk", depth=4, width=128, seed=11)],
                checkpoint_dir=tmp_path,
                checkpoint_every_items=64,
            )


@pytest.mark.skipif(os.name != "posix", reason="SIGTERM semantics")
class TestSigtermResume:
    def test_sigtermed_server_resumes_bit_for_bit(self, tmp_path):
        reference_dir = tmp_path / "reference"
        serve_records(reference_dir, RECORDS)

        live_dir = tmp_path / "live"
        proc, port = self._spawn_server(live_dir)
        try:
            with ServiceClient("127.0.0.1", port, timeout=15) as client:
                client.ingest("q", RECORDS[:300], wait=True)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
            assert "graceful stop complete" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

        proc, port = self._spawn_server(live_dir)
        try:
            with ServiceClient("127.0.0.1", port, timeout=15) as client:
                stats = client.stats("q")
                assert stats["table"]["records_applied"] == 300
                client.ingest("q", RECORDS[300:], wait=True)
                client.shutdown()
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)

        full = (reference_dir / "q.rcs").read_bytes()
        resumed = (live_dir / "q.rcs").read_bytes()
        assert full == resumed

    @staticmethod
    def _spawn_server(directory):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--table", "q:sketch:depth=4,width=128,seed=11",
                "--checkpoint-dir", str(directory),
                "--checkpoint-every", "64",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        deadline = time.monotonic() + 30
        line = ""
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith("serving on "):
                break
            if proc.poll() is not None:
                raise AssertionError(
                    f"server exited early: {proc.communicate()[1]}"
                )
        else:
            proc.kill()
            raise AssertionError("server did not report its port in time")
        port = int(line.rsplit(":", 1)[1])
        return proc, port
