"""Round-trip exactness for every summary type through the codec.

The contract under test: ``loads(dumps(s))`` rebuilds a summary that is
bit-for-bit equivalent — same counters, same estimates, same top-k
output, same merge compatibility — and keeps behaving identically when
updates continue after the reload.  Property-based streams (hypothesis)
drive the five types through the same assertions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.countsketch import CountSketch
from repro.core.sparse import SparseCountSketch
from repro.core.topk import TopKTracker
from repro.core.vectorized import VectorizedCountSketch
from repro.core.windowed import JumpingWindowSketch
from repro.store import (
    SnapshotFormatError,
    dumps,
    inspect,
    load,
    load_with_meta,
    loads,
    save,
)
from repro.store.format import TYPE_CODES, decode_frame, encode_frame

ITEMS = st.one_of(
    st.integers(min_value=0, max_value=60),
    st.sampled_from(["alpha", "beta", "gamma", "delta"]),
    st.sampled_from([b"\x00raw", ("pair", 1), (2, (3, "deep"))]),
)
STREAMS = st.lists(ITEMS, max_size=100)

#: Fixed probe set covering every supported item kind.
PROBES = ["alpha", "missing", 0, 17, b"\x00raw", ("pair", 1)]


def build_dense(items):
    sketch = CountSketch(3, 16, seed=5)
    sketch.extend(items)
    return sketch


def build_sparse(items):
    sketch = SparseCountSketch(3, 16, seed=5)
    sketch.extend(items)
    return sketch


def build_vectorized(items):
    sketch = VectorizedCountSketch(3, 16, seed=5)
    sketch.extend(items)
    return sketch


def build_topk(items):
    tracker = TopKTracker(4, depth=3, width=16, seed=5)
    for item in items:
        tracker.update(item)
    return tracker


def build_window(items):
    window = JumpingWindowSketch(24, buckets=4, depth=3, width=16, seed=5)
    for item in items:
        window.update(item)
    return window


BUILDERS = [
    pytest.param(build_dense, id="dense"),
    pytest.param(build_sparse, id="sparse"),
    pytest.param(build_vectorized, id="vectorized"),
    pytest.param(build_topk, id="topk"),
    pytest.param(build_window, id="window"),
]


def assert_state_equal(a, b):
    """Recursive state_dict equality, numpy-array aware."""
    assert type(a) is type(b)
    state_a, state_b = a.state_dict(), b.state_dict()
    _assert_tree_equal(state_a, state_b)


def _assert_tree_equal(a, b):
    assert type(a) is type(b), (a, b)
    if isinstance(a, dict):
        assert a.keys() == b.keys()
        for key in a:
            _assert_tree_equal(a[key], b[key])
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for left, right in zip(a, b, strict=True):
            _assert_tree_equal(left, right)
    elif isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    else:
        assert a == b


class TestRoundTrip:
    @pytest.mark.parametrize("build", BUILDERS)
    @settings(max_examples=20, deadline=None)
    @given(items=STREAMS)
    def test_state_and_estimates_survive(self, build, items):
        original = build(items)
        restored = loads(dumps(original))
        assert_state_equal(original, restored)
        for probe in PROBES:
            assert restored.estimate(probe) == original.estimate(probe)

    @pytest.mark.parametrize("build", BUILDERS)
    @settings(max_examples=15, deadline=None)
    @given(items=STREAMS, tail=STREAMS)
    def test_continued_updates_equivalent(self, build, items, tail):
        # A reloaded summary is not a read-only replica: feeding the same
        # suffix to both copies keeps them bit-for-bit identical.
        original = build(items)
        restored = loads(dumps(original))
        for item in tail:
            original.update(item)
            restored.update(item)
        assert_state_equal(original, restored)

    @settings(max_examples=20, deadline=None)
    @given(items=STREAMS)
    def test_topk_output_identical(self, items):
        original = build_topk(items)
        restored = loads(dumps(original))
        assert restored.top() == original.top()

    @settings(max_examples=15, deadline=None)
    @given(items=STREAMS, other_items=STREAMS)
    def test_merge_compatibility_preserved(self, items, other_items):
        # §3.2: the reloaded sketch still shares the hash family, so it
        # merges with live siblings — and the merge equals the original's.
        sibling = build_dense(other_items)
        via_original = build_dense(items) + sibling
        via_restored = loads(dumps(build_dense(items))) + sibling
        assert via_original == via_restored

    @pytest.mark.parametrize("build", BUILDERS)
    def test_snapshot_bytes_deterministic(self, build):
        items = ["a", "b", "a", 3, 3, 3, ("t", 1)] * 5
        data = dumps(build(items))
        assert dumps(build(items)) == data
        assert dumps(loads(data)) == data


class TestFiles:
    def test_save_load(self, tmp_path):
        path = tmp_path / "sketch.rcs"
        original = build_dense(["x"] * 9 + ["y"] * 4)
        written = save(original, path)
        assert written == path.stat().st_size
        assert load(path) == original

    def test_meta_round_trip(self, tmp_path):
        path = tmp_path / "sketch.rcs"
        meta = {"items_consumed": 13, "labels": ["a", "b"], "nested": {"x": 1}}
        save(build_dense(["x"]), path, meta=meta)
        __, restored_meta = load_with_meta(path)
        assert restored_meta == meta

    def test_missing_meta_is_empty_dict(self, tmp_path):
        path = tmp_path / "sketch.rcs"
        save(build_dense(["x"]), path)
        assert load_with_meta(path)[1] == {}

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "sketch.rcs"
        save(build_dense(["x"] * 5), path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="CRC"):
            load(path)

    def test_non_snapshot_file_rejected(self, tmp_path):
        path = tmp_path / "not-a-snapshot.rcs"
        path.write_bytes(b"just some text, definitely not a frame")
        with pytest.raises(SnapshotFormatError):
            load(path)


class TestInspect:
    def test_dense_header_summary(self, tmp_path):
        path = tmp_path / "sketch.rcs"
        save(build_dense(["x"] * 7), path, meta={"note": "hi"})
        info = inspect(path)
        assert info["type"] == "dense"
        assert info["format_version"] == 1
        assert info["file_bytes"] == path.stat().st_size
        assert info["payload_bytes"] == 3 * 16 * 8
        assert info["header"]["depth"] == 3
        assert info["header"]["width"] == 16
        assert info["meta"] == {"note": "hi"}
        # Bulk fields stay out of the summary view.
        assert "bucket_coefficients" not in info["header"]
        assert "sign_coefficients" not in info["header"]

    def test_topk_reports_heap_size_not_contents(self, tmp_path):
        path = tmp_path / "topk.rcs"
        save(build_topk(["a", "a", "b", "c"]), path)
        info = inspect(path)
        assert info["type"] == "topk"
        assert info["header"]["heap_size"] == 3
        assert "heap" not in info["header"]
        assert "bucket_coefficients" not in info["header"]["sketch"]


class TestValidation:
    def test_unsupported_summary_type(self):
        with pytest.raises(TypeError, match="cannot snapshot"):
            dumps(object())

    def _reencode_with_header(self, summary, mutate):
        type_code, header, payload = decode_frame(dumps(summary))
        mutate(header)
        return encode_frame(type_code, header, payload)

    def test_missing_header_field_rejected(self):
        data = self._reencode_with_header(
            build_dense(["x"]), lambda h: h.pop("seed")
        )
        with pytest.raises(SnapshotFormatError, match="missing field"):
            loads(data)

    def test_dimension_payload_mismatch_rejected(self):
        data = self._reencode_with_header(
            build_dense(["x"]), lambda h: h.update(depth=4)
        )
        with pytest.raises(SnapshotFormatError, match="payload too short"):
            loads(data)

    def test_oversized_payload_rejected(self):
        type_code, header, payload = decode_frame(dumps(build_dense(["x"])))
        data = encode_frame(type_code, header, payload + b"\x00" * 8)
        with pytest.raises(SnapshotFormatError, match="unexpected byte"):
            loads(data)

    def test_non_object_meta_rejected(self, tmp_path):
        data = self._reencode_with_header(
            build_dense(["x"]), lambda h: h.update(meta=[1, 2])
        )
        path = tmp_path / "bad-meta.rcs"
        path.write_bytes(data)
        with pytest.raises(SnapshotFormatError, match="meta"):
            load_with_meta(path)

    def test_invalid_state_rejected_as_format_error(self):
        # Validation from from_state_dict (a ValueError) surfaces as a
        # SnapshotFormatError: the file, not the caller, is at fault.
        data = self._reencode_with_header(
            build_dense(["x"]),
            lambda h: h.update(
                bucket_coefficients=h["bucket_coefficients"][:-1]
            ),
        )
        with pytest.raises(SnapshotFormatError, match="rejected"):
            loads(data)

    def test_sparse_row_lengths_must_match_depth(self):
        data = self._reencode_with_header(
            build_sparse(["x", "y"]),
            lambda h: h.update(row_lengths=h["row_lengths"][:-1]),
        )
        with pytest.raises(SnapshotFormatError, match="row_lengths"):
            loads(data)

    def test_type_codes_cover_all_builders(self):
        built = {
            decode_frame(dumps(build(["x"])))[0]
            for build in (
                build_dense, build_sparse, build_vectorized,
                build_topk, build_window,
            )
        }
        assert built == set(TYPE_CODES.values())
