"""Tests for the experiment harness utilities and report rendering."""


import pytest

from repro.experiments.harness import (
    fit_power_law,
    geometric_grid,
    mean,
    minimal_passing_value,
)
from repro.experiments.report import format_table, format_value


class TestGeometricGrid:
    def test_basic(self):
        assert geometric_grid(1, 16, factor=2.0) == [1, 2, 4, 8, 16]

    def test_hi_always_included(self):
        grid = geometric_grid(1, 100, factor=3.0)
        assert grid[-1] == 100
        assert grid == sorted(set(grid))

    def test_lo_equals_hi(self):
        assert geometric_grid(7, 7) == [7]

    def test_fractional_factor(self):
        grid = geometric_grid(10, 100, factor=2**0.5)
        assert grid[0] == 10
        assert grid[-1] == 100
        assert all(b > a for a, b in zip(grid, grid[1:], strict=False))

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_grid(0, 10)
        with pytest.raises(ValueError):
            geometric_grid(10, 5)
        with pytest.raises(ValueError):
            geometric_grid(1, 10, factor=1.0)


class TestMinimalPassingValue:
    def test_deterministic_threshold(self):
        result = minimal_passing_value(
            lambda value, seed: value >= 40,
            [10, 20, 40, 80],
            seeds=(0, 1, 2),
        )
        assert result == 40

    def test_none_when_nothing_passes(self):
        assert minimal_passing_value(
            lambda value, seed: False, [1, 2], seeds=(0,)
        ) is None

    def test_success_rate_threshold(self):
        # Passes for 1 of 2 seeds below 50, for both at 50+.
        def predicate(value, seed):
            return value >= 50 or seed == 0

        assert minimal_passing_value(
            predicate, [10, 50, 100], seeds=(0, 1), success_rate=1.0
        ) == 50
        assert minimal_passing_value(
            predicate, [10, 50, 100], seeds=(0, 1), success_rate=0.5
        ) == 10

    def test_early_exit_skips_redundant_seeds(self):
        calls = []

        def predicate(value, seed):
            calls.append((value, seed))
            return False

        minimal_passing_value(predicate, [1], seeds=(0, 1, 2),
                              success_rate=1.0)
        # After the first failure, success is impossible: one call only.
        assert calls == [(1, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            minimal_passing_value(lambda v, s: True, [1], success_rate=0)


class TestFitPowerLaw:
    def test_exact_power_law(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x**0.5 for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(0.5)

    def test_negative_exponent(self):
        xs = [1, 10, 100]
        ys = [5 / x for x in xs]
        assert fit_power_law(xs, ys) == pytest.approx(-1.0)

    def test_constant_is_zero_slope(self):
        assert fit_power_law([1, 2, 4], [7, 7, 7]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([2, 2], [1, 3])

    def test_noisy_fit_close(self):
        xs = [2**i for i in range(8)]
        ys = [x**0.4 * (1.1 if i % 2 else 0.9) for i, x in enumerate(xs)]
        assert abs(fit_power_law(xs, ys) - 0.4) < 0.1


class TestMean:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestFormatValue:
    def test_int(self):
        assert format_value(42) == "42"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_large_float_compact(self):
        assert format_value(123456.0) == "1.23e+05"

    def test_small_float_compact(self):
        assert format_value(0.0000123) == "1.23e-05"

    def test_mid_float(self):
        assert format_value(3.14159) == "3.142"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_structure(self):
        text = format_table(
            ["a", "bb"], [[1, 2], [3, 4]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_alignment(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_row_length_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_no_title(self):
        text = format_table(["x"], [[1]])
        assert not text.startswith("=")
        assert len(text.splitlines()) == 3
