"""CLI tests for the persistence surface.

Covers ``--save-state`` / ``--checkpoint-every`` / ``--resume`` /
``--checkpoint-dir`` on ``topk`` and ``estimate``, snapshot-only
queries (``estimate --sketch``), and the ``repro store`` subcommands
(``inspect`` / ``merge`` / ``diff``).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.countsketch import CountSketch
from repro.core.topk import TopKTracker
from repro.store import SketchArchive, load, save
from repro.streams.io import write_stream_text

ITEMS = ["apple"] * 30 + ["banana"] * 20 + ["cherry"] * 10 + ["date"] * 2


@pytest.fixture()
def stream_file(tmp_path):
    path = tmp_path / "stream.txt"
    write_stream_text(path, ITEMS)
    return str(path)


def run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestSaveState:
    def test_topk_save_then_query_snapshot(self, stream_file, tmp_path,
                                           capsys):
        snap = str(tmp_path / "day.rcs")
        code, out, __ = run(
            ["topk", "--input", stream_file, "--save-state", snap], capsys
        )
        assert code == 0
        assert "state: snapshot" in out
        assert isinstance(load(snap), TopKTracker)

        code, out, __ = run(
            ["estimate", "--sketch", snap, "apple", "missing"], capsys
        )
        assert code == 0
        assert "apple" in out and "30" in out

    def test_estimate_save_state_writes_dense_sketch(self, stream_file,
                                                     tmp_path, capsys):
        snap = str(tmp_path / "est.rcs")
        code, __, __ = run(
            ["estimate", "--input", stream_file, "--save-state", snap,
             "apple"],
            capsys,
        )
        assert code == 0
        assert isinstance(load(snap), CountSketch)

    def test_checkpoint_every_reports_snapshots(self, stream_file, tmp_path,
                                                capsys):
        snap = str(tmp_path / "day.rcs")
        code, out, __ = run(
            ["topk", "--input", stream_file, "--save-state", snap,
             "--checkpoint-every", "10"],
            capsys,
        )
        assert code == 0
        assert "snapshot(s)" in out


class TestResume:
    def test_interrupted_topk_resume_matches_uninterrupted(self, tmp_path,
                                                           capsys):
        full = tmp_path / "full.txt"
        write_stream_text(full, ITEMS)
        head = tmp_path / "head.txt"
        write_stream_text(head, ITEMS[:40])
        snap = str(tmp_path / "ckpt.rcs")

        __, reference, __ = run(
            ["topk", "--input", str(full), "--k", "3"], capsys
        )

        # The "killed" run only saw a prefix; its last checkpoint covers
        # a multiple of 10 items.
        code, __, __ = run(
            ["topk", "--input", str(head), "--k", "3",
             "--save-state", snap, "--checkpoint-every", "10"],
            capsys,
        )
        assert code == 0

        code, resumed, __ = run(
            ["topk", "--input", str(full), "--k", "3", "--resume", snap,
             "--save-state", snap],
            capsys,
        )
        assert code == 0
        table = [
            line for line in reference.splitlines()
            if "apple" in line or "banana" in line or "cherry" in line
        ]
        for line in table:
            assert line in resumed

    def test_resume_with_wrong_snapshot_type_refused(self, stream_file,
                                                     tmp_path, capsys):
        snap = str(tmp_path / "dense.rcs")
        save(CountSketch(5, 512), snap, meta={"items_consumed": 0})
        code, __, err = run(
            ["topk", "--input", stream_file, "--resume", snap], capsys
        )
        assert code == 2
        assert "TopKTracker" in err

    def test_plain_snapshot_resumes_from_zero(self, stream_file, tmp_path,
                                              capsys):
        # A snapshot without checkpoint meta counts as zero-consumed: the
        # whole stream lands on top of it (incremental multi-file ingest).
        snap = str(tmp_path / "plain.rcs")
        prior = CountSketch(5, 512)
        prior.extend(["apple"] * 4)
        save(prior, snap)
        code, out, __ = run(
            ["estimate", "--input", stream_file, "--resume", snap, "apple"],
            capsys,
        )
        assert code == 0
        assert "34" in out  # 4 prior + 30 streamed


class TestFlagValidation:
    def test_checkpoint_every_needs_save_state(self, stream_file, capsys):
        code, __, err = run(
            ["topk", "--input", stream_file, "--checkpoint-every", "5"],
            capsys,
        )
        assert code == 1
        assert "--save-state" in err

    def test_save_state_refused_with_workers(self, stream_file, tmp_path,
                                             capsys):
        code, __, err = run(
            ["topk", "--input", stream_file, "--workers", "2",
             "--save-state", str(tmp_path / "x.rcs")],
            capsys,
        )
        assert code == 1
        assert "--checkpoint-dir" in err

    def test_checkpoint_dir_refused_serial(self, stream_file, tmp_path,
                                           capsys):
        code, __, err = run(
            ["topk", "--input", stream_file,
             "--checkpoint-dir", str(tmp_path / "ckpt")],
            capsys,
        )
        assert code == 1
        assert "--workers" in err

    def test_sketch_flag_excludes_stream_flags(self, stream_file, tmp_path,
                                               capsys):
        snap = str(tmp_path / "x.rcs")
        save(CountSketch(3, 16), snap)
        code, __, err = run(
            ["estimate", "--sketch", snap, "--input", stream_file, "apple"],
            capsys,
        )
        assert code == 1
        assert "--sketch" in err

    def test_estimate_needs_some_source(self, capsys):
        code, __, err = run(["estimate", "apple"], capsys)
        assert code == 1
        assert "--input" in err

    def test_missing_snapshot_is_a_clean_error(self, capsys):
        code, __, err = run(
            ["estimate", "--sketch", "does-not-exist.rcs", "apple"], capsys
        )
        assert code == 2
        assert "error:" in err


class TestCheckpointDir:
    def test_parallel_topk_with_checkpoint_dir(self, tmp_path, capsys):
        stream = tmp_path / "big.txt"
        write_stream_text(stream, ITEMS * 20)
        ckpt = tmp_path / "ckpt"

        __, reference, __ = run(
            ["topk", "--input", str(stream), "--k", "3", "--workers", "2"],
            capsys,
        )
        code, resumed, __ = run(
            ["topk", "--input", str(stream), "--k", "3", "--workers", "2",
             "--checkpoint-dir", str(ckpt)],
            capsys,
        )
        assert code == 0
        assert ckpt.is_dir() and any(ckpt.glob("shard-*.rcs"))
        assert [l for l in resumed.splitlines() if "apple" in l] == [
            l for l in reference.splitlines() if "apple" in l
        ]


class TestStoreInspect:
    def test_prints_json_summary(self, tmp_path, capsys):
        snap = str(tmp_path / "s.rcs")
        sketch = CountSketch(3, 16, seed=2)
        sketch.extend(["a", "b"])
        save(sketch, snap, meta={"note": "hello"})
        code, out, __ = run(["store", "inspect", snap], capsys)
        assert code == 0
        assert '"type": "dense"' in out
        assert '"note": "hello"' in out

    def test_corrupt_file_fails_cleanly(self, tmp_path, capsys):
        snap = tmp_path / "bad.rcs"
        snap.write_bytes(b"garbage bytes")
        code, __, err = run(["store", "inspect", str(snap)], capsys)
        assert code == 2
        assert "error:" in err


class TestStoreMerge:
    def _snap(self, tmp_path, name, items, seed=3):
        sketch = CountSketch(3, 32, seed=seed)
        sketch.extend(items)
        path = str(tmp_path / name)
        save(sketch, path)
        return path

    def test_merge_is_exact_by_linearity(self, tmp_path, capsys):
        a = self._snap(tmp_path, "a.rcs", ["x"] * 5)
        b = self._snap(tmp_path, "b.rcs", ["x"] * 7 + ["y"] * 2)
        out_path = str(tmp_path / "merged.rcs")
        code, out, __ = run(
            ["store", "merge", a, b, "--out", out_path], capsys
        )
        assert code == 0
        assert "total_weight=14" in out
        merged = load(out_path)
        assert merged.estimate("x") == 12.0

    def test_needs_two_inputs(self, tmp_path, capsys):
        a = self._snap(tmp_path, "a.rcs", ["x"])
        code, __, err = run(
            ["store", "merge", a, "--out", str(tmp_path / "m.rcs")], capsys
        )
        assert code == 1
        assert "two" in err

    def test_incompatible_seeds_refused(self, tmp_path, capsys):
        a = self._snap(tmp_path, "a.rcs", ["x"], seed=1)
        b = self._snap(tmp_path, "b.rcs", ["x"], seed=2)
        code, __, err = run(
            ["store", "merge", a, b, "--out", str(tmp_path / "m.rcs")],
            capsys,
        )
        assert code == 2

    def test_mixed_types_refused(self, tmp_path, capsys):
        a = self._snap(tmp_path, "a.rcs", ["x"])
        topk_path = str(tmp_path / "t.rcs")
        save(TopKTracker(2, depth=3, width=32), topk_path)
        code, __, err = run(
            ["store", "merge", a, topk_path,
             "--out", str(tmp_path / "m.rcs")],
            capsys,
        )
        assert code == 2
        assert "TopKTracker" in err


class TestStoreDiff:
    def _snap(self, tmp_path, name, items):
        sketch = CountSketch(5, 256, seed=0)
        sketch.extend(items)
        path = str(tmp_path / name)
        save(sketch, path)
        return path

    def test_file_diff_ranks_by_change(self, tmp_path, capsys):
        before = self._snap(tmp_path, "before.rcs", ["up"] * 2 + ["down"] * 9)
        after = self._snap(tmp_path, "after.rcs", ["up"] * 30 + ["down"] * 9)
        code, out, __ = run(
            ["store", "diff", before, after, "--items", "up", "down",
             "--k", "2"],
            capsys,
        )
        assert code == 0
        assert out.index("up") < out.index("down")
        assert "28" in out  # estimated change of "up"

    def test_file_diff_requires_items(self, tmp_path, capsys):
        before = self._snap(tmp_path, "b.rcs", ["x"])
        after = self._snap(tmp_path, "a.rcs", ["x"])
        code, __, err = run(["store", "diff", before, after], capsys)
        assert code == 1
        assert "--items" in err

    def test_incompatible_snapshots_refused(self, tmp_path, capsys):
        before = self._snap(tmp_path, "b.rcs", ["x"])
        other = CountSketch(5, 256, seed=99)
        after = str(tmp_path / "a.rcs")
        save(other, after)
        code, __, err = run(
            ["store", "diff", before, after, "--items", "x"], capsys
        )
        assert code == 2
        assert "hash-compatible" in err

    def test_archive_diff(self, tmp_path, capsys):
        directory = tmp_path / "archive"
        archive = SketchArchive(directory, depth=5, width=256, seed=0)
        archive.append_stream(["calm"] * 50 + ["surge"] * 2)
        archive.append_stream(["calm"] * 50 + ["surge"] * 40)
        code, out, __ = run(
            ["store", "diff", "0", "1", "--archive", str(directory),
             "--k", "1"],
            capsys,
        )
        assert code == 0
        assert "surge" in out
        assert "38" in out

    def test_archive_needs_integer_epochs(self, tmp_path, capsys):
        directory = tmp_path / "archive"
        SketchArchive(directory, depth=5, width=256, seed=0)
        code, __, err = run(
            ["store", "diff", "zero", "one", "--archive", str(directory)],
            capsys,
        )
        assert code == 1
        assert "epoch indices" in err
