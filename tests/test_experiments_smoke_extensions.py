"""Smoke tests for the extension experiments (X1–X4) at reduced scale."""

import pytest

from repro.experiments import (
    autoconfig,
    hierarchical_maxchange,
    relative_change_floor,
    windowed_accuracy,
)


class TestHierarchicalMaxChange:
    @pytest.fixture(scope="class")
    def result(self):
        config = hierarchical_maxchange.HierarchicalMaxChangeConfig(
            domain_bits=10, m=1_000, n=10_000, width=256,
            sketch_seeds=(0, 1),
        )
        return hierarchical_maxchange.run(config), config

    def test_both_methods_recover_drift(self, result):
        (rows, __), __config = result
        two_pass, one_pass = rows
        assert two_pass.recall >= 0.8
        assert one_pass.recall >= 0.8

    def test_pass_counts(self, result):
        (rows, __), __config = result
        assert rows[0].passes == 2
        assert rows[1].passes == 1

    def test_space_premium_is_domain_bits(self, result):
        (rows, __), config = result
        assert rows[1].counters == 2 * config.domain_bits * config.depth * (
            config.width
        )

    def test_report_renders(self, result):
        (rows, threshold), config = result
        text = hierarchical_maxchange.format_report(rows, threshold, config)
        assert "one-pass" in text


class TestAutoConfig:
    @pytest.fixture(scope="class")
    def result(self):
        config = autoconfig.AutoConfigConfig(
            m=1_000, n=10_000, k=10, zs=(1.0,), sketch_seeds=(0, 1)
        )
        return autoconfig.run(config), config

    def test_guarantees_hold_blind(self, result):
        rows, __ = result
        for row in rows:
            assert row.weak_rate == 1.0
            assert row.strong_rate == 1.0

    def test_width_near_oracle(self, result):
        rows, __ = result
        for row in rows:
            assert 0.25 <= row.width_ratio <= 4.0

    def test_report_renders(self, result):
        rows, config = result
        assert "auto-configuration" in autoconfig.format_report(rows, config)


class TestWindowedAccuracy:
    @pytest.fixture(scope="class")
    def result(self):
        config = windowed_accuracy.WindowedAccuracyConfig(
            m=300, window=2_000, total=10_000, buckets=(2, 8)
        )
        return windowed_accuracy.run(config), config

    def test_window_never_overshoots(self, result):
        rows, config = result
        for row in rows:
            assert row.covered_max <= config.window

    def test_retired_item_forgotten(self, result):
        rows, config = result
        for row in rows:
            assert row.retired_residual <= config.retired_count * 0.1

    def test_in_window_accuracy(self, result):
        rows, __ = result
        for row in rows:
            assert row.mean_relative_error <= 0.2

    def test_report_renders(self, result):
        rows, config = result
        assert "jumping-window" in windowed_accuracy.format_report(
            rows, config
        )


class TestRelativeChangeFloor:
    @pytest.fixture(scope="class")
    def result(self):
        config = relative_change_floor.FloorSweepConfig()
        return relative_change_floor.run(config), config

    def test_three_regimes(self, result):
        rows, __ = result
        kinds = {row.floor: row.top_item_kind for row in rows}
        assert kinds[1.0] == "flicker"
        assert kinds[16.0] == "sleeper"
        assert kinds[16_384.0] == "heavy"

    def test_sleeper_found_in_mid_band(self, result):
        rows, __ = result
        mid = [row for row in rows if row.floor in (16.0, 256.0)]
        assert all(row.sleeper_rank == 1 for row in mid)

    def test_report_renders(self, result):
        rows, config = result
        assert "floor" in relative_change_floor.format_report(rows, config)
