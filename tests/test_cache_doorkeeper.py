"""Doorkeeper behavior: one-shot membership, determinism, clearing."""

from __future__ import annotations

import pytest

from repro.cache import Doorkeeper
from repro.hashing.encode import encode_key


class TestDoorkeeper:
    def test_first_add_absorbs_second_does_not(self):
        door = Doorkeeper(1024, seed=3)
        assert door.add("query") is True
        assert door.add("query") is False
        assert door.contains("query")
        assert not door.contains("other")

    def test_add_key_matches_add_via_encode_key(self):
        by_item = Doorkeeper(512, seed=9)
        by_key = Doorkeeper(512, seed=9)
        for item in ["alpha", 42, ("flow", 7)]:
            assert by_item.add(item) == by_key.add_key(encode_key(item))
        assert by_item.ones == by_key.ones
        assert by_key.contains_key(encode_key("alpha"))

    def test_clear_forgets_everything(self):
        door = Doorkeeper(256, seed=1)
        for item in range(50):
            door.add(item)
        assert door.ones > 0
        door.clear()
        assert door.ones == 0
        assert door.fill_ratio() == 0.0
        assert not any(door.contains(item) for item in range(50))
        # After a clear, keys are first occurrences again.
        assert door.add(0) is True

    def test_equal_seeds_agree_bit_for_bit(self):
        a = Doorkeeper(2048, probes=3, seed=7)
        b = Doorkeeper(2048, probes=3, seed=7)
        for item in range(200):
            assert a.add(item) == b.add(item)
        assert a.ones == b.ones
        assert all(a.contains(item) == b.contains(item)
                   for item in range(400))

    def test_different_seeds_probe_differently(self):
        a = Doorkeeper(512, seed=1)
        b = Doorkeeper(512, seed=2)
        for item in range(100):
            a.add(item)
            b.add(item)
        # No false negatives under either seed ...
        assert all(a.contains(item) and b.contains(item)
                   for item in range(100))
        # ... but the *false positive* sets depend on the probe salts,
        # so seed-dependent salts make them diverge.
        fp_a = {item for item in range(100, 3000) if a.contains(item)}
        fp_b = {item for item in range(100, 3000) if b.contains(item)}
        assert fp_a != fp_b

    def test_ones_counts_distinct_bits_not_keys(self):
        door = Doorkeeper(64, probes=2, seed=5)
        door.add("x")
        first = door.ones
        assert 1 <= first <= 2  # probe positions may collide
        door.add("x")
        assert door.ones == first

    def test_fill_ratio_rises_with_population(self):
        door = Doorkeeper(128, seed=11)
        assert door.fill_ratio() == 0.0
        for item in range(100):
            door.add(item)
        assert 0.0 < door.fill_ratio() <= 1.0

    def test_properties_report_construction_arguments(self):
        door = Doorkeeper(512, probes=4, seed=13)
        assert door.num_bits == 512
        assert door.probes == 4
        assert door.seed == 13
        assert "512" in repr(door)

    @pytest.mark.parametrize("bits,probes", [(4, 2), (0, 1), (64, 0)])
    def test_bad_geometry_is_rejected(self, bits, probes):
        with pytest.raises(ValueError):
            Doorkeeper(bits, probes=probes)
