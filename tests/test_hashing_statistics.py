"""Rigorous statistical tests of the hash families (chi-squared / binomial
via scipy).

The sketch guarantees rest on the hash families behaving like their
idealized models: uniform bucket marginals, balanced signs, vanishing
pair correlations.  These tests quantify each with a proper hypothesis
test at fixed seeds (deterministic, so no flakiness) and generous
significance levels — a corrupted family constant or biased reduction
shows up as an astronomically small p-value, not a borderline one.
"""

import numpy as np
from scipy import stats

from repro.hashing.bucket import BucketHashFamily
from repro.hashing.mersenne import KWiseFamily
from repro.hashing.multiply_shift import MultiplyShiftFamily
from repro.hashing.sign import SignHashFamily
from repro.hashing.tabulation import TabulationFamily
from repro.hashing.vectorized import VectorizedRowHashes, encode_keys

ALPHA = 1e-6  # reject only on overwhelming evidence; tests are seeded


def chi2_uniform_pvalue(values, bins):
    counts = np.bincount(values, minlength=bins)
    return stats.chisquare(counts).pvalue


class TestBucketUniformity:
    KEYS = list(range(40_000))

    def bucket_values(self, family, bins):
        h = BucketHashFamily(family, bins).draw(1)[0]
        return [h(key) for key in self.KEYS]

    def test_polynomial_buckets_uniform(self):
        values = self.bucket_values(KWiseFamily(seed=101), 32)
        assert chi2_uniform_pvalue(values, 32) > ALPHA

    def test_tabulation_buckets_uniform(self):
        values = self.bucket_values(TabulationFamily(seed=102), 32)
        assert chi2_uniform_pvalue(values, 32) > ALPHA

    def test_multiply_shift_buckets_uniform(self):
        h = MultiplyShiftFamily(out_bits=5, seed=103).draw(1)[0]
        values = [h(key) for key in self.KEYS]
        assert chi2_uniform_pvalue(values, 32) > ALPHA

    def test_vectorized_buckets_uniform(self):
        rows = VectorizedRowHashes(1, 32, seed=104)
        values = rows.buckets(encode_keys(self.KEYS), 0)
        assert chi2_uniform_pvalue(values, 32) > ALPHA

    def test_string_keys_uniform(self):
        """The canonical encoder + bucket hash keeps string keys uniform."""
        from repro.hashing.encode import encode_key

        h = BucketHashFamily(KWiseFamily(seed=105), 32).draw(1)[0]
        values = [h(encode_key(f"query-{i}")) for i in range(40_000)]
        assert chi2_uniform_pvalue(values, 32) > ALPHA


class TestSignBalance:
    def test_sign_marginal_fair(self):
        s = SignHashFamily(KWiseFamily(seed=106)).draw(1)[0]
        positives = sum(1 for key in range(40_000) if s(key) == 1)
        p = stats.binomtest(positives, 40_000, 0.5).pvalue
        assert p > ALPHA

    def test_vectorized_sign_marginal_fair(self):
        rows = VectorizedRowHashes(1, 8, seed=107)
        signs = rows.signs(encode_keys(list(range(40_000))), 0)
        positives = int((signs == 1).sum())
        assert stats.binomtest(positives, 40_000, 0.5).pvalue > ALPHA

    def test_pairwise_products_centered(self):
        """E[s(x)s(y)] = 0 over the family for fixed x != y: the product
        over many drawn functions behaves like fair +-1 coins."""
        functions = SignHashFamily(KWiseFamily(seed=108)).draw(8_000)
        agreements = sum(1 for s in functions if s(123) == s(456))
        assert stats.binomtest(agreements, 8_000, 0.5).pvalue > ALPHA


class TestJointBucketIndependence:
    def test_two_point_joint_uniform(self):
        """(h(x), h(y)) over drawn 2-wise functions is uniform on the
        b x b grid — the literal pairwise-independence property."""
        bins = 4
        family = BucketHashFamily(KWiseFamily(seed=109), bins)
        joint = np.zeros((bins, bins), dtype=np.int64)
        for h in family.draw(16_000):
            joint[h(777), h(888)] += 1
        p = stats.chisquare(joint.reshape(-1)).pvalue
        assert p > ALPHA

    def test_bucket_sign_independence(self):
        """The bucket and sign hashes of the default sketch construction
        are derived from disjoint salted streams: jointly uniform."""
        bins = 4
        buckets = BucketHashFamily(
            KWiseFamily(seed=110, salt="buckets"), bins
        ).draw(12_000)
        signs = SignHashFamily(KWiseFamily(seed=110, salt="signs")).draw(
            12_000
        )
        joint = np.zeros((bins, 2), dtype=np.int64)
        for h, s in zip(buckets, signs, strict=True):
            joint[h(999), (s(999) + 1) // 2] += 1
        assert stats.chisquare(joint.reshape(-1)).pvalue > ALPHA


class TestCollisionRates:
    def test_pairwise_collision_probability_near_1_over_b(self):
        """P[h(x) = h(y)] ≈ 1/b over the family."""
        bins = 16
        family = BucketHashFamily(KWiseFamily(seed=111), bins)
        collisions = sum(
            1 for h in family.draw(32_000) if h(31337) == h(271828)
        )
        p = stats.binomtest(collisions, 32_000, 1 / bins).pvalue
        assert p > ALPHA

    def test_distinct_keys_spread_across_rows(self):
        """Within one function, empirical collision rate over random key
        pairs matches 1/b."""
        bins = 64
        h = BucketHashFamily(KWiseFamily(seed=112), bins).draw(1)[0]
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, 2**62, size=(20_000, 2))
        collisions = sum(
            1 for x, y in pairs if x != y and h(int(x)) == h(int(y))
        )
        assert stats.binomtest(collisions, 20_000, 1 / bins).pvalue > ALPHA
