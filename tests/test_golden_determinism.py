"""Golden-value regression tests for cross-version compatibility.

Serialized sketches are only mergeable across machines and library
versions if the seed→hash-function derivation never changes.  These
tests pin exact values produced by fixed seeds; if any of them fails
after a refactor, the change silently breaks every persisted sketch in
the wild and must either be reverted or shipped as a new major version
with a serialization-format note.
"""

from repro.core.countsketch import CountSketch
from repro.core.vectorized import VectorizedCountSketch
from repro.hashing.encode import encode_key
from repro.hashing.mersenne import KWiseFamily
from repro.streams.zipf import ZipfStreamGenerator


class TestEncoderGolden:
    def test_string_encoding_pinned(self):
        assert encode_key("hello") == 9022087748821825191

    def test_tuple_encoding_pinned(self):
        assert encode_key((1, "a")) == 12276780161046996591

    def test_float_encoding_pinned(self):
        assert encode_key(3.5) == 7145471386121535523


class TestPolynomialFamilyGolden:
    def test_seed_42_first_function_pinned(self):
        h = KWiseFamily(independence=2, seed=42).draw(1)[0]
        assert h.coefficients == (150352126732598071, 469501948742199969)
        assert h(12345) == 1568427195178316513


class TestSketchStateGolden:
    def test_dense_counters_pinned(self):
        sketch = CountSketch(2, 4, seed=7)
        sketch.extend(["a", "b", "a"])
        assert sketch.counters.tolist() == [[-3, 0, 0, 0], [-1, 2, 0, 0]]

    def test_vectorized_counters_pinned(self):
        sketch = VectorizedCountSketch(2, 4, seed=7)
        sketch.update_batch(["a", "b", "a"])
        assert sketch.counters.tolist() == [[-1, 0, 0, -2], [0, -1, 0, 0]]

    def test_state_dict_roundtrip_preserves_golden_state(self):
        sketch = CountSketch(2, 4, seed=7)
        sketch.extend(["a", "b", "a"])
        revived = CountSketch.from_state_dict(sketch.state_dict())
        assert revived.counters.tolist() == [[-3, 0, 0, 0], [-1, 2, 0, 0]]


class TestWorkloadGolden:
    def test_zipf_stream_prefix_pinned(self):
        stream = ZipfStreamGenerator(m=10, z=1.0, seed=3).generate(8)
        assert list(stream) == [9, 1, 2, 3, 1, 9, 2, 6]


class TestCrossInstanceAgreement:
    def test_sketches_from_equal_seeds_interoperate(self):
        """The property the golden values protect: two independently
        constructed sketches with equal parameters merge meaningfully."""
        a = CountSketch(3, 32, seed=99)
        b = CountSketch(3, 32, seed=99)
        a.update("x", 5)
        b.update("x", 7)
        merged = a + b
        assert merged.estimate("x") == 12.0
