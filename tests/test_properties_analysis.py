"""Property-based tests for the analysis layer (§4.1 closed forms, the
space model, and the workload fitter)."""

from collections import Counter

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.fit import fit_zipf_parameter
from repro.analysis.space import SpaceModel
from repro.analysis.zipf_math import (
    count_sketch_space_order,
    count_sketch_width_order,
    harmonic_number,
    kps_space_order,
    sampling_distinct_order,
    sampling_expected_distinct,
    table1_orders,
    tail_second_moment_order,
    zipf_tail_second_moment,
)

MS = st.integers(min_value=50, max_value=50_000)
KS = st.integers(min_value=1, max_value=40)
ZS = st.floats(min_value=0.0, max_value=2.5)


class TestClosedFormProperties:
    @settings(max_examples=60, deadline=None)
    @given(MS, ZS)
    def test_harmonic_monotone_in_m(self, m, z):
        assert harmonic_number(m + 10, z) >= harmonic_number(m, z)

    @settings(max_examples=60, deadline=None)
    @given(MS, ZS)
    def test_harmonic_decreasing_in_z(self, m, z):
        assert harmonic_number(m, z) >= harmonic_number(m, z + 0.2)

    @settings(max_examples=60, deadline=None)
    @given(MS, KS, ZS)
    def test_exact_tail_monotone_in_k(self, m, k, z):
        assume(k + 1 <= m)
        assert zipf_tail_second_moment(m, k, z) >= (
            zipf_tail_second_moment(m, k + 1, z)
        )

    @settings(max_examples=60, deadline=None)
    @given(MS, KS, ZS)
    def test_exact_tail_bounded_by_full_moment(self, m, k, z):
        assume(k <= m)
        assert zipf_tail_second_moment(m, k, z) <= (
            zipf_tail_second_moment(m, 0, z)
        )

    @settings(max_examples=60, deadline=None)
    @given(MS, KS, ZS)
    def test_orders_positive(self, m, k, z):
        assume(k < m)
        assert tail_second_moment_order(m, k, z) > 0
        assert count_sketch_width_order(m, k, z) > 0
        assert kps_space_order(m, k, z) > 0
        assert sampling_distinct_order(m, k, z) > 0

    @settings(max_examples=40, deadline=None)
    @given(MS, KS)
    def test_count_sketch_width_constant_in_m_above_half(self, m, k):
        assume(k < m)
        assert count_sketch_width_order(m, k, 0.8) == (
            count_sketch_width_order(m * 2, k, 0.8)
        )

    @settings(max_examples=40, deadline=None)
    @given(KS)
    def test_width_order_grows_with_m_below_half(self, k):
        assert count_sketch_width_order(20_000, k, 0.3) > (
            count_sketch_width_order(2_000, k, 0.3)
        )

    @settings(max_examples=40, deadline=None)
    @given(MS, KS)
    def test_kps_between_k_and_m_regimes(self, m, k):
        assume(k < m)
        # z=0: needs ~m counters; z large: ~k^z.
        assert kps_space_order(m, k, 0.0) == pytest.approx(m)

    @settings(max_examples=30, deadline=None)
    @given(MS, KS, st.integers(min_value=10_000, max_value=10**6))
    def test_expected_distinct_bounded_by_m(self, m, k, n):
        assume(k < m)
        expected = sampling_expected_distinct(m, k, 1.0, n)
        assert 0 <= expected <= m

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=20_000, max_value=50_000),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=10_000, max_value=10**6),
    )
    def test_table1_rows_well_formed(self, m, k, n):
        # Cross-regime comparisons of the order formulas are asymptotic
        # statements: they need m >> k (each regime's hidden constant
        # differs), so the strategies generate only that domain
        # (m >= 2000·k by construction).
        rows = table1_orders(m, k, n)
        assert [row.z for row in rows] == [0.3, 0.5, 0.75, 1.0, 1.5]
        # The COUNT SKETCH column is nonincreasing in z (more skew, less
        # space) — the qualitative content of the column.
        sketch = [row.count_sketch for row in rows]
        assert all(a >= b - 1e-9 for a, b in zip(sketch, sketch[1:], strict=False))

    @settings(max_examples=30, deadline=None)
    @given(MS, KS, st.integers(min_value=100, max_value=10**6))
    def test_space_order_scales_log_n(self, m, k, n):
        assume(k < m)
        import math

        ratio = count_sketch_space_order(m, k, 1.0, n * 10) / (
            count_sketch_space_order(m, k, 1.0, n)
        )
        assert ratio == pytest.approx(
            math.log(n * 10) / math.log(n), rel=1e-9
        )


class TestSpaceModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=4096),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**5),
    )
    def test_total_bits_additive(self, counter_bits, object_bits, counters,
                                 objects):
        model = SpaceModel(counter_bits, object_bits)
        assert model.total_bits(counters, objects) == (
            model.total_bits(counters, 0) + model.total_bits(0, objects)
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=10**9),
           st.integers(min_value=1, max_value=4096))
    def test_for_stream_counter_bits_cover_n(self, n, object_bits):
        model = SpaceModel.for_stream(n, object_bits)
        assert 2 ** model.counter_bits >= n + 1


class TestFitProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.2, max_value=2.0),
           st.integers(min_value=50, max_value=400))
    def test_fit_recovers_planted_exponent(self, z, ranks):
        counts = Counter(
            {f"i{r}": max(1, round(10_000 / r**z)) for r in range(1, ranks)}
        )
        fitted = fit_zipf_parameter(counts)
        # Integer rounding perturbs the deep tail; the head fit stays close.
        assert abs(fitted - z) < 0.3

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=3,
                    max_size=100))
    def test_fit_nonnegative_and_finite(self, values):
        counts = Counter({f"i{i}": v for i, v in enumerate(values)})
        fitted = fit_zipf_parameter(counts)
        assert fitted >= 0.0
        assert fitted == fitted  # not NaN
