"""Tests for lossy counting and sticky sampling (Manku–Motwani)."""

import random
from collections import Counter

import pytest

from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.sticky_sampling import StickySampling


def skewed_stream(seed, n=5000, heavy=5):
    rng = random.Random(seed)
    stream = []
    for item in range(heavy):
        stream.extend([f"heavy-{item}"] * (n // (10 * (item + 1))))
    while len(stream) < n:
        stream.append(rng.randrange(50_000))
    rng.shuffle(stream)
    return stream[:n]


class TestLossyCounting:
    def test_validation(self):
        with pytest.raises(ValueError):
            LossyCounting(0.0)
        with pytest.raises(ValueError):
            LossyCounting(1.0)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            LossyCounting(0.1).update("a", 0)

    def test_exact_within_first_bucket(self):
        lossy = LossyCounting(0.01)  # bucket width 100
        for _ in range(50):
            lossy.update("x")
        assert lossy.estimate("x") == 50.0

    def test_undercount_bounded_by_epsilon_n(self):
        epsilon = 0.005
        for seed in (0, 1):
            stream = skewed_stream(seed)
            counts = Counter(stream)
            lossy = LossyCounting(epsilon)
            for item in stream:
                lossy.update(item)
            for item, count in counts.items():
                estimate = lossy.estimate(item)
                assert estimate <= count
                assert estimate >= count - epsilon * len(stream)

    def test_no_false_negatives_for_iceberg_query(self):
        epsilon = 0.005
        support = 0.02
        stream = skewed_stream(2)
        counts = Counter(stream)
        lossy = LossyCounting(epsilon)
        for item in stream:
            lossy.update(item)
        answered = {item for item, __ in lossy.frequent_items(support)}
        for item, count in counts.items():
            if count >= support * len(stream):
                assert item in answered

    def test_no_wild_false_positives(self):
        epsilon = 0.005
        support = 0.02
        stream = skewed_stream(3)
        counts = Counter(stream)
        lossy = LossyCounting(epsilon)
        for item in stream:
            lossy.update(item)
        for item, __ in lossy.frequent_items(support):
            assert counts[item] >= (support - epsilon) * len(stream)

    def test_space_stays_bounded(self):
        lossy = LossyCounting(0.01)
        rng = random.Random(7)
        for _ in range(20_000):
            lossy.update(rng.randrange(100_000))
        # Theory: at most (1/eps) * log(eps * n) = 100 * log(200) entries.
        import math

        assert lossy.items_stored() <= 100 * math.log(0.01 * 20_000) + 100

    def test_pruning_happens(self):
        lossy = LossyCounting(0.1)  # bucket width 10
        for i in range(100):
            lossy.update(i)  # all singletons: pruned at each boundary
        assert lossy.items_stored() <= 10

    def test_support_validation(self):
        lossy = LossyCounting(0.1)
        with pytest.raises(ValueError):
            lossy.frequent_items(0.0)

    def test_top_and_contains(self):
        lossy = LossyCounting(0.01)
        lossy.update("a", 30)
        lossy.update("b", 10)
        assert [item for item, __ in lossy.top(2)] == ["a", "b"]
        assert "a" in lossy

    def test_counters_used_two_per_entry(self):
        lossy = LossyCounting(0.01)
        lossy.update("a")
        lossy.update("b")
        assert lossy.counters_used() == 4


class TestStickySampling:
    def test_validation(self):
        with pytest.raises(ValueError):
            StickySampling(0.0)
        with pytest.raises(ValueError):
            StickySampling(0.1, epsilon=0.2)
        with pytest.raises(ValueError):
            StickySampling(0.1, delta=0.0)

    def test_default_epsilon(self):
        sticky = StickySampling(0.1)
        assert sticky.epsilon == pytest.approx(0.01)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            StickySampling(0.1).update("a", 0)

    def test_initial_rate_is_one(self):
        sticky = StickySampling(0.1, seed=0)
        assert sticky.rate == 1
        sticky.update("x")
        assert sticky.estimate("x") == 1.0

    def test_rate_halves_as_stream_grows(self):
        sticky = StickySampling(0.2, epsilon=0.1, delta=0.1, seed=1)
        for i in range(5_000):
            sticky.update(i)
        assert sticky.rate > 1

    def test_sticky_counting_is_exact_after_entry(self):
        sticky = StickySampling(0.1, seed=2)
        for _ in range(30):
            sticky.update("x")  # rate 1 early on: entered at first sight
        assert sticky.estimate("x") == 30.0

    def test_frequent_items_no_false_negatives(self):
        support = 0.05
        failures = 0
        for seed in range(5):
            stream = skewed_stream(seed, n=4000)
            counts = Counter(stream)
            sticky = StickySampling(support, epsilon=0.01, delta=0.05,
                                    seed=seed)
            for item in stream:
                sticky.update(item)
            answered = {item for item, __ in sticky.frequent_items()}
            for item, count in counts.items():
                if count >= support * len(stream) and item not in answered:
                    failures += 1
        # Probabilistic guarantee: tolerate at most one miss across seeds.
        assert failures <= 1

    def test_undercount_bounded_whp(self):
        stream = skewed_stream(9, n=4000)
        counts = Counter(stream)
        sticky = StickySampling(0.05, epsilon=0.01, delta=0.05, seed=3)
        for item in stream:
            sticky.update(item)
        for item, count in counts.items():
            estimate = sticky.estimate(item)
            assert estimate <= count
            if count >= 0.05 * len(stream):
                assert estimate >= count - 0.02 * len(stream)

    def test_space_much_smaller_than_distinct(self):
        sticky = StickySampling(0.05, epsilon=0.01, delta=0.05, seed=4)
        rng = random.Random(11)
        for _ in range(30_000):
            sticky.update(rng.randrange(1_000_000))
        assert sticky.items_stored() < 6_000

    def test_top_and_contains(self):
        sticky = StickySampling(0.1, seed=0)
        sticky.update("a", 20)
        sticky.update("b", 5)
        assert [item for item, __ in sticky.top(2)] == ["a", "b"]
        assert "a" in sticky
        assert sticky.counters_used() == sticky.items_stored() == 2
