"""Tests for repro.baselines.kps — the KPS / Misra–Gries guarantee."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.kps import KPSFrequent, counters_for_candidate_top


class TestCountersForCandidateTop:
    def test_formula(self):
        assert counters_for_candidate_top(1000, 100) == 10

    def test_rounds_up(self):
        assert counters_for_candidate_top(1000, 300) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            counters_for_candidate_top(0, 10)
        with pytest.raises(ValueError):
            counters_for_candidate_top(10, 0)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            KPSFrequent(0)

    def test_tracks_when_space_free(self):
        summary = KPSFrequent(3)
        for item in ["a", "b", "c"]:
            summary.update(item)
        assert summary.counters_used() == 3
        assert summary.estimate("a") == 1.0

    def test_decrement_on_overflow(self):
        summary = KPSFrequent(2)
        summary.update("a")
        summary.update("b")
        summary.update("c")  # decrements everyone; all go to zero
        assert summary.counters_used() == 0

    def test_majority_element_survives(self):
        summary = KPSFrequent(1)
        stream = ["x", "y", "x", "z", "x", "x", "w", "x"]
        for item in stream:
            summary.update(item)
        assert "x" in summary

    def test_weighted_update(self):
        summary = KPSFrequent(2)
        summary.update("a", 10)
        summary.update("b", 1)
        summary.update("c", 4)
        # c's weight 4 absorbs min(4, min(10,1)=1): b dies, c keeps 3.
        assert summary.estimate("b") == 0.0
        assert summary.estimate("c") == 3.0
        assert summary.estimate("a") == 9.0

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            KPSFrequent(2).update("a", 0)

    def test_capacity_never_exceeded(self):
        summary = KPSFrequent(5)
        rng = random.Random(1)
        for _ in range(2000):
            summary.update(rng.randrange(100))
            assert summary.counters_used() <= 5

    def test_top_order(self):
        summary = KPSFrequent(5)
        for item, count in [("a", 30), ("b", 20), ("c", 10)]:
            summary.update(item, count)
        assert [item for item, __ in summary.top(3)] == ["a", "b", "c"]


class TestGuarantees:
    """The two classical Misra–Gries guarantees, on random streams."""

    def make_stream(self, seed):
        rng = random.Random(seed)
        stream = []
        # Skewed stream: a few heavy items plus noise.
        for item in range(5):
            stream.extend([f"heavy-{item}"] * rng.randrange(100, 300))
        stream.extend(rng.randrange(10_000) for _ in range(2000))
        rng.shuffle(stream)
        return stream

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("capacity", [5, 20, 60])
    def test_frequent_items_always_tracked(self, seed, capacity):
        """Every item with count > n/(c+1) must be in the output."""
        stream = self.make_stream(seed)
        counts = Counter(stream)
        summary = KPSFrequent(capacity)
        for item in stream:
            summary.update(item)
        threshold = len(stream) / (capacity + 1)
        for item, count in counts.items():
            if count > threshold:
                assert item in summary

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_undercount_bounded(self, seed):
        """true - n/(c+1) <= tracked <= true for every tracked item."""
        capacity = 20
        stream = self.make_stream(seed)
        counts = Counter(stream)
        summary = KPSFrequent(capacity)
        for item in stream:
            summary.update(item)
        bound = len(stream) / (capacity + 1)
        for item in summary.candidates():
            tracked = summary.estimate(item)
            assert tracked <= counts[item]
            assert tracked >= counts[item] - bound

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                 max_size=300),
        st.integers(min_value=1, max_value=10),
    )
    def test_guarantees_property(self, items, capacity):
        counts = Counter(items)
        summary = KPSFrequent(capacity)
        for item in items:
            summary.update(item)
        bound = len(items) / (capacity + 1)
        for item, count in counts.items():
            tracked = summary.estimate(item)
            assert tracked <= count
            assert tracked >= count - bound
            if count > bound:
                assert item in summary

    def test_weighted_matches_unweighted(self):
        """Feeding pre-aggregated counts gives the same guarantees; the
        final states need not be identical (order differs), but both must
        satisfy the undercount bound."""
        stream = ["a"] * 6 + ["b"] * 4 + ["c"] * 2 + ["d"]
        counts = Counter(stream)
        weighted = KPSFrequent(3)
        for item, count in counts.items():
            weighted.update(item, count)
        bound = len(stream) / 4
        for item, count in counts.items():
            assert weighted.estimate(item) >= count - bound
            assert weighted.estimate(item) <= count
