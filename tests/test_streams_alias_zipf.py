"""Tests for the alias sampler and the Zipf stream generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.alias import AliasSampler
from repro.streams.zipf import ZipfStreamGenerator, zipf_weights


class TestAliasSampler:
    def test_validation(self):
        with pytest.raises(ValueError):
            AliasSampler([])
        with pytest.raises(ValueError):
            AliasSampler([-1.0, 2.0])
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])
        with pytest.raises(ValueError):
            AliasSampler([float("nan")])

    def test_single_outcome(self):
        sampler = AliasSampler([5.0], seed=0)
        assert sampler.sample() == 0
        assert all(sampler.sample_many(100) == 0)

    def test_zero_weight_never_sampled(self):
        sampler = AliasSampler([1.0, 0.0, 1.0], seed=1)
        draws = sampler.sample_many(5000)
        assert 1 not in set(draws.tolist())

    def test_sample_many_validation(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0]).sample_many(-1)

    def test_sample_many_zero(self):
        assert len(AliasSampler([1.0]).sample_many(0)) == 0

    def test_probabilities_normalized(self):
        sampler = AliasSampler([1.0, 3.0], seed=0)
        assert sampler.probabilities == pytest.approx([0.25, 0.75])

    def test_empirical_distribution_matches(self):
        weights = [4.0, 2.0, 1.0, 1.0]
        sampler = AliasSampler(weights, seed=2)
        draws = sampler.sample_many(80_000)
        counts = np.bincount(draws, minlength=4)
        total = sum(weights)
        for index, weight in enumerate(weights):
            expected = 80_000 * weight / total
            assert abs(counts[index] - expected) < 5 * expected**0.5

    def test_deterministic_given_seed(self):
        a = AliasSampler([1, 2, 3], seed=9).sample_many(100)
        b = AliasSampler([1, 2, 3], seed=9).sample_many(100)
        assert np.array_equal(a, b)

    def test_sample_and_sample_many_same_range(self):
        sampler = AliasSampler([1, 2, 3], seed=3)
        assert 0 <= sampler.sample() < 3
        assert set(sampler.sample_many(1000).tolist()) <= {0, 1, 2}

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    def test_table_construction_property(self, weights):
        """The alias table must exactly represent the input distribution:
        total mass assigned to each outcome equals its probability."""
        sampler = AliasSampler(weights, seed=0)
        m = len(weights)
        mass = np.zeros(m)
        for slot in range(m):
            mass[slot] += sampler._probability[slot] / m
            mass[sampler._alias[slot]] += (1 - sampler._probability[slot]) / m
        expected = np.asarray(weights) / sum(weights)
        assert np.allclose(mass, expected, atol=1e-9)


class TestZipfWeights:
    def test_z_zero_is_uniform(self):
        assert np.allclose(zipf_weights(5, 0.0), np.ones(5))

    def test_z_one_is_harmonic(self):
        weights = zipf_weights(4, 1.0)
        assert weights == pytest.approx([1.0, 0.5, 1 / 3, 0.25])

    def test_monotone_decreasing(self):
        weights = zipf_weights(100, 0.7)
        assert all(weights[i] >= weights[i + 1] for i in range(99))

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestZipfStreamGenerator:
    def test_items_in_range(self):
        stream = ZipfStreamGenerator(m=50, z=1.0, seed=0).generate(1000)
        assert all(1 <= item <= 50 for item in stream)

    def test_length(self):
        stream = ZipfStreamGenerator(m=50, z=1.0, seed=0).generate(777)
        assert len(stream) == 777

    def test_deterministic(self):
        a = ZipfStreamGenerator(m=50, z=1.0, seed=4).generate(500)
        b = ZipfStreamGenerator(m=50, z=1.0, seed=4).generate(500)
        assert list(a) == list(b)

    def test_seed_changes_stream(self):
        a = ZipfStreamGenerator(m=50, z=1.0, seed=4).generate(500)
        b = ZipfStreamGenerator(m=50, z=1.0, seed=5).generate(500)
        assert list(a) != list(b)

    def test_rank_order_of_frequencies(self):
        """Rank 1 should empirically dominate mid ranks at high skew."""
        stream = ZipfStreamGenerator(m=100, z=1.2, seed=1).generate(20_000)
        counts = stream.counts()
        assert counts[1] > counts[10] > counts[50]

    def test_expected_counts_match_empirical(self):
        generator = ZipfStreamGenerator(m=20, z=1.0, seed=2)
        n = 50_000
        stream = generator.generate(n)
        counts = stream.counts()
        expected = generator.expected_counts(n)
        for rank in (1, 2, 5, 10):
            observed = counts[rank]
            assert abs(observed - expected[rank - 1]) < 6 * expected[rank - 1] ** 0.5 + 5

    def test_label_template(self):
        generator = ZipfStreamGenerator(
            m=10, z=1.0, seed=0, label_template="query-{rank}"
        )
        stream = generator.generate(100)
        assert all(item.startswith("query-") for item in stream)
        assert generator.item_for_rank(3) == "query-3"

    def test_item_for_rank_validation(self):
        generator = ZipfStreamGenerator(m=10, z=1.0)
        with pytest.raises(ValueError):
            generator.item_for_rank(0)
        with pytest.raises(ValueError):
            generator.item_for_rank(11)

    def test_metadata(self):
        stream = ZipfStreamGenerator(m=10, z=0.8, seed=3).generate(10)
        assert stream.params["z"] == 0.8
        assert stream.params["m"] == 10
        assert "zipf" in stream.name

    def test_expected_probabilities_sum_to_one(self):
        generator = ZipfStreamGenerator(m=100, z=0.5)
        assert generator.expected_probabilities().sum() == pytest.approx(1.0)
