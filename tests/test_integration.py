"""End-to-end integration tests across modules.

Each test exercises a realistic pipeline the paper describes: workload
generation → one or two-pass algorithms → ground-truth scoring, including
the cross-algorithm comparisons and the distributed-merge deployment.
"""

import pytest

from repro import (
    CandidateTopTracker,
    CountMinSketch,
    CountSketch,
    ExactCounter,
    KPSFrequent,
    MaxChangeFinder,
    SamplingSummary,
    SpaceSaving,
    TopKTracker,
    find_max_change,
)
from repro.analysis import StreamStatistics, recall_at_k
from repro.analysis.metrics import approxtop_weak_ok, candidatetop_ok
from repro.core.params import suggest_depth, width_for_approxtop
from repro.core.sketch_base import FrequencyEstimator, StreamSummary, consume
from repro.streams import (
    FlowStreamGenerator,
    QueryStreamGenerator,
    ZipfStreamGenerator,
    make_drift_pair,
)
from repro.streams.generators import adversarial_boundary_stream


class TestProtocolConformance:
    """Every summary satisfies the shared protocols the harness uses."""

    SUMMARIES = [
        lambda: TopKTracker(5, depth=3, width=64, seed=0),
        lambda: CandidateTopTracker(5, depth=3, width=64, seed=0),
        lambda: KPSFrequent(20),
        lambda: SpaceSaving(20),
        lambda: SamplingSummary(0.5, seed=0),
        lambda: ExactCounter(),
    ]

    @pytest.mark.parametrize("factory", SUMMARIES)
    def test_stream_summary_protocol(self, factory):
        summary = factory()
        assert isinstance(summary, StreamSummary)
        consume(summary, ["a", "b", "a"])
        top = summary.top(2)
        assert len(top) <= 2
        assert summary.counters_used() >= 0
        assert summary.items_stored() >= 0

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: CountSketch(3, 64, seed=0),
            lambda: CountMinSketch(3, 64, seed=0),
            lambda: ExactCounter(),
            lambda: TopKTracker(5, depth=3, width=64, seed=0),
            lambda: __import__(
                "repro.core.vectorized", fromlist=["VectorizedCountSketch"]
            ).VectorizedCountSketch(3, 64, seed=0),
            lambda: __import__(
                "repro.core.sparse", fromlist=["SparseCountSketch"]
            ).SparseCountSketch(3, 64, seed=0),
            lambda: __import__(
                "repro.core.windowed", fromlist=["JumpingWindowSketch"]
            ).JumpingWindowSketch(100, buckets=2, depth=3, width=64),
        ],
    )
    def test_frequency_estimator_protocol(self, factory):
        estimator = factory()
        assert isinstance(estimator, FrequencyEstimator)
        estimator.update("x", 3)
        assert estimator.estimate("x") >= 0


class TestPaperPipelineEndToEnd:
    """The full Theorem 1 pipeline: dimension from the analysis, run, and
    check the problem-definition acceptance criteria."""

    def test_approxtop_from_theorem1_parameters(self):
        stream = ZipfStreamGenerator(m=2_000, z=1.0, seed=51).generate(30_000)
        stats = StreamStatistics(counts=stream.counts())
        k, epsilon = 10, 0.5
        width = width_for_approxtop(
            k, epsilon, stats.nk(k), stats.tail_second_moment(k)
        )
        depth = suggest_depth(stats.n, delta=0.05, constant=0.5)
        tracker = TopKTracker(k, depth=depth, width=width, seed=1)
        for item in stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert approxtop_weak_ok(reported, stats, k, epsilon)

    def test_candidatetop_two_pass(self):
        stream = ZipfStreamGenerator(m=2_000, z=0.9, seed=52).generate(30_000)
        stats = StreamStatistics(counts=stream.counts())
        tracker = CandidateTopTracker(10, l=25, depth=5, width=512, seed=2)
        for item in stream:
            tracker.update(item)
        assert candidatetop_ok(
            [item for item, __ in tracker.candidates()], stats, 10
        )
        refined = tracker.refine(stream)
        assert refined == stats.top_k(10)

    def test_maxchange_two_streams(self):
        pair = make_drift_pair(m=2_000, n=30_000, boost=10.0, seed=53)
        reports = find_max_change(
            pair.before, pair.after, k=8, l=32, depth=5, width=512, seed=3
        )
        truth = {item for item, __ in pair.top_changes(8)}
        assert recall_at_k([r.item for r in reports], truth) >= 0.75

    def test_adversarial_boundary_needs_relaxation(self):
        """On the §1 hard instance, the tracker still satisfies APPROXTOP
        even though exact CANDIDATETOP is information-theoretically hard:
        every reported item is within (1-eps) of n_k because *all*
        near-boundary items are."""
        stream = adversarial_boundary_stream(
            k=5, l=10, scale=200, padding_items=500, seed=4
        )
        stats = StreamStatistics(counts=stream.counts())
        tracker = TopKTracker(5, depth=5, width=256, seed=5)
        for item in stream:
            tracker.update(item)
        reported = [item for item, __ in tracker.top()]
        assert approxtop_weak_ok(reported, stats, k=5, epsilon=0.05)


class TestCrossAlgorithmComparison:
    """All algorithms answer the same query on the same stream; their
    relative error behaviours must match their theory."""

    @pytest.fixture(scope="class")
    def workload(self):
        stream = ZipfStreamGenerator(m=2_000, z=1.1, seed=54).generate(30_000)
        return stream, StreamStatistics(counts=stream.counts())

    def test_all_find_the_top_ten(self, workload):
        stream, stats = workload
        truth = stats.top_k_items(10)
        summaries = {
            "count_sketch": TopKTracker(10, depth=5, width=512, seed=6),
            "kps": KPSFrequent(300),
            "space_saving": SpaceSaving(300),
        }
        for summary in summaries.values():
            consume(summary, stream)
        for name, summary in summaries.items():
            reported = [item for item, __ in summary.top(10)]
            assert recall_at_k(reported, truth) >= 0.9, name
        # SAMPLING promises only containment in the *whole sample* (it
        # solves CANDIDATETOP(S, k, x), §4.1), not a sharp top-10 ranking.
        sampler = SamplingSummary.for_candidate_top(stats.nk(10), 10, seed=6)
        consume(sampler, stream)
        sampled = {item for item, __ in sampler.top(sampler.counters_used())}
        assert recall_at_k(sampled, truth) >= 0.9

    def test_error_directions(self, workload):
        """KPS undercounts, SpaceSaving overcounts, Count Sketch straddles."""
        stream, stats = workload
        kps = KPSFrequent(300)
        space_saving = SpaceSaving(300)
        sketch = CountSketch(5, 512, seed=7)
        consume(kps, stream)
        consume(space_saving, stream)
        consume(sketch, stream)
        for item, count in stats.top_k(10):
            assert kps.estimate(item) <= count
            assert space_saving.estimate(item) >= count
            assert abs(sketch.estimate(item) - count) <= 0.1 * count + 10


class TestDistributedDeployment:
    def test_shard_merge_equals_global(self):
        stream = ZipfStreamGenerator(m=500, z=1.0, seed=55).generate(8_000)
        items = list(stream)
        shards = [items[i::3] for i in range(3)]
        merged = CountSketch(5, 128, seed=8)
        for shard in shards:
            local = CountSketch(5, 128, seed=8)
            local.extend(shard)
            merged.merge(local)
        global_sketch = CountSketch(5, 128, seed=8)
        global_sketch.extend(items)
        # Undo the triple-count of the fresh merged start: merged began
        # empty, so it should equal the global sketch exactly.
        assert merged == global_sketch

    def test_serialized_shard_still_merges(self):
        s1 = CountSketch(3, 64, seed=9)
        s2 = CountSketch(3, 64, seed=9)
        s1.extend(["a", "b"])
        s2.extend(["b", "c"])
        wire = s1.state_dict()
        revived = CountSketch.from_state_dict(wire)
        combined = revived + s2
        assert combined.estimate("b") == 2.0


class TestRealisticWorkloads:
    def test_query_stream_top_queries(self):
        generator = QueryStreamGenerator(vocabulary_size=1_000, z=0.9,
                                         seed=56)
        stream = generator.generate(30_000)
        stats = StreamStatistics(counts=stream.counts())
        tracker = TopKTracker(10, depth=5, width=512, seed=10)
        consume(tracker, stream)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, stats.top_k_items(10)) >= 0.9

    def test_flow_stream_heavy_hitters(self):
        generator = FlowStreamGenerator(num_flows=1_000, z=1.2, seed=57)
        stream = generator.generate(30_000)
        stats = StreamStatistics(counts=stream.counts())
        tracker = TopKTracker(5, depth=5, width=512, seed=11)
        consume(tracker, stream)
        reported = [item for item, __ in tracker.top()]
        assert recall_at_k(reported, stats.top_k_items(5)) >= 0.8

    def test_burst_detection_via_maxchange(self):
        generator = QueryStreamGenerator(vocabulary_size=1_000, z=0.8,
                                         seed=58)
        week1 = generator.generate(20_000)
        from repro.streams.queries import Burst

        burst_query = generator.query_for_rank(300)
        week2 = generator.generate(
            20_000,
            bursts=(Burst(burst_query, 5_000, 15_000, fraction=0.2),),
        )
        finder = MaxChangeFinder(30, depth=5, width=1024, seed=12)
        finder.first_pass(week1, week2)
        finder.second_pass(week1, week2)
        assert any(r.item == burst_query for r in finder.report(5))
