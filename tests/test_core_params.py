"""Tests for repro.core.params — the paper's parameter formulas."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.params import (
    SketchParameters,
    error_bound,
    gamma,
    suggest_depth,
    width_for_approxtop,
)


class TestGamma:
    def test_formula(self):
        # Eq. 5: gamma = sqrt(tail / b)
        assert gamma(400.0, 4) == pytest.approx(10.0)

    def test_zero_tail(self):
        assert gamma(0.0, 8) == 0.0

    def test_width_one(self):
        assert gamma(25.0, 1) == 5.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            gamma(1.0, 0)

    def test_negative_tail(self):
        with pytest.raises(ValueError):
            gamma(-1.0, 4)

    def test_error_bound_is_8_gamma(self):
        assert error_bound(400.0, 4) == pytest.approx(80.0)

    @given(st.floats(min_value=0, max_value=1e12),
           st.integers(min_value=1, max_value=10**6))
    def test_monotone_decreasing_in_b(self, tail, b):
        assert gamma(tail, b) >= gamma(tail, b * 2)


class TestWidthForApproxTop:
    def test_k_dominates_when_tail_small(self):
        # variance term tiny => b = 8k
        assert width_for_approxtop(10, 0.5, nk=1000, tail_second_moment=1) == 80

    def test_variance_dominates(self):
        # 32 * tail / (eps*nk)^2 = 32*10000/(0.5*10)^2 = 12800 > k
        width = width_for_approxtop(
            4, 0.5, nk=10, tail_second_moment=10_000
        )
        assert width == math.ceil(8 * 32 * 10_000 / 25)

    def test_lemma5_constant_256_over_eps_sq(self):
        # b = 256 * tail / (eps*nk)^2 exactly when the variance term wins.
        k, eps, nk, tail = 2, 0.25, 100, 1e6
        expected = math.ceil(256 * tail / (eps * nk) ** 2)
        assert width_for_approxtop(k, eps, nk, tail) == expected

    def test_smaller_epsilon_needs_more_width(self):
        wide = width_for_approxtop(10, 0.1, 100, 1e6)
        narrow = width_for_approxtop(10, 0.5, 100, 1e6)
        assert wide > narrow

    def test_validation(self):
        with pytest.raises(ValueError):
            width_for_approxtop(0, 0.5, 10, 100)
        with pytest.raises(ValueError):
            width_for_approxtop(10, 0.0, 10, 100)
        with pytest.raises(ValueError):
            width_for_approxtop(10, 1.5, 10, 100)
        with pytest.raises(ValueError):
            width_for_approxtop(10, 0.5, 0, 100)
        with pytest.raises(ValueError):
            width_for_approxtop(10, 0.5, 10, -1)

    def test_guarantee_condition_16gamma_leq_eps_nk(self):
        """Lemma 5's proof needs 16*gamma <= eps*nk at the chosen width."""
        k, eps, nk, tail = 10, 0.25, 500, 5e7
        width = width_for_approxtop(k, eps, nk, tail)
        assert 16 * gamma(tail, width) <= eps * nk + 1e-9


class TestSuggestDepth:
    def test_basic_value(self):
        t = suggest_depth(100_000, 0.01)
        assert t >= math.log(100_000 / 0.01) - 1
        assert t % 2 == 1

    def test_always_odd(self):
        for n in (10, 1000, 10**6):
            for delta in (0.5, 0.1, 0.001):
                assert suggest_depth(n, delta) % 2 == 1

    def test_constant_scales(self):
        assert suggest_depth(10**6, 0.01, constant=2.0) >= 2 * suggest_depth(
            10**6, 0.01, constant=1.0
        ) - 2

    def test_minimum_one(self):
        assert suggest_depth(2, 0.9, constant=0.01) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            suggest_depth(0, 0.01)
        with pytest.raises(ValueError):
            suggest_depth(100, 0.0)
        with pytest.raises(ValueError):
            suggest_depth(100, 1.0)
        with pytest.raises(ValueError):
            suggest_depth(100, 0.1, constant=0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_monotone_in_n(self, n):
        assert suggest_depth(n, 0.05) <= suggest_depth(n * 10, 0.05)


class TestSketchParameters:
    def test_counters(self):
        assert SketchParameters(depth=5, width=100).counters() == 500

    def test_for_approxtop_combines_lemmas(self):
        params = SketchParameters.for_approxtop(
            k=10, epsilon=0.5, nk=100, tail_second_moment=1e5,
            n=100_000, delta=0.05,
        )
        assert params.depth == suggest_depth(100_000, 0.05)
        assert params.width == width_for_approxtop(10, 0.5, 100, 1e5)

    def test_frozen(self):
        params = SketchParameters(depth=3, width=4)
        with pytest.raises(AttributeError):
            params.depth = 5
