"""Workload model semantics: validation, determinism, skew, arrivals.

The whole point of ``repro.traffic`` being *seeded* is that a report is
reproducible: given the same :class:`WorkloadSpec`, every client must
replay the identical op sequence and arrival gaps, and the Zipf knobs
must actually skew what they claim to skew.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.traffic import ARRIVAL_MODES, WorkloadModel, WorkloadSpec
from repro.traffic.workload import TrafficOp


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = WorkloadSpec()
        assert spec.arrival == "closed"
        assert spec.table_names() == (
            "tenant0", "tenant1", "tenant2", "tenant3")

    @pytest.mark.parametrize("field,value", [
        ("tenants", 0),
        ("keys_per_tenant", 0),
        ("batch_size", 0),
        ("query_items", 0),
        ("depth", 0),
        ("width", 0),
        ("tenants", 2.5),
        ("seed", "7"),
        ("zipf_key", -0.1),
        ("zipf_tenant", -1),
        ("query_fraction", 1.5),
        ("query_fraction", -0.01),
        ("rate", -1.0),
        ("burst_factor", 0.5),
        ("burst_period", 0.0),
    ])
    def test_bad_values_refused(self, field, value):
        with pytest.raises(ValueError, match=field.split("_")[0]):
            WorkloadSpec(**{field: value})

    def test_unknown_arrival_and_kind_refused(self):
        with pytest.raises(ValueError, match="arrival"):
            WorkloadSpec(arrival="uniform")
        with pytest.raises(ValueError, match="kind"):
            WorkloadSpec(table_kind="bloom")

    def test_open_loop_needs_a_rate(self):
        for arrival in ("poisson", "burst"):
            with pytest.raises(ValueError, match="positive per-client rate"):
                WorkloadSpec(arrival=arrival)
            assert WorkloadSpec(arrival=arrival, rate=10.0).rate == 10.0

    def test_closed_loop_ignores_rate(self):
        assert WorkloadSpec(arrival="closed", rate=0.0).rate == 0.0

    def test_bad_table_prefix_refused(self):
        with pytest.raises(ValueError):
            WorkloadSpec(table_prefix="has space")

    def test_arrival_modes_constant(self):
        assert ARRIVAL_MODES == ("closed", "poisson", "burst")


class TestSpecSerialization:
    def test_roundtrip(self):
        spec = WorkloadSpec(tenants=3, zipf_tenant=1.5, arrival="poisson",
                            rate=50.0, seed=11, table_prefix="w")
        assert WorkloadSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_refused(self):
        payload = WorkloadSpec().to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            WorkloadSpec.from_dict(payload)

    def test_key_ranges_are_disjoint(self):
        spec = WorkloadSpec(tenants=3, keys_per_tenant=10)
        ranges = [
            {spec.key_for(tenant, rank) for rank in range(10)}
            for tenant in range(3)
        ]
        assert ranges[0] & ranges[1] == set()
        assert ranges[1] & ranges[2] == set()

    def test_table_spec_matches_workload_knobs(self):
        spec = WorkloadSpec(depth=7, width=512, seed=9, table_kind="sketch")
        table = spec.table_spec("tenant0")
        assert (table.depth, table.width, table.seed) == (7, 512, 9)


class TestModelDeterminism:
    def test_same_seed_same_client_replays_exactly(self):
        spec = WorkloadSpec(arrival="poisson", rate=100.0, seed=5)
        a = WorkloadModel(spec, 2)
        b = WorkloadModel(spec, 2)
        for _ in range(50):
            assert a.next_gap() == b.next_gap()
            assert a.next_op() == b.next_op()

    def test_clients_draw_independent_streams(self):
        spec = WorkloadSpec(seed=5)
        ops_a = [WorkloadModel(spec, 0).next_op() for _ in range(1)]
        ops_b = [WorkloadModel(spec, 1).next_op() for _ in range(1)]
        # Not a hard guarantee per-op, but the streams must differ
        # somewhere in a short window for distinct client indices.
        a = WorkloadModel(spec, 0)
        b = WorkloadModel(spec, 1)
        assert any(a.next_op() != b.next_op() for _ in range(20))
        assert ops_a is not None and ops_b is not None

    def test_negative_client_index_refused(self):
        with pytest.raises(ValueError, match="client_index"):
            WorkloadModel(WorkloadSpec(), -1)


class TestSampling:
    def test_op_shapes(self):
        spec = WorkloadSpec(batch_size=16, query_items=4,
                            query_fraction=0.5, seed=3)
        model = WorkloadModel(spec, 0)
        seen = set()
        for _ in range(200):
            op = model.next_op()
            assert isinstance(op, TrafficOp)
            seen.add(op.kind)
            assert op.table == f"tenant{op.tenant}"
            if op.kind == "ingest":
                assert len(op.records) == 16
                assert op.items == ()
                low = op.tenant * spec.keys_per_tenant
                assert all(low <= key < low + spec.keys_per_tenant
                           for key, _ in op.records)
                assert all(count == 1 for _, count in op.records)
            else:
                assert len(op.items) == 4
                assert op.records == ()
        assert seen == {"ingest", "estimate"}

    def test_query_fraction_extremes(self):
        all_ingest = WorkloadModel(WorkloadSpec(query_fraction=0.0), 0)
        assert all(all_ingest.next_op().kind == "ingest"
                   for _ in range(50))
        all_query = WorkloadModel(WorkloadSpec(query_fraction=1.0), 0)
        assert all(all_query.next_op().kind == "estimate"
                   for _ in range(50))

    def test_zipf_tenant_skews_tenant_choice(self):
        hot = WorkloadModel(
            WorkloadSpec(tenants=4, zipf_tenant=2.0, seed=1), 0)
        counts = Counter(hot.next_op().tenant for _ in range(2000))
        assert counts[0] > counts[3] * 2

    def test_uniform_tenants_roughly_even(self):
        flat = WorkloadModel(
            WorkloadSpec(tenants=4, zipf_tenant=0.0, seed=1), 0)
        counts = Counter(flat.next_op().tenant for _ in range(4000))
        assert min(counts.values()) > 0.5 * max(counts.values())

    def test_zipf_key_skews_key_popularity(self):
        spec = WorkloadSpec(tenants=1, keys_per_tenant=64, zipf_key=1.5,
                            query_fraction=0.0, batch_size=8, seed=2)
        model = WorkloadModel(spec, 0)
        counts: Counter[int] = Counter()
        for _ in range(500):
            for key, _count in model.next_op().records:
                counts[key] += 1
        # Rank 0 must dominate the tail key under z = 1.5.
        assert counts[0] > counts.get(63, 0) * 5


class TestArrivalGaps:
    def test_closed_loop_has_zero_gaps(self):
        model = WorkloadModel(WorkloadSpec(arrival="closed"), 0)
        assert [model.next_gap() for _ in range(10)] == [0.0] * 10

    def test_poisson_mean_gap_tracks_rate(self):
        spec = WorkloadSpec(arrival="poisson", rate=200.0, seed=4)
        model = WorkloadModel(spec, 0)
        gaps = [model.next_gap() for _ in range(5000)]
        assert all(gap >= 0 for gap in gaps)
        mean = sum(gaps) / len(gaps)
        assert 1 / 250 < mean < 1 / 160

    def test_burst_alternates_fast_and_slow_phases(self):
        spec = WorkloadSpec(arrival="burst", rate=100.0, burst_factor=8.0,
                            burst_period=0.5, seed=4)
        model = WorkloadModel(spec, 0)
        gaps = [model.next_gap() for _ in range(4000)]
        assert all(gap >= 0 for gap in gaps)
        fast = [gap for gap in gaps if gap < 1 / 400]
        slow = [gap for gap in gaps if gap > 1 / 50]
        # Both regimes must actually occur.
        assert len(fast) > 100
        assert len(slow) > 10
