"""Network scenario: heavy-hitter flows at a router.

The paper's second motivating application (§1): "identifying large packet
flows in a network router."  A router cannot keep a counter per flow; this
example streams synthetic packets with heavy-tailed flow sizes through the
Count Sketch tracker and through two counter-based baselines at comparable
space, and scores all three against exact per-flow counts.

Flow keys are 5-tuples, exercising the structured-key encoding path.

Usage::

    python examples/network_flows.py
"""

from repro import KPSFrequent, SpaceSaving, TopKTracker
from repro.analysis import StreamStatistics, recall_at_k
from repro.streams.packets import FlowStreamGenerator


def main() -> None:
    generator = FlowStreamGenerator(num_flows=8_000, z=1.1, seed=13)
    packets = generator.generate(120_000)
    stats = StreamStatistics(counts=packets.counts())
    k = 10
    true_top = stats.top_k_items(k)

    print(f"trace: {packets.describe()}")
    print(f"true elephant flow carries {stats.nk(1)} packets; "
          f"the 10th-largest carries {stats.nk(10)}\n")

    # Count Sketch tracker (the paper's algorithm).
    tracker = TopKTracker(k=k, depth=5, width=512, seed=3)
    # Counter-based baselines at a comparable counter budget.
    kps = KPSFrequent(capacity=2_560)
    space_saving = SpaceSaving(capacity=1_280)

    for packet in packets:
        tracker.update(packet)
        kps.update(packet)
        space_saving.update(packet)

    summaries = [
        ("CountSketch tracker", tracker),
        ("KPS / Misra-Gries", kps),
        ("SpaceSaving", space_saving),
    ]
    print(f"{'algorithm':<22} {'counters':>9} {'objects':>8} {'recall@10':>10}")
    for name, summary in summaries:
        reported = [item for item, __ in summary.top(k)]
        recall = recall_at_k(reported, true_top)
        print(
            f"{name:<22} {summary.counters_used():>9} "
            f"{summary.items_stored():>8} {recall:>10.0%}"
        )

    print("\ntop-5 flows per the Count Sketch tracker:")
    for rank, (flow, count) in enumerate(tracker.top(5), start=1):
        print(
            f"  {rank}. {flow.src_ip}:{flow.src_port} -> "
            f"{flow.dst_ip}:{flow.dst_port}/{flow.protocol} "
            f"~{count:.0f} packets (true {stats.count(flow)})"
        )


if __name__ == "__main__":
    main()
