"""Distributed aggregation: sketch additivity across shards.

§3.2: "if two sketches share the same hash functions ... we can add and
subtract them."  That linearity is what makes the Count Sketch deployable
in a distributed setting — the paper's load-balancing-in-a-distributed-
database motivation: each shard sketches its local traffic independently,
the coordinator merges the sketches, and the merged sketch is *bit-for-bit
identical* to a sketch of the combined stream.

This example splits one logical stream across four "shards", sketches each
locally (same (depth, width, seed) ⇒ shared hash functions), merges, and
verifies the merge equals the single-machine sketch exactly.  It then
subtracts two shard sketches to estimate per-item traffic imbalance.

Usage::

    python examples/distributed_merge.py
"""

from repro import CountSketch
from repro.streams import ZipfStreamGenerator


def main() -> None:
    depth, width, seed = 5, 512, 99
    generator = ZipfStreamGenerator(m=5_000, z=1.0, seed=21)
    stream = generator.generate(80_000)

    # Split round-robin across 4 shards.
    shards = [list(stream)[i::4] for i in range(4)]

    # Each shard sketches locally with the SAME (depth, width, seed).
    local_sketches = []
    for shard_items in shards:
        sketch = CountSketch(depth, width, seed=seed)
        sketch.extend(shard_items)
        local_sketches.append(sketch)

    # Coordinator merge: + is exact, not approximate.
    merged = local_sketches[0].copy()
    for sketch in local_sketches[1:]:
        merged.merge(sketch)

    # Ground truth: one sketch over the whole stream.
    global_sketch = CountSketch(depth, width, seed=seed)
    global_sketch.extend(stream)

    print(f"merged sketch equals global sketch exactly: "
          f"{merged == global_sketch}")
    print(f"merged total weight: {merged.total_weight} "
          f"(stream length {len(stream)})\n")

    # Sketch subtraction: estimate per-item imbalance between two shards.
    imbalance = local_sketches[0] - local_sketches[1]
    print("estimated shard-0 minus shard-1 traffic for the top items:")
    for rank in range(1, 6):
        item = generator.item_for_rank(rank)
        true_diff = shards[0].count(item) - shards[1].count(item)
        print(
            f"  item {item}: estimated {imbalance.estimate(item):+.0f}, "
            f"true {true_diff:+d}"
        )

    # Serialization round-trip: ship a shard sketch across the wire.
    state = local_sketches[2].state_dict()
    revived = CountSketch.from_state_dict(state)
    print(f"\nserialization round-trip exact: {revived == local_sketches[2]}")


if __name__ == "__main__":
    main()
