"""Extensions tour: windowed top queries and percent-change trending.

Two features built on top of the paper's machinery:

1. **Jumping-window estimates** — "the most frequent queries handled in
   some period of time" (§1) taken literally: a ring of sub-sketches whose
   linearity (§3.2) makes window expiry an exact sketch subtraction.
2. **Max-percent-change** — the open problem the paper's conclusion (§5)
   poses; the heuristic here balances absolute and relative change with a
   smoothing floor (see ``repro.core.relative_change``).

The scenario: a query stream where an old staple fades, then a fresh query
erupts from nothing — the windowed view forgets the staple, and the
percent-change view ranks the eruption above much larger absolute movers.

Usage::

    python examples/windowed_trending.py
"""

from repro import JumpingWindowSketch, RelativeChangeFinder
from repro.streams.queries import Burst, QueryStreamGenerator


def main() -> None:
    generator = QueryStreamGenerator(vocabulary_size=2_000, z=0.8, seed=77)
    staple = generator.query_for_rank(1)
    sleeper = generator.query_for_rank(1500)  # nearly invisible normally

    # -- 1. windowed view ----------------------------------------------------
    # First half: normal traffic. Second half: the staple query vanishes.
    first_half = generator.generate(30_000)
    second_half = [q for q in generator.generate(30_000) if q != staple]

    window = JumpingWindowSketch(window=10_000, buckets=8,
                                 depth=5, width=512, seed=1)
    for query in first_half:
        window.update(query)
    print(f"after half 1: window estimate of {staple!r}: "
          f"{window.estimate(staple):.0f}")
    for query in second_half:
        window.update(query)
    print(f"after half 2: window estimate of {staple!r}: "
          f"{window.estimate(staple):.0f} "
          f"(window covers last {window.covered()} queries — "
          "the staple has been forgotten)")

    # -- 2. percent-change trending -------------------------------------------
    # Week 2 plants a sleeper-hit eruption (≈0 -> ~900 hits) next to big
    # absolute movements of already-popular queries.
    week1 = generator.generate(30_000)
    week2 = generator.generate(
        30_000,
        bursts=(Burst(sleeper, start=10_000, end=25_000, fraction=0.06),),
    )

    finder = RelativeChangeFinder(l=40, floor=10.0, depth=5, width=1024,
                                  seed=2)
    finder.first_pass(week1, week2)
    finder.second_pass(week1, week2)

    print("\ntop movers by smoothed percent change (floor=10):")
    for report in finder.report(5, min_after=1):
        print(
            f"  {report.item!r:42s} {report.count_before:>6} -> "
            f"{report.count_after:<6} ({report.percent_change:+.1%})"
        )

    found = any(r.item == sleeper for r in finder.report(5, min_after=1))
    print(f"\nsleeper hit {sleeper!r}: "
          f"{'FOUND' if found else 'missed'} by percent-change trending")


if __name__ == "__main__":
    main()
