"""Search-engine scenario: frequent queries and trending topics.

The paper's motivating application (§1): a search engine wants (a) the most
frequent queries in a period and (b) the queries whose popularity *changed*
the most between two periods — "which topics are increasing or decreasing
in popularity at the fastest rate" (§4.2, the Google Zeitgeist use case).

This example builds two synthetic query logs for consecutive "weeks", with
a planted breaking-news burst in week 2, then:

1. finds the top queries of week 2 with the one-pass tracker;
2. finds the max-change queries with the two-pass §4.2 algorithm —
   surfacing the burst query even though it is nowhere near the top of
   either week on its own.

Usage::

    python examples/search_queries.py
"""

from collections import Counter

from repro import MaxChangeFinder, TopKTracker
from repro.streams.queries import Burst, QueryStreamGenerator


def main() -> None:
    generator = QueryStreamGenerator(vocabulary_size=5_000, z=0.8, seed=101)
    n = 80_000

    # Week 1: ordinary traffic.
    week1 = generator.generate(n)

    # Week 2: same base popularity plus a breaking-news burst — a
    # mid-popularity query spikes to ~4% of traffic in a 20k-item window.
    burst_query = generator.query_for_rank(400)
    week2 = generator.generate(
        n, bursts=(Burst(burst_query, start=30_000, end=50_000, fraction=0.15),)
    )

    # -- (a) top queries of week 2, one pass, tiny memory ------------------
    tracker = TopKTracker(k=10, depth=5, width=1024, seed=5)
    for query in week2:
        tracker.update(query)

    print("top queries of week 2 (one-pass Count Sketch tracker):")
    for rank, (query, count) in enumerate(tracker.top(), start=1):
        print(f"  {rank:>2}. {query!r:42s} ~{count:.0f} hits")

    # -- (b) max-change queries between the weeks (§4.2, two passes) -------
    finder = MaxChangeFinder(l=40, depth=5, width=1024, seed=5)
    finder.first_pass(week1, week2)
    finder.second_pass(week1, week2)

    print("\nbiggest movers week1 -> week2 (two-pass max-change):")
    for report in finder.report(5):
        direction = "UP" if report.change > 0 else "DOWN"
        print(
            f"  {direction:>4} {report.item!r:42s} "
            f"{report.count_before:>6} -> {report.count_after:<6} "
            f"(sketch estimate {report.estimated_change:+.0f})"
        )

    true_change = Counter(week2.items)[burst_query] - Counter(week1.items)[burst_query]
    found = any(r.item == burst_query for r in finder.report(5))
    print(
        f"\nplanted burst query {burst_query!r} "
        f"(true change {true_change:+d}): "
        f"{'FOUND' if found else 'missed'} by the max-change report"
    )


if __name__ == "__main__":
    main()
