"""Quickstart: find the top-k items of a stream with a Count Sketch.

Runs the paper's §3.2 algorithm end to end on a synthetic Zipfian stream
and compares the answer against exact counting — the 60-second tour of the
library.

Usage::

    python examples/quickstart.py
"""

from repro import TopKTracker
from repro.analysis import StreamStatistics, recall_at_k
from repro.streams import ZipfStreamGenerator


def main() -> None:
    # A Zipfian stream: 100k items over a 10k-object universe, skew z = 1.
    generator = ZipfStreamGenerator(m=10_000, z=1.0, seed=7)
    stream = generator.generate(100_000)
    print(f"stream: {stream.describe()}")

    # The one-pass algorithm of §3.2: a Count Sketch (5 rows x 512
    # counters) plus a heap of the k items with the largest estimates.
    tracker = TopKTracker(k=10, depth=5, width=512, seed=42)
    for item in stream:
        tracker.update(item)

    # Score against exact counts.
    stats = StreamStatistics(counts=stream.counts())
    reported = tracker.top()
    recall = recall_at_k([item for item, __ in reported], stats.top_k_items(10))

    print(f"\nspace used: {tracker.counters_used()} counters, "
          f"{tracker.items_stored()} stored items "
          f"(exact counting would need {stats.m} of each)")
    print(f"recall of the true top-10: {recall:.0%}\n")

    print(f"{'rank':>4}  {'item':>6}  {'tracked':>9}  {'true':>8}")
    for rank, (item, tracked) in enumerate(reported, start=1):
        print(f"{rank:>4}  {item!s:>6}  {tracked:>9.0f}  "
              f"{stats.count(item):>8}")


if __name__ == "__main__":
    main()
