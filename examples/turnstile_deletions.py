"""Turnstile streams: deletions, and heavy hitters without a second look.

Counter-based summaries (KPS, SpaceSaving, Lossy Counting) fundamentally
cannot process deletions; the Count Sketch can — its counters are a
linear function of the frequency vector, so ``update(item, -1)`` is just
arithmetic.  This example runs an insert+delete workload (think: open and
closed database connections, or additions/removals from a materialized
view) and shows:

1. the sketch tracking *net* counts through interleaved deletions;
2. the hierarchical sketch enumerating the current heavy hitters at any
   moment without rescanning anything (no candidate set was ever kept).

Usage::

    python examples/turnstile_deletions.py
"""

import random

from repro import CountSketch, HierarchicalCountSketch


def main() -> None:
    rng = random.Random(11)

    # A churn workload over integer session ids: sessions open (insert)
    # and close (delete); a few "stuck" sessions never close and pile up.
    flat = CountSketch(depth=5, width=1024, seed=3)
    hierarchy = HierarchicalCountSketch(domain_bits=14, depth=5, width=512,
                                        seed=3)
    stuck_sessions = {101, 2048, 9999}
    net_counts: dict[int, int] = {}

    for step in range(60_000):
        if rng.random() < 0.35 and net_counts:
            # Close a random open session (a deletion).
            session = rng.choice(list(net_counts))
            flat.update(session, -1)
            hierarchy.update(session, -1)
            net_counts[session] -= 1
            if net_counts[session] == 0:
                del net_counts[session]
        else:
            session = (
                rng.choice(list(stuck_sessions))
                if rng.random() < 0.10
                else rng.randrange(1 << 14)
            )
            flat.update(session, 1)
            hierarchy.update(session, 1)
            net_counts[session] = net_counts.get(session, 0) + 1

    print("net-count estimates after 60k interleaved inserts/deletes:")
    for session in sorted(stuck_sessions):
        print(
            f"  session {session}: estimated {flat.estimate(session):.0f}, "
            f"true {net_counts.get(session, 0)}"
        )

    threshold = 500
    print(f"\nsessions with net count >= {threshold} "
          "(hierarchical search, no candidate tracking):")
    for session, estimate in hierarchy.heavy_hitters(threshold):
        marker = "stuck" if session in stuck_sessions else "?"
        print(f"  session {session}: ~{estimate:.0f}  [{marker}] "
              f"(true {net_counts.get(session, 0)})")

    found = {s for s, __ in hierarchy.heavy_hitters(threshold)}
    print(f"\nall stuck sessions found: {stuck_sessions <= found}")


if __name__ == "__main__":
    main()
