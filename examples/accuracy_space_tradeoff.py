"""Accuracy-vs-space: sizing a Count Sketch with the paper's formulas.

Shows the practical workflow for dimensioning a sketch:

1. pick the guarantee you want (APPROXTOP slack ε, failure budget δ);
2. obtain the tail second moment — exactly, or *from the sketch itself*
   via the AMS-style F2 estimator (``estimate_f2``);
3. call :func:`repro.width_for_approxtop` / :func:`repro.suggest_depth`
   (Lemma 5 and Lemma 3 made executable);
4. sanity-check the resulting error against the 8γ envelope of Lemma 4.

The sweep prints how measured error tracks γ as the width grows, i.e. the
knob a deployment actually turns.

Usage::

    python examples/accuracy_space_tradeoff.py
"""

from repro import CountSketch, gamma, suggest_depth, width_for_approxtop
from repro.analysis import StreamStatistics
from repro.streams import ZipfStreamGenerator


def main() -> None:
    stream = ZipfStreamGenerator(m=10_000, z=1.0, seed=33).generate(100_000)
    counts = stream.counts()
    stats = StreamStatistics(counts=counts)
    k, epsilon, delta = 10, 0.25, 0.01

    # -- the paper's parameter recipe --------------------------------------
    tail = stats.tail_second_moment(k)
    nk = stats.nk(k)
    width = width_for_approxtop(k, epsilon, nk, tail)
    depth = suggest_depth(stats.n, delta, constant=0.5)
    print(
        f"Lemma 5 width for APPROXTOP(k={k}, eps={epsilon}): b = {width}\n"
        f"Lemma 3 depth for delta={delta}: t = {depth}\n"
    )

    # -- estimating the tail moment online ----------------------------------
    probe = CountSketch(depth, 1024, seed=1)
    probe.update_counts(counts)
    f2_estimate = probe.estimate_f2()
    print(
        f"true F2 = {stats.second_moment():.3g}, sketch-estimated F2 = "
        f"{f2_estimate:.3g} (ratio {f2_estimate / stats.second_moment():.3f})\n"
    )

    # -- the accuracy/space curve -------------------------------------------
    queries = [item for item, __ in stats.top_k(100)]
    print(f"{'width b':>8} {'gamma':>9} {'mean |err|':>11} {'max |err|':>10}")
    for b in (64, 128, 256, 512, 1024, 2048):
        sketch = CountSketch(depth, b, seed=7)
        sketch.update_counts(counts)
        errors = [abs(sketch.estimate(q) - counts[q]) for q in queries]
        print(
            f"{b:>8} {gamma(tail, b):>9.1f} "
            f"{sum(errors) / len(errors):>11.2f} {max(errors):>10.0f}"
        )


if __name__ == "__main__":
    main()
