"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this machine (no network, setuptools 65 without
``wheel``) cannot build PEP 660 editable wheels; this shim lets pip fall
back to the legacy editable path (``--no-use-pep517`` works too).  All
actual metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
